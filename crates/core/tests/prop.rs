//! Property-based tests for the file system: random operation sequences run
//! against a full simulated HopsFS-CL cluster must agree with a trivial
//! in-memory reference model, and paths must round-trip.

use hopsfs::client::ClientStats;
use hopsfs::{build_fs_cluster, FsClientActor, FsError, FsOk, FsOp, FsPath, ScriptedSource};
use proptest::prelude::*;
use simnet::{AzId, SimDuration, SimTime, Simulation};
use std::collections::{BTreeMap, BTreeSet};

// ---------------------------------------------------------------------------
// Reference model: a plain in-memory tree with the same semantics.
// ---------------------------------------------------------------------------

#[derive(Debug, Default)]
struct Model {
    /// path -> is_dir (root is implicit).
    entries: BTreeMap<String, bool>,
}

impl Model {
    fn exists(&self, p: &str) -> bool {
        p == "/" || self.entries.contains_key(p)
    }
    /// POSIX prefix check: every proper ancestor exists and is a directory.
    fn check_prefix(&self, p: &str) -> Result<(), FsError> {
        let bytes = p.as_bytes();
        for i in 1..bytes.len() {
            if bytes[i] == b'/' {
                let anc = &p[..i];
                if !self.exists(anc) {
                    return Err(FsError::NotFound);
                }
                if !self.is_dir(anc) {
                    return Err(FsError::NotDir);
                }
            }
        }
        Ok(())
    }
    fn resolve(&self, p: &str) -> Result<(), FsError> {
        self.check_prefix(p)?;
        if self.exists(p) {
            Ok(())
        } else {
            Err(FsError::NotFound)
        }
    }
    fn is_dir(&self, p: &str) -> bool {
        p == "/" || self.entries.get(p).copied().unwrap_or(false)
    }
    fn parent(p: &str) -> String {
        match p.rfind('/') {
            Some(0) => "/".to_string(),
            Some(i) => p[..i].to_string(),
            None => "/".to_string(),
        }
    }
    fn children(&self, p: &str) -> Vec<String> {
        let prefix = if p == "/" { "/".to_string() } else { format!("{p}/") };
        self.entries
            .keys()
            .filter(|k| k.starts_with(&prefix) && !k[prefix.len()..].contains('/'))
            .map(|k| k[prefix.len()..].to_string())
            .collect()
    }

    fn apply(&mut self, op: &FsOp) -> Result<ModelOk, FsError> {
        match op {
            FsOp::Mkdir { path } | FsOp::Create { path, .. } => {
                let p = path.to_string();
                if path.is_root() {
                    return Err(FsError::Invalid);
                }
                self.check_prefix(&p)?;
                let parent = Self::parent(&p);
                if !self.exists(&parent) {
                    return Err(FsError::NotFound);
                }
                if !self.is_dir(&parent) {
                    return Err(FsError::NotDir);
                }
                if self.exists(&p) {
                    return Err(FsError::AlreadyExists);
                }
                self.entries.insert(p, matches!(op, FsOp::Mkdir { .. }));
                Ok(ModelOk::Done)
            }
            FsOp::Delete { path, recursive } => {
                let p = path.to_string();
                if path.is_root() {
                    return Err(FsError::Invalid);
                }
                self.resolve(&p)?;
                if self.is_dir(&p) && !self.children(&p).is_empty() && !recursive {
                    return Err(FsError::NotEmpty);
                }
                let prefix = format!("{p}/");
                self.entries.retain(|k, _| k != &p && !k.starts_with(&prefix));
                Ok(ModelOk::Done)
            }
            FsOp::Rename { src, dst } => {
                let s = src.to_string();
                let d = dst.to_string();
                if src.is_root() || dst.is_root() || src.is_prefix_of(dst) {
                    return Err(FsError::Invalid);
                }
                // HopsFS resolves both parent chains (walk A then walk B)
                // before reading the entries under locks.
                self.check_prefix(&s)?;
                self.check_prefix(&d)?;
                if !self.exists(&s) {
                    return Err(FsError::NotFound);
                }
                let dparent = Self::parent(&d);
                if !self.exists(&dparent) {
                    return Err(FsError::NotFound);
                }
                if !self.is_dir(&dparent) {
                    return Err(FsError::NotDir);
                }
                if self.exists(&d) {
                    return Err(FsError::AlreadyExists);
                }
                let moved: Vec<(String, bool)> = self
                    .entries
                    .iter()
                    .filter(|(k, _)| *k == &s || k.starts_with(&format!("{s}/")))
                    .map(|(k, &v)| (k.clone(), v))
                    .collect();
                for (k, v) in moved {
                    self.entries.remove(&k);
                    self.entries.insert(format!("{d}{}", &k[s.len()..]), v);
                }
                Ok(ModelOk::Done)
            }
            FsOp::Stat { path } => {
                let p = path.to_string();
                self.resolve(&p)?;
                Ok(ModelOk::Attrs { is_dir: self.is_dir(&p) })
            }
            FsOp::List { path } => {
                let p = path.to_string();
                self.resolve(&p)?;
                if !self.is_dir(&p) {
                    let name = p.rsplit('/').next().unwrap_or("").to_string();
                    return Ok(ModelOk::Listing(vec![name]));
                }
                let mut names = self.children(&p);
                names.sort();
                Ok(ModelOk::Listing(names))
            }
            FsOp::Open { path } => {
                let p = path.to_string();
                self.resolve(&p)?;
                if self.is_dir(&p) {
                    return Err(FsError::IsDir);
                }
                Ok(ModelOk::Done)
            }
            FsOp::SetPerm { path, .. } => {
                let p = path.to_string();
                if path.is_root() {
                    return Err(FsError::Invalid);
                }
                self.resolve(&p)?;
                Ok(ModelOk::Done)
            }
            FsOp::Append { path, .. } => {
                let p = path.to_string();
                if path.is_root() {
                    return Err(FsError::Invalid);
                }
                self.resolve(&p)?;
                if self.is_dir(&p) {
                    return Err(FsError::IsDir);
                }
                Ok(ModelOk::Done)
            }
        }
    }
}

#[derive(Debug, PartialEq)]
enum ModelOk {
    Done,
    Attrs { is_dir: bool },
    Listing(Vec<String>),
}

// ---------------------------------------------------------------------------
// Strategies: ops over a tiny path universe so collisions are common.
// ---------------------------------------------------------------------------

fn path_strategy() -> impl Strategy<Value = FsPath> {
    let name = prop_oneof![Just("a"), Just("b"), Just("c"), Just("d")];
    proptest::collection::vec(name, 1..4)
        .prop_map(|parts| FsPath::parse(&format!("/{}", parts.join("/"))).expect("valid"))
}

fn op_strategy() -> impl Strategy<Value = FsOp> {
    prop_oneof![
        path_strategy().prop_map(|path| FsOp::Mkdir { path }),
        path_strategy().prop_map(|path| FsOp::Create { path, size: 0 }),
        (path_strategy(), any::<bool>()).prop_map(|(path, recursive)| FsOp::Delete { path, recursive }),
        (path_strategy(), path_strategy()).prop_map(|(src, dst)| FsOp::Rename { src, dst }),
        path_strategy().prop_map(|path| FsOp::Stat { path }),
        path_strategy().prop_map(|path| FsOp::List { path }),
        path_strategy().prop_map(|path| FsOp::Open { path }),
        path_strategy().prop_map(|path| FsOp::SetPerm { path, perm: 0o700 }),
        (path_strategy(), 1u64..4096).prop_map(|(path, bytes)| FsOp::Append { path, bytes }),
    ]
}

// ---------------------------------------------------------------------------
// Subtree-operation properties: random namespace trees, recursive delete.
// ---------------------------------------------------------------------------

/// A random tree under `/t`: relative segment chains plus a file/dir flag
/// for the leaf. Collisions between entries are common by construction.
fn tree_strategy() -> impl Strategy<Value = Vec<(Vec<&'static str>, bool)>> {
    let name = prop_oneof![Just("a"), Just("b"), Just("c"), Just("d")];
    proptest::collection::vec((proptest::collection::vec(name, 1..4), any::<bool>()), 1..14)
}

/// Deterministically resolves a generated tree into `path -> is_dir`:
/// every proper ancestor is a directory, and a leaf is a directory if any
/// generated entry for that path says so.
fn resolve_tree(entries: &[(Vec<&str>, bool)]) -> BTreeMap<String, bool> {
    let mut nodes: BTreeMap<String, bool> = BTreeMap::new();
    for (segs, is_dir) in entries {
        let mut path = "/t".to_string();
        for (i, seg) in segs.iter().enumerate() {
            path = format!("{path}/{seg}");
            let leaf = i + 1 == segs.len();
            let e = nodes.entry(path.clone()).or_insert(false);
            *e |= !leaf || *is_dir;
        }
    }
    nodes
}

/// Runs `ops` against a cluster configured with `subtree_batch_size =
/// batch`, returning the results and the largest transaction (in writes)
/// any namenode issued over the whole run.
fn run_with_batch_size(ops: &[FsOp], batch: usize) -> (Vec<hopsfs::FsResult>, usize) {
    let mut sim = Simulation::new(5);
    sim.set_jitter(0.0);
    let mut cfg = hopsfs::FsConfig::hopsfs_cl(6, 3, 2);
    cfg.subtree_batch_size = batch;
    let cluster = build_fs_cluster(&mut sim, cfg, 0);
    let stats = ClientStats::shared();
    let client =
        cluster.add_client(&mut sim, AzId(0), Box::new(ScriptedSource::new(ops.to_vec())), stats);
    sim.actor_mut::<FsClientActor>(client).keep_results = true;
    let mut t = SimTime::ZERO;
    while sim.actor::<FsClientActor>(client).results.len() < ops.len() && t < SimTime::from_secs(120)
    {
        t += SimDuration::from_millis(100);
        sim.run_until(t);
    }
    let results = sim.actor::<FsClientActor>(client).results.clone();
    let max_tx = cluster
        .view
        .nn_ids
        .iter()
        .map(|&id| sim.actor::<hopsfs::NameNodeActor>(id).largest_write_batch())
        .max()
        .unwrap_or(0);
    (results, max_tx)
}

fn run_against_cluster(ops: &[FsOp]) -> Vec<hopsfs::FsResult> {
    let mut sim = Simulation::new(5);
    sim.set_jitter(0.0);
    let cfg = hopsfs::FsConfig::hopsfs_cl(6, 3, 2);
    let cluster = build_fs_cluster(&mut sim, cfg, 0);
    let stats = ClientStats::shared();
    let client =
        cluster.add_client(&mut sim, AzId(0), Box::new(ScriptedSource::new(ops.to_vec())), stats);
    sim.actor_mut::<FsClientActor>(client).keep_results = true;
    let mut t = SimTime::ZERO;
    while sim.actor::<FsClientActor>(client).results.len() < ops.len() && t < SimTime::from_secs(120)
    {
        t += SimDuration::from_millis(100);
        sim.run_until(t);
    }
    sim.actor::<FsClientActor>(client).results.clone()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The full distributed stack agrees with the reference model on every
    /// operation of a random sequence.
    #[test]
    fn fs_matches_reference_model(ops in proptest::collection::vec(op_strategy(), 1..24)) {
        let results = run_against_cluster(&ops);
        prop_assert_eq!(results.len(), ops.len(), "all ops must complete");
        let mut model = Model::default();
        for (i, (op, got)) in ops.iter().zip(&results).enumerate() {
            let want = model.apply(op);
            match (&want, got) {
                (Err(we), Err(ge)) => prop_assert_eq!(we, ge, "op {} {:?}: error kind", i, op),
                (Ok(ModelOk::Done), Ok(_)) => {}
                (Ok(ModelOk::Attrs { is_dir }), Ok(FsOk::Attrs(a))) => {
                    prop_assert_eq!(*is_dir, a.is_dir, "op {} {:?}: is_dir", i, op)
                }
                (Ok(ModelOk::Listing(want_names)), Ok(FsOk::Listing(entries))) => {
                    let mut got_names: Vec<String> =
                        entries.iter().map(|e| e.name.clone()).collect();
                    got_names.sort();
                    prop_assert_eq!(want_names, &got_names, "op {} {:?}: listing", i, op);
                }
                (want, got) => {
                    prop_assert!(false, "op {i} {op:?}: model {want:?} vs fs {got:?}");
                }
            }
        }
    }

    /// Paths round-trip through parse/display, and parent/join are inverses.
    #[test]
    fn paths_round_trip(parts in proptest::collection::vec("[a-z]{1,8}", 0..6)) {
        let s = if parts.is_empty() { "/".to_string() } else { format!("/{}", parts.join("/")) };
        let p = FsPath::parse(&s).expect("valid path");
        prop_assert_eq!(p.to_string(), s);
        prop_assert_eq!(p.depth(), parts.len());
        if let Some(name) = p.name() {
            let parent = p.parent().expect("non-root has a parent");
            prop_assert_eq!(parent.join(name), p.clone());
            prop_assert!(parent.is_prefix_of(&p));
        }
    }

    /// Subtree delete as a protocol property: for any random namespace tree
    /// and any (small) configured batch size, a recursive delete of the tree
    /// root (a) leaves the namespace exactly as the sequential oracle
    /// predicts — the tree is gone, siblings survive — and (b) never issues
    /// a transaction larger than `subtree_batch_size` writes, the bound the
    /// subtree operations protocol exists to enforce.
    #[test]
    fn subtree_delete_matches_oracle_and_respects_batch_bound(
        tree in tree_strategy(),
        batch in 4usize..10,
    ) {
        let nodes = resolve_tree(&tree);
        let parse = |s: &str| FsPath::parse(s).expect("generated paths are valid");

        // Build: /t, the tree under it (BTreeMap order puts parents before
        // children), and an untouched sibling /keep/x.
        let mut ops = vec![
            FsOp::Mkdir { path: parse("/t") },
            FsOp::Mkdir { path: parse("/keep") },
            FsOp::Create { path: parse("/keep/x"), size: 0 },
        ];
        for (path, is_dir) in &nodes {
            ops.push(if *is_dir {
                FsOp::Mkdir { path: parse(path) }
            } else {
                FsOp::Create { path: parse(path), size: 1024 }
            });
        }
        let n_build = ops.len();

        // The op under test, then probes the oracle fully predicts.
        ops.push(FsOp::Delete { path: parse("/t"), recursive: true });
        let probe_base = ops.len();
        ops.push(FsOp::Stat { path: parse("/t") });
        for path in nodes.keys() {
            ops.push(FsOp::Stat { path: parse(path) });
        }
        ops.push(FsOp::List { path: parse("/") });
        ops.push(FsOp::Stat { path: parse("/keep/x") });

        let (results, max_tx) = run_with_batch_size(&ops, batch);
        prop_assert_eq!(results.len(), ops.len(), "all ops must complete");
        for (i, r) in results[..n_build].iter().enumerate() {
            prop_assert!(r.is_ok(), "build op {i} {:?} failed: {r:?}", ops[i]);
        }
        prop_assert!(results[n_build].is_ok(), "recursive delete failed: {:?}", results[n_build]);
        // Every node of the tree is gone...
        for (i, r) in results[probe_base..probe_base + 1 + nodes.len()].iter().enumerate() {
            prop_assert_eq!(
                r,
                &Err(FsError::NotFound),
                "probe {} {:?} still resolves after subtree delete",
                i,
                ops[probe_base + i]
            );
        }
        // ...the sibling is intact, and the root listing matches the oracle.
        match &results[ops.len() - 2] {
            Ok(FsOk::Listing(entries)) => {
                let names: BTreeSet<String> = entries.iter().map(|e| e.name.clone()).collect();
                prop_assert!(!names.contains("t"), "deleted root still listed: {names:?}");
                prop_assert!(names.contains("keep"), "sibling lost: {names:?}");
            }
            other => prop_assert!(false, "root listing failed: {other:?}"),
        }
        prop_assert!(results[ops.len() - 1].is_ok(), "sibling file lost");
        prop_assert!(
            max_tx <= batch,
            "a transaction carried {max_tx} writes, above the configured bound {batch}"
        );
    }

    /// The same op sequence produces the same namespace on HopsFS-CL and on
    /// the CephFS baseline (cross-implementation agreement on semantics).
    #[test]
    fn hopsfs_and_cephfs_agree(ops in proptest::collection::vec(op_strategy(), 1..16)) {
        let hops = run_against_cluster(&ops);

        let mut sim = Simulation::new(5);
        sim.set_jitter(0.0);
        let mut cluster = cephsim::build_ceph_cluster(
            &mut sim,
            cephsim::CephConfig::paper(2, cephsim::BalanceMode::Dynamic, false),
        );
        cluster.apply_pinning();
        let stats = ClientStats::shared();
        let client = cluster.add_client(&mut sim, AzId(0), Box::new(ScriptedSource::new(ops.to_vec())), stats);
        sim.actor_mut::<cephsim::CephClientActor>(client).keep_results = true;
        let mut t = SimTime::ZERO;
        while sim.actor::<cephsim::CephClientActor>(client).results.len() < ops.len()
            && t < SimTime::from_secs(120)
        {
            t += SimDuration::from_millis(100);
            sim.run_until(t);
        }
        let ceph = sim.actor::<cephsim::CephClientActor>(client).results.clone();
        prop_assert_eq!(ceph.len(), hops.len());
        for (i, (h, c)) in hops.iter().zip(&ceph).enumerate() {
            let same = match (h, c) {
                (Ok(FsOk::Listing(a)), Ok(FsOk::Listing(b))) => {
                    let names = |v: &Vec<hopsfs::DirEntry>| {
                        v.iter().map(|e| e.name.clone()).collect::<BTreeSet<_>>()
                    };
                    names(a) == names(b)
                }
                (Ok(_), Ok(_)) => true,
                (Err(a), Err(b)) => a == b,
                _ => false,
            };
            prop_assert!(same, "op {i} {:?}: hopsfs {h:?} vs cephfs {c:?}", ops[i]);
        }
    }
}

// ---------------------------------------------------------------------------
// Lease-coherent client cache: random interleavings against the same model.
// ---------------------------------------------------------------------------

use hopsfs::{lease_coherence, LeaseMonitor};
use std::sync::Mutex;
use std::sync::Arc;

/// Runs `ops` with the leased client cache enabled (after the grant warm-up
/// window, so reads actually get leases and repeats actually serve
/// locally), returning the results plus what the coherence monitor saw.
fn run_with_leases(ops: &[FsOp]) -> (Vec<hopsfs::FsResult>, u64, u64, u64) {
    let mut sim = Simulation::new(5);
    sim.set_jitter(0.0);
    let mut cfg = hopsfs::FsConfig::hopsfs_cl(6, 3, 2);
    cfg.lease.enabled = true;
    let cluster = build_fs_cluster(&mut sim, cfg, 0);
    // Past the election-visibility window that gates lease grants.
    sim.run_until(SimTime::from_secs(7));
    let stats = ClientStats::shared();
    let client =
        cluster.add_client(&mut sim, AzId(0), Box::new(ScriptedSource::new(ops.to_vec())), stats.clone());
    let monitor = Arc::new(Mutex::new(LeaseMonitor::default()));
    {
        let a = sim.actor_mut::<FsClientActor>(client);
        a.keep_results = true;
        a.monitor = Some(monitor.clone());
    }
    let mut t = SimTime::from_secs(7);
    while sim.actor::<FsClientActor>(client).results.len() < ops.len() && t < SimTime::from_secs(127)
    {
        t += SimDuration::from_millis(100);
        sim.run_until(t);
    }
    let results = sim.actor::<FsClientActor>(client).results.clone();
    let hits = stats.lock().unwrap().lease_hits;
    let m = monitor.lock().unwrap();
    (results, hits, m.serves_checked, lease_coherence(&m))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// With the leased client cache on, any random interleaving of reads and
    /// mutations — run twice over, so the second pass re-reads paths the
    /// first pass cached and mutated — still agrees with the reference model
    /// op-for-op, and the lease-coherence invariant holds: no read is served
    /// from a cache entry that outlived an acked conflicting mutation.
    #[test]
    fn leased_cache_matches_reference_model(ops in proptest::collection::vec(op_strategy(), 1..14)) {
        let doubled: Vec<FsOp> = ops.iter().cloned().chain(ops.iter().cloned()).collect();
        let (results, _hits, serves, violations) = run_with_leases(&doubled);
        prop_assert_eq!(results.len(), doubled.len(), "all ops must complete");
        prop_assert_eq!(violations, 0, "lease served stale data ({serves} serves checked)");
        let mut model = Model::default();
        for (i, (op, got)) in doubled.iter().zip(&results).enumerate() {
            let want = model.apply(op);
            match (&want, got) {
                (Err(we), Err(ge)) => prop_assert_eq!(we, ge, "op {} {:?}: error kind", i, op),
                (Ok(ModelOk::Done), Ok(_)) => {}
                (Ok(ModelOk::Attrs { is_dir }), Ok(FsOk::Attrs(a))) => {
                    prop_assert_eq!(*is_dir, a.is_dir, "op {} {:?}: is_dir", i, op)
                }
                (Ok(ModelOk::Listing(want_names)), Ok(FsOk::Listing(entries))) => {
                    let mut got_names: Vec<String> =
                        entries.iter().map(|e| e.name.clone()).collect();
                    got_names.sort();
                    prop_assert_eq!(want_names, &got_names, "op {} {:?}: listing", i, op);
                }
                (want, got) => {
                    prop_assert!(false, "op {i} {op:?}: model {want:?} vs fs {got:?}");
                }
            }
        }
    }
}

/// Deterministic companion to the property above: a read-heavy script with
/// conflicting mutations interleaved must hit the cache (proving the leases
/// were live, not just absent) while still matching the model.
#[test]
fn leased_cache_hits_and_stays_coherent_on_hot_script() {
    let parse = |s: &str| FsPath::parse(s).expect("valid");
    let mut ops = vec![
        FsOp::Mkdir { path: parse("/a") },
        FsOp::Create { path: parse("/a/f"), size: 0 },
    ];
    for round in 0..6u64 {
        ops.push(FsOp::Stat { path: parse("/a/f") });
        ops.push(FsOp::Stat { path: parse("/a/f") });
        ops.push(FsOp::List { path: parse("/a") });
        ops.push(FsOp::SetPerm { path: parse("/a/f"), perm: 0o600 + (round as u16 & 1) });
        ops.push(FsOp::Stat { path: parse("/a/f") });
    }
    let (results, hits, serves, violations) = run_with_leases(&ops);
    assert_eq!(results.len(), ops.len());
    assert!(results.iter().all(|r| r.is_ok()), "hot script must succeed: {results:?}");
    assert!(hits > 0, "repeat reads under a live lease must serve locally");
    assert!(serves > 0, "the monitor must have checked the local serves");
    assert_eq!(violations, 0, "lease served stale data");
}
