//! The cloud object-store block backend (§VII future work): large files'
//! blocks become objects; tenant cross-AZ traffic from block replication
//! disappears; the provider's request fees appear.

use hopsfs::cloudstore::CLOUD_LOCATION;
use hopsfs::testkit::FsHandle;
use hopsfs::{build_fs_cluster, BlockBackend, FsConfig, FsError, FsOk};
use simnet::{AzId, SimDuration, Simulation};

fn cloud_cluster() -> (Simulation, hopsfs::FsCluster) {
    let mut cfg = FsConfig::hopsfs_cl(6, 3, 2);
    cfg.block_backend = BlockBackend::CloudStore;
    let mut sim = Simulation::new(31);
    sim.set_jitter(0.0);
    let cluster = build_fs_cluster(&mut sim, cfg, 0); // zero datanodes needed
    (sim, cluster)
}

#[test]
fn large_files_become_objects() {
    let (mut sim, cluster) = cloud_cluster();
    let mut fs = FsHandle::new(&mut sim, &cluster, AzId(0));
    fs.mkdir(&mut sim, "/big").unwrap();
    fs.create(&mut sim, "/big/blob", 300 << 20).unwrap(); // 3 blocks
    sim.run_for(SimDuration::from_secs(1)); // PUTs land

    // Metadata lists the cloud sentinel as the replica location.
    match fs.open(&mut sim, "/big/blob").unwrap() {
        FsOk::Locations { attrs, blocks } => {
            assert_eq!(attrs.size, 300 << 20);
            assert_eq!(blocks.len(), 3);
            for b in &blocks {
                assert_eq!(b.replicas, vec![CLOUD_LOCATION], "{b:?}");
            }
        }
        other => panic!("open returned {other:?}"),
    }
    // The objects are durable in the store, with PUT fees accounted.
    let st = cluster.cloud.as_ref().expect("cloud backend").lock().unwrap();
    assert_eq!(st.object_count(), 3);
    assert_eq!(st.put_requests, 3);
    assert_eq!(st.bytes_in, 300 << 20);
    assert!(st.request_fees_usd() > 0.0);
}

#[test]
fn no_tenant_cross_az_traffic_for_block_data() {
    // With the datanode backend, 3x replication of a 256MB file crosses AZs
    // (AZ-aware placement spreads replicas); with the cloud backend the PUT
    // goes to the AZ-local endpoint only.
    let run = |backend: BlockBackend| {
        let mut cfg = FsConfig::hopsfs_cl(6, 3, 2);
        cfg.block_backend = backend;
        let mut sim = Simulation::new(31);
        sim.set_jitter(0.0);
        let cluster = build_fs_cluster(&mut sim, cfg, 6);
        let mut fs = FsHandle::new(&mut sim, &cluster, AzId(0));
        fs.mkdir(&mut sim, "/d").unwrap();
        fs.create(&mut sim, "/d/blob", 256 << 20).unwrap();
        sim.run_for(SimDuration::from_secs(5));
        sim.cross_az_bytes()
    };
    let dn_bytes = run(BlockBackend::Datanodes);
    let cloud_bytes = run(BlockBackend::CloudStore);
    assert!(
        dn_bytes > 100 << 20,
        "datanode replication must push block data across AZs: {dn_bytes}"
    );
    assert!(
        cloud_bytes < dn_bytes / 20,
        "cloud backend must eliminate tenant cross-AZ block traffic: {cloud_bytes} vs {dn_bytes}"
    );
}

#[test]
fn delete_removes_objects() {
    let (mut sim, cluster) = cloud_cluster();
    let mut fs = FsHandle::new(&mut sim, &cluster, AzId(1));
    fs.mkdir(&mut sim, "/x").unwrap();
    fs.create(&mut sim, "/x/blob", 200 << 20).unwrap(); // 2 blocks
    sim.run_for(SimDuration::from_secs(1));
    assert_eq!(cluster.cloud.as_ref().unwrap().lock().unwrap().object_count(), 2);
    fs.delete(&mut sim, "/x/blob", false).unwrap();
    sim.run_for(SimDuration::from_secs(1));
    let st = cluster.cloud.as_ref().unwrap().lock().unwrap();
    assert_eq!(st.object_count(), 0, "deleted file's objects must be reclaimed");
    assert_eq!(st.delete_requests, 2);
}

#[test]
fn small_files_never_touch_the_object_store() {
    let (mut sim, cluster) = cloud_cluster();
    let mut fs = FsHandle::new(&mut sim, &cluster, AzId(2));
    fs.mkdir(&mut sim, "/s").unwrap();
    fs.create(&mut sim, "/s/tiny", 4096).unwrap();
    sim.run_for(SimDuration::from_secs(1));
    assert_eq!(cluster.cloud.as_ref().unwrap().lock().unwrap().object_count(), 0);
    let attrs = fs.stat(&mut sim, "/s/tiny").unwrap();
    assert_eq!(attrs.inline_len, 4096, "small files stay inline in the metadata layer");
}

#[test]
fn append_grows_inline_then_spills_to_objects() {
    let (mut sim, cluster) = cloud_cluster();
    let mut fs = FsHandle::new(&mut sim, &cluster, AzId(0));
    fs.mkdir(&mut sim, "/a").unwrap();
    fs.create(&mut sim, "/a/log", 1000).unwrap();
    // Grow but stay small: still inline.
    fs.call(&mut sim, hopsfs::FsOp::Append { path: "/a/log".parse().unwrap(), bytes: 1000 })
        .unwrap();
    let attrs = fs.stat(&mut sim, "/a/log").unwrap();
    assert_eq!(attrs.size, 2000);
    assert_eq!(attrs.inline_len, 2000);
    // Grow past the threshold: the file spills to a block object.
    fs.call(
        &mut sim,
        hopsfs::FsOp::Append { path: "/a/log".parse().unwrap(), bytes: 1 << 20 },
    )
    .unwrap();
    sim.run_for(SimDuration::from_secs(1));
    let attrs = fs.stat(&mut sim, "/a/log").unwrap();
    assert_eq!(attrs.size, 2000 + (1 << 20));
    assert_eq!(attrs.inline_len, 0, "inline data spilled");
    assert_eq!(cluster.cloud.as_ref().unwrap().lock().unwrap().object_count(), 1);
    // Appending to a directory fails.
    assert_eq!(
        fs.call(&mut sim, hopsfs::FsOp::Append { path: "/a".parse().unwrap(), bytes: 1 }),
        Err(FsError::IsDir)
    );
}
