//! # hopsfs — HopsFS and HopsFS-CL: AZ-aware distributed hierarchical file system
//!
//! A from-scratch Rust reproduction of the system from *"Distributed
//! Hierarchical File Systems strike back in the Cloud"* (ICDCS 2020): HopsFS
//! — an HDFS derivative whose metadata lives fully normalized in an NDB
//! database — redesigned as **HopsFS-CL** with availability-zone awareness
//! at all three layers:
//!
//! - **metadata storage** ([`ndb`]): node groups spanning AZs, Read Backup /
//!   fully replicated tables, AZ-aware transaction-coordinator selection;
//! - **metadata serving** ([`namenode`]): stateless namenodes executing file
//!   system operations as NDB transactions with hierarchical locking, an
//!   NDB-backed leader election that reports each NN's `locationDomainId`,
//!   and an AZ-local client selection policy ([`client`]);
//! - **block storage** ([`block`]): replicated block datanodes with AZ-aware
//!   placement ([`placement`]) and leader-driven re-replication; files under
//!   128 KB live inline in the metadata layer.
//!
//! Deploy a full simulated cluster with [`deploy::build_fs_cluster`] and
//! drive it with client sessions; see the `workload` crate for the paper's
//! Spotify-trace and micro-benchmark drivers, and the `bench` crate for the
//! experiments that regenerate the paper's figures.

#![warn(missing_docs)]

pub mod block;
pub mod chaos;
pub mod client;
pub mod cloudstore;
pub mod config;
pub mod deploy;
pub mod elastic;
pub mod hintcache;
pub mod lease;
pub mod meta;
pub mod namenode;
pub mod openloop;
pub mod ops;
pub mod path;
pub mod placement;
pub mod testkit;
pub mod types;
pub mod view;

pub use chaos::{
    audit_ops, check_invariants, epoch_routing, fragment_divergence, lease_coherence,
    recovering_read_violations, shed_audit, ChaosLog, InvariantReport, ShedAudit, TrackedSource,
};
pub use client::{ClientStats, FsClientActor, OpSource, ScriptedSource};
pub use config::{
    AdmissionConfig, BlockBackend, ElasticConfig, FsConfig, LeaseConfig, NnCostModel,
    PlacementPolicy,
};
pub use deploy::{build_fs_cluster, FsCluster};
pub use elastic::{ElasticController, ElasticStats, NnPoolState};
pub use hintcache::HintCache;
pub use lease::{LeaseCache, LeaseGrant, LeaseMonitor, LeaseTable, MutationNotice};
pub use namenode::{NameNodeActor, NnStats};
pub use openloop::OpenLoopClientActor;
pub use ops::{FsOp, FsRequest, FsResponse, OpKind};
pub use path::FsPath;
pub use types::{DirEntry, FsError, FsOk, FsResult, InodeAttrs, InodeId};
pub use view::FsView;
