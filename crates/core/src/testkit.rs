//! Synchronous convenience facade for tests and examples: drive a simulated
//! cluster one file-system call at a time, like a blocking client library.
//!
//! # Examples
//!
//! ```
//! use hopsfs::testkit::FsHandle;
//! use hopsfs::{build_fs_cluster, FsConfig};
//! use simnet::{AzId, Simulation};
//!
//! # fn main() -> Result<(), hopsfs::FsError> {
//! let mut sim = Simulation::new(1);
//! let cluster = build_fs_cluster(&mut sim, FsConfig::hopsfs_cl(6, 3, 2), 3);
//! let mut fs = FsHandle::new(&mut sim, &cluster, AzId(0));
//! fs.mkdir(&mut sim, "/data")?;
//! fs.create(&mut sim, "/data/file", 1024)?;
//! let attrs = fs.stat(&mut sim, "/data/file")?;
//! assert_eq!(attrs.size, 1024);
//! assert_eq!(fs.list(&mut sim, "/data")?.len(), 1);
//! # Ok(())
//! # }
//! ```

use crate::client::{ClientStats, FsClientActor, OpSource};
use crate::deploy::FsCluster;
use crate::ops::FsOp;
use crate::path::FsPath;
use crate::types::{DirEntry, FsError, FsOk, FsResult, InodeAttrs};
use rand::rngs::StdRng;
use simnet::{AzId, NodeId, SimDuration, SimTime, Simulation};
use std::sync::Mutex;
use std::collections::VecDeque;
use std::sync::Arc;

/// An op source fed one operation at a time through a shared queue.
struct QueueSource {
    queue: Arc<Mutex<VecDeque<FsOp>>>,
}

impl OpSource for QueueSource {
    fn next_op(&mut self, _rng: &mut StdRng, _now: SimTime) -> Option<FsOp> {
        self.queue.lock().unwrap().pop_front()
    }
}

/// A blocking-style client handle over one simulated session.
pub struct FsHandle {
    client: NodeId,
    queue: Arc<Mutex<VecDeque<FsOp>>>,
    consumed: usize,
    /// Virtual-time budget per call before it is declared stuck.
    pub call_timeout: SimDuration,
}

impl FsHandle {
    /// Creates a session in `az` on the cluster.
    pub fn new(sim: &mut Simulation, cluster: &FsCluster, az: AzId) -> Self {
        let queue: Arc<Mutex<VecDeque<FsOp>>> = Arc::new(Mutex::new(VecDeque::new()));
        let source = Box::new(QueueSource { queue: Arc::clone(&queue) });
        let client = cluster.add_client(sim, az, source, ClientStats::shared());
        sim.actor_mut::<FsClientActor>(client).keep_results = true;
        FsHandle { client, queue, consumed: 0, call_timeout: SimDuration::from_secs(30) }
    }

    /// Executes one operation, advancing virtual time until it completes.
    ///
    /// # Panics
    ///
    /// Panics if the operation does not complete within
    /// [`FsHandle::call_timeout`] of virtual time (a stuck cluster in a test).
    pub fn call(&mut self, sim: &mut Simulation, op: FsOp) -> FsResult {
        self.queue.lock().unwrap().push_back(op);
        // The session marked itself done when the queue last ran dry; clear
        // the flag and poke it so it polls immediately.
        sim.actor_mut::<FsClientActor>(self.client).done = false;
        sim.inject(self.client, crate::client::Poke);
        let want = self.consumed + 1;
        let deadline = sim.now() + self.call_timeout;
        while sim.actor::<FsClientActor>(self.client).results.len() < want {
            assert!(sim.now() < deadline, "file system call did not complete in virtual time");
            sim.run_for(SimDuration::from_millis(20));
        }
        self.consumed = want;
        sim.actor::<FsClientActor>(self.client).results[want - 1].clone()
    }

    fn path(s: &str) -> Result<FsPath, FsError> {
        FsPath::parse(s)
    }

    /// `mkdir`.
    pub fn mkdir(&mut self, sim: &mut Simulation, path: &str) -> Result<(), FsError> {
        self.call(sim, FsOp::Mkdir { path: Self::path(path)? }).map(|_| ())
    }

    /// `create` a file of `size` bytes.
    pub fn create(&mut self, sim: &mut Simulation, path: &str, size: u64) -> Result<(), FsError> {
        self.call(sim, FsOp::Create { path: Self::path(path)?, size }).map(|_| ())
    }

    /// `stat`.
    pub fn stat(&mut self, sim: &mut Simulation, path: &str) -> Result<InodeAttrs, FsError> {
        match self.call(sim, FsOp::Stat { path: Self::path(path)? })? {
            FsOk::Attrs(a) => Ok(a),
            other => panic!("stat returned {other:?}"),
        }
    }

    /// `ls`.
    pub fn list(&mut self, sim: &mut Simulation, path: &str) -> Result<Vec<DirEntry>, FsError> {
        match self.call(sim, FsOp::List { path: Self::path(path)? })? {
            FsOk::Listing(entries) => Ok(entries),
            other => panic!("list returned {other:?}"),
        }
    }

    /// `open` (attributes + block locations).
    pub fn open(&mut self, sim: &mut Simulation, path: &str) -> Result<FsOk, FsError> {
        self.call(sim, FsOp::Open { path: Self::path(path)? })
    }

    /// `delete`.
    pub fn delete(&mut self, sim: &mut Simulation, path: &str, recursive: bool) -> Result<(), FsError> {
        self.call(sim, FsOp::Delete { path: Self::path(path)?, recursive }).map(|_| ())
    }

    /// Atomic `rename`.
    pub fn rename(&mut self, sim: &mut Simulation, src: &str, dst: &str) -> Result<(), FsError> {
        self.call(sim, FsOp::Rename { src: Self::path(src)?, dst: Self::path(dst)? }).map(|_| ())
    }

    /// `chmod`.
    pub fn set_perm(&mut self, sim: &mut Simulation, path: &str, perm: u16) -> Result<(), FsError> {
        self.call(sim, FsOp::SetPerm { path: Self::path(path)?, perm }).map(|_| ())
    }
}
