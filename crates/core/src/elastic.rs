//! Elastic metadata serving: the namenode pool controller.
//!
//! HopsFS namenodes are stateless (all metadata lives in NDB), which makes
//! the serving layer the natural place to exploit cloud elasticity: spawn
//! namenodes when the pool saturates, retire them when load drops, and pay
//! for the peak only while it lasts. The [`ElasticController`] actor does
//! that with the composite overload signal the admission subsystem already
//! computes (worker-lane backlog plus the NDB TC-queue-delay hint):
//!
//! - every serving namenode pushes an [`NnLoadReport`] each sweep tick;
//! - the controller keeps the pool-mean signal inside the configured
//!   `[scale_down_threshold, scale_up_threshold]` band, activating one
//!   parked namenode ([`NnActivate`] → modeled boot delay → [`NnServing`])
//!   or draining one serving namenode per action, with a cooldown between
//!   actions (hysteresis);
//! - membership changes are versioned: each grow/shrink bumps a
//!   **membership epoch**, broadcast to namenodes ([`MembershipUpdate`])
//!   and piggybacked on every [`crate::ops::FsResponse`], so clients
//!   re-discover the active set lazily without a client broadcast;
//! - retiring is **drain-then-park**: the namenode leaves the membership
//!   first (no new work routes to it), then finishes its in-flight
//!   operations and lease revoke rounds before reporting [`NnDrainDone`].
//!   A namenode that crashes mid-drain simply never reports; the
//!   controller force-parks it after `drain_timeout` — it is already out
//!   of the membership, so clients have moved on.
//!
//! The activation cold-start is modeled explicitly: `boot_delay` before the
//! namenode serves at all, then `warm_ops` operations at `warm_cost_pct`
//! extra base cost while its inode-hint cache refills. The `fig_elastic`
//! bench checks the resulting trade: near-static goodput at a fraction of
//! the static pool's provisioned namenode-hours.

use crate::view::FsView;
use simnet::{Actor, Ctx, NodeId, Payload, SimDuration, SimTime};
use std::any::Any;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Controller evaluation tick.
#[derive(Debug, Clone, Copy)]
struct TickElastic;

/// Controller → namenode: leave the parked state. The namenode models its
/// cold start (`boot_delay`, then the cache-warm penalty) and reports
/// [`NnServing`] when it is taking traffic.
#[derive(Debug, Clone, Copy)]
pub struct NnActivate;

/// Controller → namenode: stop taking new work, finish what is in flight
/// (operations and lease revoke rounds), then report [`NnDrainDone`] and
/// park. The controller removes the namenode from the membership *before*
/// sending this, so no new work routes to it while it drains.
#[derive(Debug, Clone, Copy)]
pub struct NnDrain;

/// Namenode → controller: activation finished, now serving.
#[derive(Debug, Clone, Copy)]
pub struct NnServing {
    /// Namenode index.
    pub nn_idx: u32,
}

/// Namenode → controller: drain finished, now parked.
#[derive(Debug, Clone, Copy)]
pub struct NnDrainDone {
    /// Namenode index.
    pub nn_idx: u32,
}

/// Namenode → controller: periodic load sample (sent each sweep tick while
/// serving).
#[derive(Debug, Clone, Copy)]
pub struct NnLoadReport {
    /// Namenode index.
    pub nn_idx: u32,
    /// The composite overload signal, in nanoseconds (worker backlog plus
    /// the weighted NDB TC-queue-delay hint — the admission gates' view).
    pub signal_ns: u64,
    /// Requests shed at admission since the last report.
    pub shed_delta: u64,
}

/// Controller → namenodes: the new versioned membership. Namenodes serve it
/// to clients via [`crate::ops::GetActiveNns`] and stamp the epoch on every
/// response.
#[derive(Debug, Clone)]
pub struct MembershipUpdate {
    /// Monotonic membership epoch.
    pub epoch: u64,
    /// Serving namenode indices.
    pub active: Vec<u32>,
}

/// Where each namenode is in its lifecycle, from the controller's view.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NnPoolState {
    /// Idle, owns no election row, sheds everything with a redirect.
    Parked,
    /// `NnActivate` sent; waiting out the boot delay.
    Booting,
    /// In the membership, taking traffic.
    Serving,
    /// Out of the membership, finishing in-flight work.
    Draining,
}

/// Controller statistics for the harness.
#[derive(Debug, Default, Clone)]
pub struct ElasticStats {
    /// Scale-up actions (activations requested).
    pub scale_ups: u64,
    /// Scale-down actions (drains requested).
    pub scale_downs: u64,
    /// Draining namenodes force-parked after `drain_timeout` (crash
    /// mid-drain).
    pub forced_parks: u64,
    /// Serving namenodes removed from the membership because they died.
    pub crash_evictions: u64,
    /// Integral of the serving count over time, in node-nanoseconds —
    /// divide by the run length for the mean provisioned namenode count.
    pub provisioned_nn_ns: u128,
    /// Load-report samples folded into the controller's view.
    pub reports_received: u64,
}

/// The namenode pool controller actor. One per elastic deployment; spawned
/// by [`crate::deploy::build_fs_cluster`] when `config.elastic.enabled`.
pub struct ElasticController {
    view: Arc<FsView>,
    /// Lifecycle state per namenode index.
    state: Vec<NnPoolState>,
    /// Current membership epoch (starts at 1: epoch 0 means "static").
    epoch: u64,
    /// Latest load sample per serving namenode: (when, signal, shed delta).
    reports: BTreeMap<u32, (SimTime, u64, u64)>,
    /// When the last scaling action fired (cooldown anchor).
    last_action: SimTime,
    /// Per-namenode drain start times (drain-timeout fallback).
    drain_started: BTreeMap<u32, SimTime>,
    /// When the provisioned integral was last advanced.
    last_integral_at: SimTime,
    /// Statistics.
    pub stats: ElasticStats,
}

impl ElasticController {
    /// Creates the controller for a deployment.
    pub fn new(view: Arc<FsView>) -> Self {
        let n = view.nn_ids.len();
        let initial = view.config.elastic.initial_active.clamp(1, n);
        let state = (0..n)
            .map(|i| if i < initial { NnPoolState::Serving } else { NnPoolState::Parked })
            .collect();
        ElasticController {
            view,
            state,
            epoch: 1,
            reports: BTreeMap::new(),
            last_action: SimTime::ZERO,
            drain_started: BTreeMap::new(),
            last_integral_at: SimTime::ZERO,
            stats: ElasticStats::default(),
        }
    }

    /// Current membership epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Serving namenode indices, ascending.
    pub fn serving(&self) -> Vec<u32> {
        self.state
            .iter()
            .enumerate()
            .filter(|(_, s)| **s == NnPoolState::Serving)
            .map(|(i, _)| i as u32)
            .collect()
    }

    /// Lifecycle state of namenode `idx`.
    pub fn state_of(&self, idx: usize) -> NnPoolState {
        self.state[idx]
    }

    fn advance_integral(&mut self, now: SimTime) {
        let serving = self.state.iter().filter(|s| **s == NnPoolState::Serving).count() as u128;
        let dt = now.saturating_since(self.last_integral_at).as_nanos() as u128;
        self.stats.provisioned_nn_ns += serving * dt;
        self.last_integral_at = now;
    }

    fn broadcast_membership(&mut self, ctx: &mut Ctx<'_>) {
        let update = MembershipUpdate { epoch: self.epoch, active: self.serving() };
        for &nn in &self.view.nn_ids {
            ctx.send_sized(nn, 48 + 4 * update.active.len() as u64, update.clone());
        }
    }

    /// Pool-mean composite signal and total admission sheds over fresh
    /// reports from serving nodes. Sheds are the saturated tail of the
    /// signal: a gate that is already turning work away votes to scale up
    /// regardless of the latency mean.
    fn fresh_load(&self, now: SimTime) -> Option<(SimDuration, u64)> {
        let horizon = self.view.config.elastic.eval_period * 2;
        let fresh: Vec<(u64, u64)> = self
            .state
            .iter()
            .enumerate()
            .filter(|(_, s)| **s == NnPoolState::Serving)
            .filter_map(|(i, _)| self.reports.get(&(i as u32)))
            .filter(|(at, _, _)| now.saturating_since(*at) <= horizon)
            .map(|&(_, sig, shed)| (sig, shed))
            .collect();
        if fresh.is_empty() {
            return None;
        }
        let mean = fresh.iter().map(|&(s, _)| s).sum::<u64>() / fresh.len() as u64;
        let sheds = fresh.iter().map(|&(_, d)| d).sum();
        Some((SimDuration::from_nanos(mean), sheds))
    }

    fn on_tick(&mut self, ctx: &mut Ctx<'_>) {
        let now = ctx.now();
        let cfg = self.view.config.elastic;
        self.advance_integral(now);

        // Crash detection: a serving namenode that died leaves the
        // membership now (clients were already timing out on it; the epoch
        // bump stops fresh picks). It rejoins through a normal activation
        // once it is back up.
        let mut evicted = false;
        for i in 0..self.state.len() {
            if self.state[i] == NnPoolState::Serving && !ctx.is_alive(self.view.nn_ids[i]) {
                self.state[i] = NnPoolState::Parked;
                self.reports.remove(&(i as u32));
                self.stats.crash_evictions += 1;
                evicted = true;
            }
        }
        if evicted {
            self.epoch += 1;
            self.broadcast_membership(ctx);
        }

        // Drain-timeout fallback: a drainer that never reported (crashed
        // mid-drain, or its DrainDone was lost) is force-parked. It is
        // already out of the membership, so this only reconciles state.
        let overdue: Vec<u32> = self
            .drain_started
            .iter()
            .filter(|&(_, &at)| now.saturating_since(at) > cfg.drain_timeout)
            .map(|(&i, _)| i)
            .collect();
        for i in overdue {
            self.drain_started.remove(&i);
            if self.state[i as usize] == NnPoolState::Draining {
                self.state[i as usize] = NnPoolState::Parked;
                self.stats.forced_parks += 1;
            }
        }

        let serving = self.serving();
        let cool = now.saturating_since(self.last_action) >= cfg.cooldown;
        if let Some((mean, sheds)) = self.fresh_load(now) {
            if cool && (mean > cfg.scale_up_threshold || sheds > 0) {
                // Activate the lowest parked index that is alive.
                let pick = self
                    .state
                    .iter()
                    .enumerate()
                    .position(|(i, s)| {
                        *s == NnPoolState::Parked && ctx.is_alive(self.view.nn_ids[i])
                    });
                if let Some(i) = pick {
                    self.state[i] = NnPoolState::Booting;
                    self.stats.scale_ups += 1;
                    self.last_action = now;
                    ctx.send_sized(self.view.nn_ids[i], 32, NnActivate);
                }
            } else if cool
                && mean < cfg.scale_down_threshold
                && sheds == 0
                && serving.len() > cfg.min_active.max(1)
            {
                // Drain the highest serving index: membership first, then
                // the drain order, so no new work races onto the leaver.
                let i = *serving.last().expect("non-empty serving set") as usize;
                self.state[i] = NnPoolState::Draining;
                self.reports.remove(&(i as u32));
                self.drain_started.insert(i as u32, now);
                self.stats.scale_downs += 1;
                self.last_action = now;
                self.epoch += 1;
                self.broadcast_membership(ctx);
                ctx.send_sized(self.view.nn_ids[i], 32, NnDrain);
            }
        }
        ctx.schedule(cfg.eval_period, TickElastic);
    }

    fn on_serving(&mut self, ctx: &mut Ctx<'_>, m: NnServing) {
        let i = m.nn_idx as usize;
        if i >= self.state.len() || self.state[i] != NnPoolState::Booting {
            return; // stale (e.g. crash-evicted while booting)
        }
        self.advance_integral(ctx.now());
        self.state[i] = NnPoolState::Serving;
        self.epoch += 1;
        self.broadcast_membership(ctx);
    }

    fn on_drain_done(&mut self, ctx: &mut Ctx<'_>, m: NnDrainDone) {
        let i = m.nn_idx as usize;
        if i >= self.state.len() || self.state[i] != NnPoolState::Draining {
            return;
        }
        self.advance_integral(ctx.now());
        self.state[i] = NnPoolState::Parked;
        self.drain_started.remove(&m.nn_idx);
    }
}

impl Actor for ElasticController {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        self.last_integral_at = ctx.now();
        // Seed the initial membership so namenodes and clients agree on
        // epoch 1 from the first response.
        self.broadcast_membership(ctx);
        ctx.schedule(self.view.config.elastic.eval_period, TickElastic);
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_>, _from: NodeId, msg: Box<dyn Payload>) {
        let any = msg.into_any();
        let any = match any.downcast::<NnLoadReport>() {
            Ok(m) => {
                self.stats.reports_received += 1;
                self.reports.insert(m.nn_idx, (ctx.now(), m.signal_ns, m.shed_delta));
                return;
            }
            Err(m) => m,
        };
        let any = match any.downcast::<NnServing>() {
            Ok(m) => return self.on_serving(ctx, *m),
            Err(m) => m,
        };
        let any = match any.downcast::<NnDrainDone>() {
            Ok(m) => return self.on_drain_done(ctx, *m),
            Err(m) => m,
        };
        match any.downcast::<TickElastic>() {
            Ok(_) => self.on_tick(ctx),
            Err(m) => debug_assert!(false, "elastic controller got unknown message {m:?}"),
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}
