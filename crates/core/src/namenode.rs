//! The stateless namenode (NN): HopsFS's metadata serving layer.
//!
//! Every file-system operation is executed as one NDB transaction using the
//! HopsFS recipe (Niazi et al., FAST'17):
//!
//! 1. consult the local inode-hint cache for resolved ancestors;
//! 2. start a transaction with a distribution-awareness hint (the target's
//!    parent partition);
//! 3. resolve remaining path components with read-committed reads — with
//!    Read Backup tables these are the reads that become AZ-local;
//! 4. take hierarchical (implicit) locks: shared on the parent, exclusive on
//!    the target(s), re-reading under lock to validate;
//! 5. execute and commit. Aborts (lock timeouts, node failures) retry with
//!    backoff, providing backpressure to NDB (§II-B2).
//!
//! Namenodes also run the NDB-backed leader-election protocol (each NN bumps
//! a counter row every round and scans everyone else's; the lowest live
//! index leads), report their `locationDomainId` in their election row
//! (§IV-B3), and — when leading — drive block re-replication after
//! block-datanode failures (§IV-C2).

use crate::block::{InvalidateBlock, ReplicaCopied, ReplicateBlockCmd, StoreBlock};
use crate::cloudstore::{DeleteObject, PutObject, PutObjectAck, CLOUD_LOCATION};
use crate::config::{BlockBackend, FsConfig};
use crate::elastic::{
    MembershipUpdate, NnActivate, NnDrain, NnDrainDone, NnLoadReport, NnPoolState, NnServing,
};
use crate::hintcache::HintCache;
use crate::lease::{
    LeaseGrant, LeaseInvalidate, LeaseInvalidateAck, LeaseRenew, LeaseRenewAck, LeaseRevokeAck,
    LeaseRevokeReq, LeaseTable, MutationNotice,
};
use crate::meta::{
    decode_sequence, encode_sequence, BlockRecord, FsSchema, InodeRecord, NnRecord, ReplicaRecord,
    StoRecord,
};
use crate::ops::{ActiveNn, ActiveNns, FsOp, FsRequest, FsResponse, GetActiveNns, OpKind};
use crate::placement::place_replicas;
use crate::types::{BlockLocation, DirEntry, FsError, FsOk, FsResult, InodeId};
use crate::view::FsView;
use bytes::Bytes;
use ndb::messages::ReadSpec;
use ndb::{AbortReason, ClientKernel, LockMode, PartitionKey, RowKey, TxEvent, TxId, WriteOp};
use simnet::{Actor, Admission, Ctx, Gate, NodeId, Payload, SimDuration, SimTime};
use std::any::Any;
use std::collections::{BTreeMap, BTreeSet, HashMap, VecDeque};
use std::sync::Arc;

/// Lane-class name for the namenode worker pool.
pub const NN_WORKER: &str = "worker";

/// Admission priority classes, highest first (indexes into the gate array).
const CLASS_INTERACTIVE: usize = 0;
const CLASS_BATCH: usize = 1;
const CLASS_MAINTENANCE: usize = 2;

const ID_BATCH: u64 = 1024;
const CACHE_CAP: usize = 65_536;

#[derive(Debug, Clone)]
struct TickElection;
#[derive(Debug, Clone)]
struct TickSweep;
/// Activation boot delay elapsed: the namenode starts serving.
#[derive(Debug, Clone)]
struct BootDone;
#[derive(Debug, Clone)]
struct OpResume {
    op: u64,
}

/// Block-storage datanode → namenode heartbeat.
#[derive(Debug, Clone, Copy)]
pub struct BlockDnHeartbeat {
    /// Block-storage datanode index.
    pub dn_idx: u32,
}

/// Per-namenode statistics for the harness.
#[derive(Debug, Default, Clone)]
pub struct NnStats {
    /// Successfully answered operations per kind.
    pub ops_ok: HashMap<OpKind, u64>,
    /// Failed operations per kind (after retries).
    pub ops_err: HashMap<OpKind, u64>,
    /// Transaction retries performed.
    pub tx_retries: u64,
    /// Inode-hint cache hits.
    pub cache_hits: u64,
    /// Inode-hint cache misses.
    pub cache_misses: u64,
    /// Re-replication commands issued (leader only).
    pub rereplications: u64,
    /// Subtree operations (recursive directory delete / directory rename)
    /// executed through the STO protocol.
    pub sto_ops: u64,
    /// Bounded delete batches committed by subtree operations.
    pub sto_batches: u64,
    /// Operations bounced off an in-flight subtree lock (retryable).
    pub sto_rejections: u64,
    /// Orphaned subtree locks reclaimed by the cleanup sweep.
    pub sto_orphans_cleaned: u64,
    /// Largest write step this namenode issued in any single transaction.
    pub max_tx_writes: u64,
    /// Longest wall-clock span any subtree op held its root lock, in ns.
    pub sto_lock_hold_max_ns: u64,
    /// Client FS requests delivered to this namenode (before admission).
    pub requests_received: u64,
    /// Interactive requests shed at admission with `Overloaded` (never
    /// enqueued, never executed, never acked `Ok`).
    pub admission_shed: u64,
    /// STO phase batches deferred by the batch-class gate.
    pub sto_deferred: u64,
    /// Re-replication pump rounds paused by the maintenance-class gate.
    pub repl_deferred: u64,
    /// Stale-chain fallbacks that dropped a scoped hint-cache prefix
    /// (instead of the pre-PR-7 whole-cache clear).
    pub cache_stale_drops: u64,
    /// Leases granted on read responses (client caching on).
    pub leases_granted: u64,
    /// Lease grants refused by a commit fence (possibly stale read).
    pub lease_grants_fenced: u64,
    /// Revoke rounds opened for committed conflicting mutations.
    pub lease_revoke_rounds: u64,
    /// Invalidation pushes sent to lease-holding clients.
    pub lease_pushes: u64,
    /// Lease renewals granted.
    pub lease_renewals_ok: u64,
    /// Lease renewals shed by the maintenance-class admission gate.
    pub lease_renewals_shed: u64,
    /// Requests refused with a redirect because this namenode was parked,
    /// booting or draining (elastic pool only).
    pub elastic_redirects: u64,
    /// Operations that paid the post-activation cache-warm penalty.
    pub warm_penalty_ops: u64,
}

impl NnStats {
    /// Total operations answered successfully.
    pub fn total_ok(&self) -> u64 {
        self.ops_ok.values().sum()
    }
}

#[derive(Debug, Clone)]
struct Walk {
    comps: Vec<String>,
    idx: usize,
    /// Inode id of the deepest resolved directory (starts at root).
    cur: u64,
    /// Row key (parent, name) of the deepest resolved inode (the root's own
    /// row is `(0, "")`).
    cur_key: (u64, String),
    /// Components resolved from the inode-hint cache: `(parent, name,
    /// expected id)`. HopsFS validates these with read-committed reads
    /// *inside* the transaction (batched with the lock reads) — these are
    /// exactly the reads that Read Backup makes AZ-local (§IV-A5, Fig. 14).
    cached_chain: Vec<(u64, String, u64)>,
    /// Every resolved directory id on the path, root first (cache- and
    /// DB-resolved alike) — the lease grant's ancestor-id chain.
    resolved_ids: Vec<u64>,
    stop_at_parent: bool,
}

impl Walk {
    fn new(comps: &[String], stop_at_parent: bool) -> Self {
        Walk {
            comps: comps.to_vec(),
            idx: 0,
            cur: InodeId::ROOT.0,
            cur_key: (InodeId::NONE.0, String::new()),
            cached_chain: Vec::new(),
            resolved_ids: vec![InodeId::ROOT.0],
            stop_at_parent,
        }
    }

    fn end(&self) -> usize {
        if self.stop_at_parent {
            self.comps.len().saturating_sub(1)
        } else {
            self.comps.len()
        }
    }

    fn remaining(&self) -> usize {
        self.end().saturating_sub(self.idx)
    }

    fn final_name(&self) -> &str {
        self.comps.last().map(String::as_str).unwrap_or("")
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Stage {
    AwaitIds,
    WalkA,
    WalkB,
    Locking,
    /// Reading a small file's inline data (Open).
    SmallRead,
    /// Op-specific scan rounds (delete emptiness, listing, block lookup…).
    Scanning(u8),
    Committing,
    /// Subtree op: committing the small lock-flag transaction.
    StoLock,
    /// Subtree op: BFS discovery scans (0 = directories, 1 = file replicas).
    StoScan(u8),
    /// Subtree op: committing one bounded delete batch.
    StoBatch,
    /// Subtree op: committing the closing (root entry + lock row) transaction.
    StoFinal,
}

/// A block-backed file discovered by the subtree scan, awaiting its replica
/// scan round.
#[derive(Debug)]
struct StoFile {
    id: u64,
    /// Tree depth of the file's entry (root = 0).
    depth: u32,
    /// The file's own entry-row delete (keyed under its parent directory).
    entry: WriteOp,
    inline: bool,
    block_count: u32,
}

/// Per-op state of the HopsFS subtree operations protocol (FAST'17 §3.6):
/// a small transaction sets [`InodeRecord::sto_locked`] on the subtree root
/// and publishes a row in `sto_locks`; the subtree is then deleted in
/// bounded batches ([`FsConfig::subtree_batch_size`]); a final small
/// transaction removes (or, for rename, moves) the root entry and clears the
/// lock row.
#[derive(Debug)]
struct StoState {
    /// Subtree root inode id (the flagged inode).
    root: u64,
    /// Row key `(parent id, name)` of the root's entry.
    root_key: (u64, String),
    /// The root's record with the flag set (rename's final Put re-derives
    /// the cleared copy from it).
    root_rec: InodeRecord,
    /// Rename destination `(parent id, name)`; `None` for delete.
    rename_dst: Option<(u64, String)>,
    /// BFS frontier: directories awaiting their child scan, with depth.
    dirs: VecDeque<(u64, u32)>,
    /// Block-backed files awaiting their replica scan.
    files: VecDeque<StoFile>,
    /// Per-inode delete units tagged with tree depth.
    units: Vec<(u32, Vec<WriteOp>)>,
    /// Bounded write batches awaiting execution (front = next).
    batches: VecDeque<Vec<WriteOp>>,
    /// When the lock transaction committed.
    locked_at: SimTime,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LockSlot {
    /// Read-committed validation of a cache-resolved ancestor.
    Ancestor {
        /// The inode id the cache promised.
        expected_id: u64,
    },
    /// Shared lock on the target's parent.
    ParentA,
    /// Exclusive lock on the target (read-committed for read-only ops).
    TargetA,
    /// Shared lock on the rename destination's parent.
    ParentB,
    /// Exclusive lock on the rename destination entry.
    TargetB,
}

impl LockSlot {
    /// Priority when deduplicating same-key specs (higher wins).
    fn rank(self) -> u8 {
        match self {
            LockSlot::TargetA | LockSlot::TargetB => 3,
            LockSlot::ParentA | LockSlot::ParentB => 2,
            LockSlot::Ancestor { .. } => 1,
        }
    }
}

#[derive(Debug)]
struct OpCtx {
    client: NodeId,
    req_id: u64,
    op: FsOp,
    idempotent_retry: bool,
    attempt: u32,
    /// Tracing span of the originating client op (NONE when tracing is off);
    /// restored as the ambient span whenever the op resumes from stored
    /// state (retry backoff, id-pool waits, tx events surfaced by sweeps).
    span: simnet::SpanId,
    #[allow(dead_code)] // kept for debugging op lifetimes
    started: SimTime,
    tx: Option<TxId>,
    stage: Stage,
    walk_a: Walk,
    walk_b: Option<Walk>,
    parent_rec: Option<InodeRecord>,
    target_rec: Option<InodeRecord>,
    parent_b_rec: Option<InodeRecord>,
    target_b_rec: Option<InodeRecord>,
    lock_slots: Vec<LockSlot>,
    pending_ok: Option<FsOk>,
    /// Open: decoded block rows awaiting the replica scan.
    blocks: Vec<BlockRecord>,
    /// Recursive delete: directories still to scan.
    dir_queue: VecDeque<u64>,
    /// Recursive delete: block-backed files needing replica cleanup.
    file_queue: VecDeque<u64>,
    /// Accumulated writes for the final write step.
    writes: Vec<WriteOp>,
    /// Inode-hint cache entries to drop if the mutation commits (rename
    /// sources, deleted entries).
    cache_invalidate: Vec<(u64, String)>,
    /// (block, dn) invalidations to fan out after commit.
    doomed_blocks: Vec<(u64, u32)>,
    /// Subtree-operation state; `Some` once the lock phase starts.
    sto: Option<StoState>,
    /// When this attempt's transaction began — before any database read
    /// was *issued*, so every row the op sees is at least this fresh: the
    /// lease staleness anchor (see [`crate::lease`]).
    read_anchor: Option<SimTime>,
    /// When this op's commit was issued (lower bound on the commit point;
    /// the [`MutationNotice::commit_floor`]).
    commit_floor: Option<SimTime>,
}

#[derive(Debug)]
enum AdminTx {
    IdRefill {
        base: Option<u64>,
    },
    Election {
        scanned: bool,
    },
    /// Scanning the dead datanode's reverse index.
    ReplScan,
    /// Scanning one affected file's replicas.
    ReplReplicas {
        inode: u64,
        block: u64,
    },
    /// Writing the repaired replica rows.
    ReplCommit,
    /// Scanning `sto_locks` for orphaned subtree flags.
    StoSweep,
    /// Repairing one orphaned subtree lock: `read` is false while the root
    /// entry + lock row are being read, true once the repair write is out.
    StoClean {
        rec: StoRecord,
        read: bool,
    },
}

/// Origin-side revoke round: a committed conflicting mutation's response
/// is held until every namenode confirmed its conflicting leases are
/// revoked or expired (commit-then-revoke-then-ack, see [`crate::lease`]).
#[derive(Debug)]
struct LeaseRound {
    client: NodeId,
    req_id: u64,
    result: FsResult,
    kind: OpKind,
    span: simnet::SpanId,
    notice: MutationNotice,
    /// Namenode indexes that have not acked yet.
    pending: BTreeSet<u32>,
    /// Last (re)send of the revoke requests; the sweep tick resends.
    last_sent: SimTime,
}

/// Push-side state of one revoke round on a granting namenode: the clients
/// it pushed [`LeaseInvalidate`] to, each bounded by its lease expiry (a
/// partitioned client is waited *out*, never waited *on* indefinitely).
#[derive(Debug)]
struct LeasePush {
    origin: NodeId,
    waiting: BTreeMap<u32, SimTime>,
}

/// The namenode actor. Construct via [`crate::deploy::build_fs_cluster`].
pub struct NameNodeActor {
    view: Arc<FsView>,
    /// My index among the namenodes.
    pub my_idx: usize,
    kernel: Option<ClientKernel>,
    ops: HashMap<u64, OpCtx>,
    tx_to_op: HashMap<TxId, u64>,
    admin_txs: HashMap<TxId, AdminTx>,
    next_op: u64,
    cache: HintCache,
    ids_next: u64,
    ids_end: u64,
    id_refill_inflight: bool,
    awaiting_ids: VecDeque<u64>,
    counter: u64,
    seen: HashMap<u32, (u64, SimTime)>,
    /// Active namenodes from the last election scan.
    pub active: Vec<ActiveNn>,
    /// Leader from the last election scan.
    pub leader_idx: u32,
    dn_last_hb: Vec<SimTime>,
    dn_marked_dead: Vec<bool>,
    repl_queue: VecDeque<(u64, u64)>, // (inode, block) needing repair
    repl_dead_dn: u32,
    repl_inflight: bool,
    /// Subtree roots this namenode has an STO op in flight for; a `sto_locks`
    /// row we own that is *not* in here is an orphan (restart or give-up).
    sto_inflight: BTreeSet<u64>,
    /// Orphaned subtree locks queued for cleanup.
    sto_cleanup: VecDeque<StoRecord>,
    sto_sweep_inflight: bool,
    sto_clean_inflight: bool,
    /// Admission gates, indexed by priority class
    /// ([`CLASS_INTERACTIVE`], [`CLASS_BATCH`], [`CLASS_MAINTENANCE`]).
    /// Pure volatile control state: rebuilt from config on restart.
    gates: [Gate; 3],
    /// Lease holders, fences and listing registrations (client caching).
    leases: LeaseTable,
    /// Origin-side revoke rounds keyed by round id.
    lease_rounds: BTreeMap<u64, LeaseRound>,
    /// Push-side rounds keyed by `(origin namenode idx, round id)`.
    lease_pushes: BTreeMap<(u32, u64), LeasePush>,
    lease_round_next: u64,
    /// Restart grace: revoke requests are ignored (the origin resends)
    /// until every lease granted before the crash has expired.
    lease_grace_until: SimTime,
    /// Grant warm-up: no grants until this namenode is visible in every
    /// peer's active set (else a revoke round could wrongly exempt it).
    lease_grants_from: SimTime,
    /// Namenode idx → when it fell out of the active set. A peer absent a
    /// full lease ttl past detection holds no unexpired grants and is
    /// exempted from revoke rounds.
    nn_departed_at: BTreeMap<u32, SimTime>,
    /// Where this namenode is in the elastic pool lifecycle. Always
    /// `Serving` when the pool is static (`elastic.enabled == false`).
    serve_state: NnPoolState,
    /// Latest pool membership epoch seen (0 = static deployment).
    membership_epoch: u64,
    /// Serving namenode indices per the latest [`MembershipUpdate`].
    membership: Vec<u32>,
    /// Admitted ops remaining under the post-activation cache-warm penalty.
    warm_left: u64,
    /// `admission_shed` high-water mark already reported to the controller.
    shed_reported: u64,
    /// When the current drain began (meaningful only while `Draining`).
    drain_since: SimTime,
    /// Largest composite overload signal observed at a request arrival since
    /// the last load report. A point sample at the sweep tick reads near
    /// zero whenever the worker lane drains between ticks; the windowed peak
    /// keeps the controller's signal monotone in utilization below the
    /// saturation knee, which is what makes the hysteresis band usable.
    signal_peak: SimDuration,
    /// Statistics.
    pub stats: NnStats,
}

enum WalkOutcome {
    Read { tx: TxId, key: RowKey },
    NextWalk,
    Locks,
}

impl NameNodeActor {
    /// Creates namenode `my_idx` of the deployment.
    pub fn new(view: Arc<FsView>, my_idx: usize) -> Self {
        let dns = view.dn_ids.len();
        let adm = view.config.admission;
        let gates = [
            Gate::new(adm.interactive_threshold, adm.trickle_per_sec, adm.retry_floor),
            Gate::new(adm.batch_threshold, adm.trickle_per_sec, adm.retry_floor),
            Gate::new(adm.maintenance_threshold, adm.trickle_per_sec, adm.retry_floor),
        ];
        let el = view.config.elastic;
        let (serve_state, membership_epoch, membership) = if el.enabled {
            let initial = el.initial_active.clamp(1, view.nn_ids.len());
            let state =
                if my_idx < initial { NnPoolState::Serving } else { NnPoolState::Parked };
            (state, 1, (0..initial as u32).collect())
        } else {
            (NnPoolState::Serving, 0, (0..view.nn_ids.len() as u32).collect())
        };
        NameNodeActor {
            view,
            my_idx,
            kernel: None,
            ops: HashMap::new(),
            tx_to_op: HashMap::new(),
            admin_txs: HashMap::new(),
            next_op: 0,
            cache: HintCache::new(CACHE_CAP),
            ids_next: 0,
            ids_end: 0,
            id_refill_inflight: false,
            awaiting_ids: VecDeque::new(),
            counter: 0,
            seen: HashMap::new(),
            active: Vec::new(),
            leader_idx: 0,
            dn_last_hb: vec![SimTime::ZERO; dns],
            dn_marked_dead: vec![false; dns],
            repl_queue: VecDeque::new(),
            repl_dead_dn: 0,
            repl_inflight: false,
            sto_inflight: BTreeSet::new(),
            sto_cleanup: VecDeque::new(),
            sto_sweep_inflight: false,
            sto_clean_inflight: false,
            gates,
            leases: LeaseTable::default(),
            lease_rounds: BTreeMap::new(),
            lease_pushes: BTreeMap::new(),
            lease_round_next: 0,
            lease_grace_until: SimTime::ZERO,
            lease_grants_from: SimTime::ZERO,
            nn_departed_at: BTreeMap::new(),
            serve_state,
            membership_epoch,
            membership,
            warm_left: 0,
            shed_reported: 0,
            drain_since: SimTime::ZERO,
            signal_peak: SimDuration::ZERO,
            stats: NnStats::default(),
        }
    }

    /// Where this namenode is in the elastic pool lifecycle.
    pub fn serve_state(&self) -> NnPoolState {
        self.serve_state
    }

    /// Latest pool membership epoch seen (0 = static deployment).
    pub fn membership_epoch(&self) -> u64 {
        self.membership_epoch
    }

    /// Number of in-flight (admitted, unfinished) operations.
    pub fn ops_in_flight(&self) -> usize {
        self.ops.len()
    }

    /// The composite overload signal an arriving request sees: local
    /// worker-lane queue delay plus a configurable share of the latest NDB
    /// TC-queue-delay hint piggybacked on transaction replies. The NDB term
    /// makes the gate close *before* the metadata store melts, not after
    /// the local queue finally notices.
    fn overload_signal(&self, ctx: &mut Ctx<'_>) -> SimDuration {
        let local = ctx.lane_backlog(NN_WORKER);
        let ndb = self.kernel.as_ref().map_or(SimDuration::ZERO, ClientKernel::tc_queue_delay);
        let pct = u64::from(self.cfg().admission.ndb_signal_pct);
        local + SimDuration::from_nanos(ndb.as_nanos().saturating_mul(pct) / 100)
    }

    /// Whether this namenode currently believes it leads.
    pub fn is_leader(&self) -> bool {
        self.leader_idx == self.my_idx as u32
    }

    /// Largest cumulative write batch any transaction of this namenode's
    /// kernel has carried (white-box: tests assert the subtree batching
    /// bound). Resets when the namenode restarts; see
    /// [`NnStats::max_tx_writes`] for the restart-surviving high-water mark.
    pub fn largest_write_batch(&self) -> usize {
        self.kernel.as_ref().map(|k| k.largest_write_batch).unwrap_or(0)
    }

    /// Read-only view of the inode-hint cache (white-box: staleness
    /// regression tests).
    pub fn hint_cache(&self) -> &HintCache {
        &self.cache
    }

    fn fs(&self) -> FsSchema {
        self.view.fs
    }

    fn cfg(&self) -> &FsConfig {
        &self.view.config
    }

    fn kernel(&mut self) -> &mut ClientKernel {
        self.kernel.as_mut().expect("namenode not started")
    }

    fn cache_put(&mut self, parent: u64, name: &str, id: u64, is_dir: bool) {
        // Capacity is the HintCache's problem: generational eviction ages
        // out cold entries instead of dropping the whole working set.
        self.cache.put(parent, name, id, is_dir);
    }

    fn alloc_id(&mut self) -> u64 {
        debug_assert!(self.ids_next < self.ids_end, "id pool exhausted mid-op");
        let id = self.ids_next;
        self.ids_next += 1;
        id
    }

    // ----- request intake --------------------------------------------------

    fn on_fs_request(&mut self, ctx: &mut Ctx<'_>, from: NodeId, req: FsRequest) {
        let now = ctx.now();
        let kind = req.op.kind();
        self.stats.requests_received += 1;
        if self.serve_state != NnPoolState::Serving {
            // Parked, booting or draining: refuse with a redirect carrying
            // the membership epoch, so the client re-discovers the serving
            // set instead of backing off against a non-member. Direct send
            // — a parked namenode has no business charging worker time.
            self.stats.elastic_redirects += 1;
            let mut resp = FsResponse::plain(
                req.req_id,
                Err(FsError::Overloaded { retry_after: SimDuration::from_millis(10) }),
            );
            resp.membership_epoch = self.membership_epoch;
            resp.redirect = true;
            ctx.set_span(req.span);
            ctx.send_sized(from, 64, resp);
            return;
        }
        if self.cfg().elastic.enabled {
            let s = self.overload_signal(ctx);
            if s > self.signal_peak {
                self.signal_peak = s;
            }
        }
        if self.cfg().admission.enabled {
            let signal = self.overload_signal(ctx);
            // Salted per (request, namenode): clients shed in the same burst
            // get decorrelated retry-after hints.
            let salt = req.req_id ^ ((self.my_idx as u64) << 48) ^ (u64::from(from.0) << 16);
            let layer = ctx.layer();
            match self.gates[CLASS_INTERACTIVE].check(now, signal, salt) {
                Admission::Admit => {
                    ctx.metrics().inc(layer, "admission_admitted_interactive", 1);
                }
                Admission::Shed { retry_after } => {
                    // Shed before any queueing or execution: the reply is a
                    // direct send (no worker-lane charge), so the front door
                    // stays responsive precisely when the workers are not.
                    self.stats.admission_shed += 1;
                    ctx.metrics().inc(layer, "admission_shed_interactive", 1);
                    ctx.span_at("shed_interactive", "admission", req.span, now, now);
                    ctx.set_span(req.span);
                    let mut resp =
                        FsResponse::plain(req.req_id, Err(FsError::Overloaded { retry_after }));
                    resp.membership_epoch = self.membership_epoch;
                    ctx.send_sized(from, 64, resp);
                    return;
                }
            }
        }
        if let FsOp::Rename { src, dst } = &req.op {
            if src.is_prefix_of(dst) || src.is_root() || dst.is_root() {
                self.respond_now(ctx, from, req.req_id, Err(FsError::Invalid), kind, None, None);
                return;
            }
        }
        if req.op.path().is_root() && !matches!(kind, OpKind::List | OpKind::Stat) {
            self.respond_now(ctx, from, req.req_id, Err(FsError::Invalid), kind, None, None);
            return;
        }
        let op_id = self.next_op;
        self.next_op += 1;
        let octx = OpCtx {
            client: from,
            req_id: req.req_id,
            op: req.op,
            idempotent_retry: req.idempotent_retry,
            attempt: 1,
            span: req.span,
            started: now,
            tx: None,
            stage: Stage::WalkA,
            walk_a: Walk::new(&[], false), // placeholders; set in reset
            walk_b: None,
            parent_rec: None,
            target_rec: None,
            parent_b_rec: None,
            target_b_rec: None,
            lock_slots: Vec::new(),
            pending_ok: None,
            blocks: Vec::new(),
            dir_queue: VecDeque::new(),
            file_queue: VecDeque::new(),
            writes: Vec::new(),
            cache_invalidate: Vec::new(),
            doomed_blocks: Vec::new(),
            sto: None,
            read_anchor: None,
            commit_floor: None,
        };
        self.ops.insert(op_id, octx);
        self.reset_op_state(op_id);
        // Admission: the op starts once a worker thread picks it up. A
        // freshly activated namenode pays the cache-warm penalty: its
        // inode-hint cache is empty, so early ops cost extra until the
        // working set refills.
        let mut cost = self.cfg().nn_costs.op_base;
        if self.warm_left > 0 {
            self.warm_left -= 1;
            self.stats.warm_penalty_ops += 1;
            let pct = u64::from(self.cfg().elastic.warm_cost_pct);
            cost += SimDuration::from_nanos(cost.as_nanos().saturating_mul(pct) / 100);
        }
        ctx.execute_then(NN_WORKER, cost, OpResume { op: op_id });
    }

    fn reset_op_state(&mut self, op_id: u64) {
        // A retry from the top abandons any subtree-protocol progress; the
        // root is deregistered so the lock row (if the flag transaction did
        // commit) counts as an orphan for the cleanup sweep.
        if let Some(root) = self.ops.get_mut(&op_id).and_then(|o| o.sto.take()).map(|s| s.root) {
            self.sto_inflight.remove(&root);
        }
        let octx = self.ops.get_mut(&op_id).expect("op exists");
        let (walk_a, walk_b) = match &octx.op {
            FsOp::Rename { src, dst } => (
                Walk::new(src.components(), true),
                Some(Walk::new(dst.components(), true)),
            ),
            op => (Walk::new(op.path().components(), true), None),
        };
        octx.walk_a = walk_a;
        octx.walk_b = walk_b;
        octx.stage = Stage::WalkA;
        octx.parent_rec = None;
        octx.target_rec = None;
        octx.parent_b_rec = None;
        octx.target_b_rec = None;
        octx.lock_slots.clear();
        octx.pending_ok = None;
        octx.blocks.clear();
        octx.dir_queue.clear();
        octx.file_queue.clear();
        octx.writes.clear();
        octx.cache_invalidate.clear();
        octx.doomed_blocks.clear();
        octx.read_anchor = None;
        octx.commit_floor = None;
    }

    #[allow(clippy::too_many_arguments)]
    fn respond_now(
        &mut self,
        ctx: &mut Ctx<'_>,
        client: NodeId,
        req_id: u64,
        result: FsResult,
        kind: OpKind,
        lease: Option<LeaseGrant>,
        notice: Option<MutationNotice>,
    ) {
        match &result {
            Ok(_) => *self.stats.ops_ok.entry(kind).or_insert(0) += 1,
            Err(_) => *self.stats.ops_err.entry(kind).or_insert(0) += 1,
        }
        let cost = self.cfg().nn_costs.op_finish;
        let done = ctx.execute(NN_WORKER, cost);
        let resp = FsResponse {
            req_id,
            result,
            lease,
            notice,
            membership_epoch: self.membership_epoch,
            redirect: false,
        };
        ctx.send_sized_from(done, client, 256, resp);
    }

    /// Removes the op and releases its bookkeeping (tx mapping, STO root,
    /// doomed-block fan-out); returns the context plus any lease grant a
    /// successful read earned, for the caller to respond with.
    fn close_op(
        &mut self,
        ctx: &mut Ctx<'_>,
        op_id: u64,
        result: &FsResult,
    ) -> Option<(OpCtx, Option<LeaseGrant>)> {
        let octx = self.ops.remove(&op_id)?;
        if let Some(tx) = octx.tx {
            self.tx_to_op.remove(&tx);
        }
        if let Some(sto) = &octx.sto {
            // Done or given up either way; a surviving lock row is the
            // cleanup sweep's to reclaim once deregistered here.
            self.sto_inflight.remove(&sto.root);
        }
        for &(block, dn_idx) in &octx.doomed_blocks {
            if dn_idx == CLOUD_LOCATION {
                if !self.view.cloud_ids.is_empty() {
                    let me = ctx.me();
                    let endpoint = self.view.cloud_endpoint(ctx.az_of(me));
                    ctx.send_sized(endpoint, 64, DeleteObject { key: block });
                }
            } else if let Some(&dn_node) = self.view.dn_ids.get(dn_idx as usize) {
                ctx.send_sized(dn_node, 64, InvalidateBlock { block });
            }
        }
        let lease = self.maybe_grant(ctx, &octx, result);
        Some((octx, lease))
    }

    fn finish_op(&mut self, ctx: &mut Ctx<'_>, op_id: u64, result: FsResult) {
        if let Some((octx, lease)) = self.close_op(ctx, op_id, &result) {
            self.respond_now(ctx, octx.client, octx.req_id, result, octx.op.kind(), lease, None);
        }
    }

    /// Piggybacks a lease on a successful read when client caching is on:
    /// the resolved ancestor chain, anchored at the attempt's transaction
    /// start (before any read was issued — every row is at least that
    /// fresh), fences permitting.
    fn maybe_grant(
        &mut self,
        ctx: &mut Ctx<'_>,
        octx: &OpCtx,
        result: &FsResult,
    ) -> Option<LeaseGrant> {
        let lcfg = self.cfg().lease;
        let kind = octx.op.kind();
        if !lcfg.enabled || kind.is_mutation() || result.is_err() {
            return None;
        }
        let now = ctx.now();
        if now < self.lease_grants_from {
            return None;
        }
        let anchor = octx.read_anchor?;
        let target = octx.target_rec.as_ref()?.id;
        let mut ids = octx.walk_a.resolved_ids.clone();
        if ids.last() != Some(&target) {
            ids.push(target);
        }
        let listing_dir = (kind == OpKind::List
            && octx.target_rec.as_ref().is_some_and(|r| r.is_dir))
        .then_some(target);
        let expiry = anchor + lcfg.ttl;
        if expiry <= now {
            return None;
        }
        if !self.leases.grant_ok(&ids, listing_dir, anchor) {
            self.stats.lease_grants_fenced += 1;
            return None;
        }
        self.leases.register(&ids, listing_dir, octx.client.0, expiry);
        self.stats.leases_granted += 1;
        let layer = ctx.layer();
        ctx.metrics().inc(layer, "leases_granted", 1);
        Some(LeaseGrant { ids, target, listing_dir, anchor, expiry, granted_by: ctx.me().0 })
    }

    /// The lease-conflict footprint of a successfully acked mutation: inode
    /// ids to chain-invalidate and directory ids whose listings changed.
    /// `committed` is false for ambiguous idempotent-retry acks, where the
    /// original attempt's writes (and commit time) are unknown — the
    /// footprint widens to the parent and the notice is unmonitored.
    fn conflict_sets(octx: &OpCtx, committed: bool) -> (Vec<u64>, Vec<u64>, bool) {
        let parent = octx.walk_a.cur;
        let target = octx.target_rec.as_ref().map(|r| r.id);
        if !committed {
            // Create/Mkdir changed the parent's listing at most; Delete
            // removed an entry whose id is unknowable here — chain-kill the
            // whole parent.
            return match octx.op.kind() {
                OpKind::Delete => (vec![parent], vec![parent], false),
                _ => (Vec::new(), vec![parent], false),
            };
        }
        match octx.op.kind() {
            // Membership change only: listings of the parent go stale, but
            // attribute leases on existing children stay valid.
            OpKind::Mkdir | OpKind::Create => (Vec::new(), vec![parent], true),
            // Listings embed attributes, so attr mutations also kill the
            // parent's listing leases.
            OpKind::SetPerm | OpKind::Append | OpKind::Delete => {
                (target.into_iter().collect(), vec![parent], true)
            }
            OpKind::Rename => {
                let dst_parent = octx.walk_b.as_ref().map(|w| w.cur).unwrap_or(parent);
                let mut dirs = vec![parent];
                if dst_parent != parent {
                    dirs.push(dst_parent);
                }
                (target.into_iter().collect(), dirs, true)
            }
            OpKind::Stat | OpKind::List | OpKind::Open => (Vec::new(), Vec::new(), true),
        }
    }

    /// Completes a successfully acked mutation. When client caching is on
    /// and the mutation conflicts with possible lease holders, the response
    /// is held behind a revoke round (commit-then-revoke-then-ack);
    /// otherwise it goes straight out. `committed` is false for ambiguous
    /// idempotent-retry acks (see [`NameNodeActor::conflict_sets`]).
    fn finish_mutation(&mut self, ctx: &mut Ctx<'_>, op_id: u64, result: FsResult, committed: bool) {
        let enabled = self.cfg().lease.enabled;
        let (targets, listing_dirs, monitored) = match self.ops.get(&op_id) {
            Some(octx) if enabled && result.is_ok() => Self::conflict_sets(octx, committed),
            Some(_) => (Vec::new(), Vec::new(), true),
            None => return,
        };
        if targets.is_empty() && listing_dirs.is_empty() {
            return self.finish_op(ctx, op_id, result);
        }
        let now = ctx.now();
        let commit_floor =
            if monitored { self.ops[&op_id].commit_floor.unwrap_or(now) } else { now };
        let (octx, _) = match self.close_op(ctx, op_id, &result) {
            Some(x) => x,
            None => return,
        };
        let notice =
            MutationNotice { targets, listing_dirs, commit_time: now, commit_floor, monitored };
        self.open_revoke_round(ctx, octx, result, notice);
    }

    /// Opens a revoke round: [`LeaseRevokeReq`] to every namenode (this one
    /// included); the client's ack waits in [`NameNodeActor::lease_rounds`]
    /// until all of them confirmed.
    fn open_revoke_round(
        &mut self,
        ctx: &mut Ctx<'_>,
        octx: OpCtx,
        result: FsResult,
        notice: MutationNotice,
    ) {
        let round = self.lease_round_next;
        self.lease_round_next += 1;
        self.stats.lease_revoke_rounds += 1;
        let layer = ctx.layer();
        ctx.metrics().inc(layer, "lease_revoke_rounds", 1);
        let now = ctx.now();
        let req = LeaseRevokeReq {
            round,
            origin_idx: self.my_idx as u32,
            targets: notice.targets.clone(),
            listing_dirs: notice.listing_dirs.clone(),
            commit_time: notice.commit_time,
        };
        self.lease_rounds.insert(
            round,
            LeaseRound {
                client: octx.client,
                req_id: octx.req_id,
                result,
                kind: octx.op.kind(),
                span: octx.span,
                notice,
                pending: (0..self.view.nn_ids.len() as u32).collect(),
                last_sent: now,
            },
        );
        let size = 96 + 8 * (req.targets.len() + req.listing_dirs.len()) as u64;
        for &node in self.view.nn_ids.clone().iter() {
            ctx.send_sized(node, size, req.clone());
        }
    }

    /// A peer (or this namenode itself) asks to revoke leases conflicting
    /// with a committed mutation. Idempotent: resends of an in-progress
    /// round are ignored, resends of a completed one re-acked.
    fn on_lease_revoke_req(&mut self, ctx: &mut Ctx<'_>, req: LeaseRevokeReq) {
        let now = ctx.now();
        // Restart grace: the pre-crash holder table is gone, so this
        // namenode cannot prove conflicting leases are revoked until every
        // lease it could have granted has expired. Stay silent — the
        // origin resends each sweep tick.
        if now < self.lease_grace_until {
            return;
        }
        self.leases.apply_fences(&req.targets, &req.listing_dirs, req.commit_time);
        let key = (req.origin_idx, req.round);
        if self.lease_pushes.contains_key(&key) {
            return;
        }
        let origin = self.view.nn_ids[req.origin_idx as usize];
        let holders = self.leases.revoke_holders(&req.targets, &req.listing_dirs, now);
        if holders.is_empty() {
            ctx.send_sized(origin, 64, LeaseRevokeAck { round: req.round, nn_idx: self.my_idx as u32 });
            return;
        }
        let push = LeaseInvalidate {
            round: req.round,
            origin_idx: req.origin_idx,
            targets: req.targets,
            listing_dirs: req.listing_dirs,
            commit_time: req.commit_time,
        };
        let layer = ctx.layer();
        for &client in holders.keys() {
            self.stats.lease_pushes += 1;
            ctx.metrics().inc(layer, "lease_pushes", 1);
            ctx.send_sized(NodeId(client), 96, push.clone());
        }
        self.lease_pushes.insert(key, LeasePush { origin, waiting: holders });
    }

    fn on_lease_revoke_ack(&mut self, ctx: &mut Ctx<'_>, ack: LeaseRevokeAck) {
        let done = match self.lease_rounds.get_mut(&ack.round) {
            Some(r) => {
                r.pending.remove(&ack.nn_idx);
                r.pending.is_empty()
            }
            None => false,
        };
        if done {
            self.complete_round(ctx, ack.round);
        }
    }

    /// Every namenode confirmed: release the held mutation ack, with the
    /// conflict notice piggybacked for the client's self-invalidation and
    /// the coherence monitor.
    fn complete_round(&mut self, ctx: &mut Ctx<'_>, round: u64) {
        if let Some(r) = self.lease_rounds.remove(&round) {
            ctx.set_span(r.span);
            self.respond_now(ctx, r.client, r.req_id, r.result, r.kind, None, Some(r.notice));
        }
    }

    fn on_lease_invalidate_ack(&mut self, ctx: &mut Ctx<'_>, from: NodeId, ack: LeaseInvalidateAck) {
        let key = (ack.origin_idx, ack.round);
        let done = match self.lease_pushes.get_mut(&key) {
            Some(p) => {
                p.waiting.remove(&from.0);
                p.waiting.is_empty()
            }
            None => false,
        };
        if done {
            let p = self.lease_pushes.remove(&key).expect("checked above");
            ctx.send_sized(p.origin, 64, LeaseRevokeAck { round: ack.round, nn_idx: self.my_idx as u32 });
        }
    }

    /// Lease renewals run as maintenance-class work: shed renewals are
    /// silently dropped (the entry expires and the client re-reads).
    fn on_lease_renew(&mut self, ctx: &mut Ctx<'_>, from: NodeId, renew: LeaseRenew) {
        let lcfg = self.cfg().lease;
        if !lcfg.enabled {
            return;
        }
        let now = ctx.now();
        if self.cfg().admission.enabled {
            let signal = self.overload_signal(ctx);
            let salt = (self.my_idx as u64) ^ (u64::from(from.0) << 24) ^ 0x4C65_6173;
            let layer = ctx.layer();
            if let Admission::Shed { .. } = self.gates[CLASS_MAINTENANCE].check(now, signal, salt) {
                self.stats.lease_renewals_shed += 1;
                ctx.metrics().inc(layer, "lease_renewals_shed", 1);
                return;
            }
            ctx.metrics().inc(layer, "admission_admitted_maintenance", 1);
        }
        let expiry = now + lcfg.ttl;
        let mut renewed = Vec::new();
        for item in &renew.items {
            // Valid only while every chain id is still registered (no
            // revocation raced the renewal) and no fence postdates the
            // entry's anchor. The anchor is never refreshed: the *data* is
            // only as fresh as its first read.
            if self.leases.still_held(&item.ids, item.listing_dir, from.0, now)
                && self.leases.grant_ok(&item.ids, item.listing_dir, item.anchor)
            {
                self.leases.extend(&item.ids, item.listing_dir, from.0, expiry);
                self.stats.lease_renewals_ok += 1;
                renewed.push((item.path.clone(), item.kind, expiry));
            }
        }
        if !renewed.is_empty() {
            let n = renewed.len() as u64;
            let done = ctx.execute(NN_WORKER, SimDuration::from_micros(10) * n);
            ctx.send_sized_from(done, from, 64 + 32 * n, LeaseRenewAck { renewed });
        }
    }

    /// Lease upkeep, run from the sweep tick: wait out expired holders in
    /// push rounds, exempt long-departed namenodes from origin rounds,
    /// resend unacked revoke requests, and prune the holder/fence tables.
    fn lease_sweep(&mut self, ctx: &mut Ctx<'_>, now: SimTime) {
        if self.lease_rounds.is_empty() && self.lease_pushes.is_empty() && !self.cfg().lease.enabled
        {
            return;
        }
        let ttl = self.cfg().lease.ttl;
        let me = self.my_idx as u32;
        // Push rounds: drop holders whose leases expired (they can no
        // longer serve); ack the origin once none remain.
        let mut acks: Vec<(NodeId, u64)> = Vec::new();
        self.lease_pushes.retain(|&(_, round), p| {
            p.waiting.retain(|_, &mut exp| exp > now);
            if p.waiting.is_empty() {
                acks.push((p.origin, round));
                false
            } else {
                true
            }
        });
        for (origin, round) in acks {
            ctx.send_sized(origin, 64, LeaseRevokeAck { round, nn_idx: me });
        }
        // Origin rounds: exempt peers absent from the active set a full
        // lease lifetime past detection; resend to the rest.
        let active: BTreeSet<u32> = self.active.iter().map(|n| n.nn_idx).collect();
        let mut done_rounds: Vec<u64> = Vec::new();
        let mut sends: Vec<(NodeId, LeaseRevokeReq)> = Vec::new();
        for (&round, r) in self.lease_rounds.iter_mut() {
            let departed = &self.nn_departed_at;
            r.pending.retain(|idx| {
                active.contains(idx)
                    || departed.get(idx).is_none_or(|&d| now.saturating_since(d) <= ttl)
            });
            if r.pending.is_empty() {
                done_rounds.push(round);
            } else if now.saturating_since(r.last_sent) >= SimDuration::from_millis(100) {
                r.last_sent = now;
                let req = LeaseRevokeReq {
                    round,
                    origin_idx: me,
                    targets: r.notice.targets.clone(),
                    listing_dirs: r.notice.listing_dirs.clone(),
                    commit_time: r.notice.commit_time,
                };
                for &idx in &r.pending {
                    sends.push((self.view.nn_ids[idx as usize], req.clone()));
                }
            }
        }
        for (node, req) in sends {
            ctx.send_sized(node, 128, req);
        }
        for round in done_rounds {
            self.complete_round(ctx, round);
        }
        // Fences matter only while a read anchored before them could still
        // be granted or renewed; holders age out at their lease expiry.
        self.leases.sweep(now, ttl + ttl);
    }

    /// Finishes a read-only op: respond and abandon the (lock-free) tx.
    fn finish_readonly(&mut self, ctx: &mut Ctx<'_>, op_id: u64, result: FsResult) {
        if let Some(tx) = self.ops.get_mut(&op_id).and_then(|o| o.tx.take()) {
            self.tx_to_op.remove(&tx);
            self.kernel().abort(ctx, tx);
        }
        self.finish_op(ctx, op_id, result);
    }

    fn retry_op(&mut self, ctx: &mut Ctx<'_>, op_id: u64, maybe_committed: bool) {
        self.retry_op_with_hint(ctx, op_id, maybe_committed, None);
    }

    /// Like [`NameNodeActor::retry_op`], but with an optional server-side
    /// retry-after hint (e.g. the configured wait behind a subtree lock)
    /// that overrides the generic exponential curve.
    fn retry_op_with_hint(
        &mut self,
        ctx: &mut Ctx<'_>,
        op_id: u64,
        maybe_committed: bool,
        hint: Option<SimDuration>,
    ) {
        let max = self.cfg().max_op_attempts;
        let proceed = {
            let octx = match self.ops.get_mut(&op_id) {
                Some(o) => o,
                None => return,
            };
            let tx = octx.tx.take();
            if maybe_committed {
                octx.idempotent_retry = true;
            }
            octx.attempt += 1;
            let proceed = octx.attempt <= max;
            if let Some(tx) = tx {
                self.tx_to_op.remove(&tx);
                // Release the failed attempt's locks (no-op if the kernel
                // already forgot the tx after an abort event).
                self.kernel().abort(ctx, tx);
            }
            proceed
        };
        if !proceed {
            self.finish_op(ctx, op_id, Err(FsError::Busy));
            return;
        }
        self.stats.tx_retries += 1;
        self.reset_op_state(op_id);
        let attempt = self.ops[&op_id].attempt;
        // Shared backoff policy; the budget check above (max_op_attempts)
        // already gated the retry, so the policy only shapes the delay. The
        // salt decorrelates jitter (if configured) across ops and namenodes.
        let salt = op_id ^ ((self.my_idx as u64) << 32);
        let delay = match hint {
            // Contention with a known cause (a subtree lock holder): wait
            // the server-configured hint instead of the generic curve, so
            // bounced ops line up behind the lock instead of herding.
            Some(h) => self
                .cfg()
                .op_retry
                .delay_after_hint(h, attempt.saturating_sub(1), salt)
                .unwrap_or(h),
            None => self
                .cfg()
                .op_retry
                .delay(attempt.saturating_sub(1), salt)
                .unwrap_or(self.cfg().op_retry.cap),
        };
        let span = self.ops[&op_id].span;
        let layer = ctx.layer();
        ctx.metrics().inc(layer, "op_retries", 1);
        ctx.metrics().record_hist(layer, "retry_backoff_ns", delay.as_nanos());
        let now = ctx.now();
        ctx.span_at("backoff", "retry", span, now, now + delay);
        ctx.set_span(span);
        ctx.schedule(delay, OpResume { op: op_id });
    }

    /// Starts (or restarts) an op's transaction and begins resolution.
    fn start_op(&mut self, ctx: &mut Ctx<'_>, op_id: u64) {
        if !self.ops.contains_key(&op_id) {
            return;
        }
        let needs_id = matches!(
            self.ops[&op_id].op.kind(),
            OpKind::Mkdir | OpKind::Create | OpKind::Append
        );
        if needs_id && self.ids_end.saturating_sub(self.ids_next) < 64 {
            self.ops.get_mut(&op_id).expect("op exists").stage = Stage::AwaitIds;
            self.awaiting_ids.push_back(op_id);
            self.refill_ids(ctx);
            return;
        }
        {
            let octx = self.ops.get_mut(&op_id).expect("op exists");
            Self::walk_cache(&mut self.cache, &mut octx.walk_a, &mut self.stats);
            if let Some(walk_b) = &mut octx.walk_b {
                Self::walk_cache(&mut self.cache, walk_b, &mut self.stats);
            }
        }
        let hint_pk = self.ops[&op_id].walk_a.cur;
        let inodes = self.fs().inodes;
        let tx = match self.kernel().begin(ctx, Some((inodes, PartitionKey(hint_pk)))) {
            Some(tx) => tx,
            None => {
                self.finish_op(ctx, op_id, Err(FsError::Unavailable));
                return;
            }
        };
        self.tx_to_op.insert(tx, op_id);
        let octx = self.ops.get_mut(&op_id).expect("op exists");
        octx.tx = Some(tx);
        // Lease staleness anchor: the transaction began now, before any
        // read was issued, so every row this attempt sees is at least this
        // fresh. (Retries re-anchor — reset_op_state clears it.)
        octx.read_anchor = Some(ctx.now());
        octx.stage = Stage::WalkA;
        self.continue_walk(ctx, op_id);
    }

    fn walk_cache(cache: &mut HintCache, walk: &mut Walk, stats: &mut NnStats) {
        while walk.idx < walk.end() {
            let name = walk.comps[walk.idx].clone();
            match cache.get(walk.cur, &name) {
                Some((id, true)) => {
                    stats.cache_hits += 1;
                    walk.cached_chain.push((walk.cur, name.clone(), id));
                    walk.cur_key = (walk.cur, name);
                    walk.cur = id;
                    walk.resolved_ids.push(id);
                    walk.idx += 1;
                }
                _ => {
                    stats.cache_misses += 1;
                    break;
                }
            }
        }
    }

    fn continue_walk(&mut self, ctx: &mut Ctx<'_>, op_id: u64) {
        let per_component = self.cfg().nn_costs.per_component;
        let inodes = self.fs().inodes;
        let outcome = {
            let octx = self.ops.get_mut(&op_id).expect("op exists");
            let walk = match octx.stage {
                Stage::WalkA => &mut octx.walk_a,
                Stage::WalkB => octx.walk_b.as_mut().expect("walk B present"),
                _ => unreachable!("continue_walk outside walk stage"),
            };
            if walk.remaining() == 0 {
                if octx.stage == Stage::WalkA && octx.walk_b.is_some() {
                    octx.stage = Stage::WalkB;
                    WalkOutcome::NextWalk
                } else {
                    octx.stage = Stage::Locking;
                    WalkOutcome::Locks
                }
            } else {
                let name = walk.comps[walk.idx].clone();
                let key = FsSchema::inode_key(InodeId(walk.cur), &name);
                WalkOutcome::Read { tx: octx.tx.expect("tx started"), key }
            }
        };
        match outcome {
            WalkOutcome::Read { tx, key } => {
                ctx.execute(NN_WORKER, per_component);
                self.kernel().read(
                    ctx,
                    tx,
                    vec![ReadSpec { table: inodes, key, mode: LockMode::ReadCommitted }],
                );
            }
            WalkOutcome::NextWalk => self.continue_walk(ctx, op_id),
            WalkOutcome::Locks => self.issue_locks(ctx, op_id),
        }
    }

    /// Handles the result of one resolution read.
    fn on_walk_row(&mut self, ctx: &mut Ctx<'_>, op_id: u64, row: Option<Bytes>) {
        enum Next {
            Continue,
            Fail(FsError, bool /*read-only*/),
            StaleCache(Vec<(u64, String, u64)>),
            /// A subtree operation owns this directory (§3.6): back off.
            StoLocked,
        }
        let next = {
            let octx = self.ops.get_mut(&op_id).expect("op exists");
            let read_only = matches!(octx.op.kind(), OpKind::Stat | OpKind::List | OpKind::Open);
            let stage = octx.stage;
            let walk = match stage {
                Stage::WalkA => &mut octx.walk_a,
                Stage::WalkB => octx.walk_b.as_mut().expect("walk B present"),
                _ => return, // stale event
            };
            match row {
                None => {
                    if walk.cached_chain.is_empty() {
                        Next::Fail(FsError::NotFound, read_only)
                    } else {
                        // An ancestor came from the cache and the chain broke
                        // under it: possibly stale.
                        Next::StaleCache(walk.cached_chain.clone())
                    }
                }
                Some(data) => {
                    let rec = InodeRecord::decode(&data);
                    if rec.sto_locked {
                        // Resolution walked into a subtree op's root: reject
                        // with a retryable error instead of traversing a
                        // namespace region that is being bulk-mutated.
                        Next::StoLocked
                    } else {
                        let name = walk.comps[walk.idx].clone();
                        let parent = walk.cur;
                        walk.cur_key = (parent, name.clone());
                        walk.cur = rec.id;
                        walk.resolved_ids.push(rec.id);
                        walk.idx += 1;
                        if !rec.is_dir {
                            // Walks only traverse directories (they stop
                            // before the final component).
                            Next::Fail(FsError::NotDir, read_only)
                        } else {
                            let id = rec.id;
                            let _ = walk;
                            self.cache_put(parent, &name, id, true);
                            Next::Continue
                        }
                    }
                }
            }
        };
        match next {
            Next::Continue => self.continue_walk(ctx, op_id),
            Next::Fail(e, read_only) => {
                if read_only {
                    self.finish_readonly(ctx, op_id, Err(e));
                } else {
                    // Mutations resolve lazily too; a missing intermediate is
                    // still a clean failure (no locks taken yet).
                    self.finish_readonly(ctx, op_id, Err(e));
                }
            }
            Next::StaleCache(chain) => {
                // Some link of the cached ancestor chain moved under us:
                // drop exactly that chain (each cached link, plus anything
                // cached beneath its topmost id) and retry from the root.
                // Unrelated hot entries stay.
                self.stats.cache_stale_drops += 1;
                for &(parent, ref name, _) in &chain {
                    self.cache.remove(parent, name);
                }
                if let Some(&(_, _, top)) = chain.first() {
                    self.cache.remove_subtree(top);
                }
                self.retry_op(ctx, op_id, false);
            }
            Next::StoLocked => {
                self.stats.sto_rejections += 1;
                let hint = self.cfg().admission.sto_busy_retry_after;
                self.retry_op_with_hint(ctx, op_id, false, Some(hint));
            }
        }
    }

    // ----- lock phase ------------------------------------------------------

    fn issue_locks(&mut self, ctx: &mut Ctx<'_>, op_id: u64) {
        let inodes = self.fs().inodes;
        let specs: Vec<(LockSlot, ReadSpec)> = {
            let octx = self.ops.get_mut(&op_id).expect("op exists");
            let read_only = matches!(octx.op.kind(), OpKind::Stat | OpKind::List | OpKind::Open);
            let mut specs: Vec<(LockSlot, ReadSpec)> = Vec::new();
            // Validation reads for every cache-resolved ancestor, batched
            // with the lock reads — one round trip when the cache is warm.
            let push_ancestors = |specs: &mut Vec<(LockSlot, ReadSpec)>, walk: &Walk| {
                for (parent, name, id) in &walk.cached_chain {
                    specs.push((
                        LockSlot::Ancestor { expected_id: *id },
                        ReadSpec {
                            table: inodes,
                            key: FsSchema::inode_key(InodeId(*parent), name),
                            mode: LockMode::ReadCommitted,
                        },
                    ));
                }
            };
            if self.view.config.validate_ancestors {
                push_ancestors(&mut specs, &octx.walk_a);
                if let Some(wb) = &octx.walk_b {
                    push_ancestors(&mut specs, wb);
                }
            }
            if read_only {
                // Target read (read-committed, backup-eligible). Root is
                // implicit and needs no read.
                if !octx.walk_a.comps.is_empty() {
                    specs.push((
                        LockSlot::TargetA,
                        ReadSpec {
                            table: inodes,
                            key: FsSchema::inode_key(InodeId(octx.walk_a.cur), octx.walk_a.final_name()),
                            mode: LockMode::ReadCommitted,
                        },
                    ));
                }
            } else {
                let wa = &octx.walk_a;
                specs.push((
                    LockSlot::ParentA,
                    ReadSpec {
                        table: inodes,
                        key: FsSchema::inode_key(InodeId(wa.cur_key.0), &wa.cur_key.1),
                        mode: LockMode::Shared,
                    },
                ));
                specs.push((
                    LockSlot::TargetA,
                    ReadSpec {
                        table: inodes,
                        key: FsSchema::inode_key(InodeId(wa.cur), wa.final_name()),
                        mode: LockMode::Exclusive,
                    },
                ));
                if let Some(wb) = &octx.walk_b {
                    specs.push((
                        LockSlot::ParentB,
                        ReadSpec {
                            table: inodes,
                            key: FsSchema::inode_key(InodeId(wb.cur_key.0), &wb.cur_key.1),
                            mode: LockMode::Shared,
                        },
                    ));
                    specs.push((
                        LockSlot::TargetB,
                        ReadSpec {
                            table: inodes,
                            key: FsSchema::inode_key(InodeId(wb.cur), wb.final_name()),
                            mode: LockMode::Exclusive,
                        },
                    ));
                }
            }
            // Order by key for deadlock avoidance; on duplicate keys keep the
            // strongest slot/lock.
            specs.sort_by(|a, b| {
                (a.1.key.pk, &a.1.key.suffix)
                    .cmp(&(b.1.key.pk, &b.1.key.suffix))
                    .then(b.0.rank().cmp(&a.0.rank()))
            });
            specs.dedup_by(|dup, keep| {
                if dup.1.key == keep.1.key {
                    // `keep` has the higher rank (sorted above); keep the
                    // stronger lock mode of the two.
                    if dup.1.mode == LockMode::Exclusive
                        || (dup.1.mode == LockMode::Shared && keep.1.mode == LockMode::ReadCommitted)
                    {
                        keep.1.mode = dup.1.mode;
                    }
                    true
                } else {
                    false
                }
            });
            specs
        };
        if specs.is_empty() {
            // Read-only op on `/`: nothing to read or validate.
            self.execute_readonly(ctx, op_id);
            return;
        }
        let tx = self.ops[&op_id].tx.expect("tx started");
        let (slots, reads): (Vec<LockSlot>, Vec<ReadSpec>) = specs.into_iter().unzip();
        self.ops.get_mut(&op_id).expect("op exists").lock_slots = slots;
        self.kernel().read(ctx, tx, reads);
    }

    /// Read-only ops proceed straight from resolution to their answer (or a
    /// follow-up scan).
    fn execute_readonly(&mut self, ctx: &mut Ctx<'_>, op_id: u64) {
        enum Plan {
            Respond(FsResult),
            Scan { tx: TxId, table: ndb::TableId, pk: u64 },
            SmallRead { tx: TxId, id: u64 },
        }
        let plan = {
            let octx = self.ops.get_mut(&op_id).expect("op exists");
            // Root is implicit: synthesize its record when the path is `/`.
            if octx.target_rec.is_none() && octx.walk_a.comps.is_empty() {
                octx.target_rec = Some(InodeRecord::dir(InodeId::ROOT, 0));
            }
            let rec = match octx.target_rec.clone() {
                Some(rec) => rec,
                None => {
                    self.finish_readonly(ctx, op_id, Err(FsError::NotFound));
                    return;
                }
            };
            match octx.op.kind() {
                OpKind::Stat => Plan::Respond(Ok(FsOk::Attrs(rec.attrs()))),
                OpKind::List => {
                    if rec.is_dir {
                        octx.stage = Stage::Scanning(0);
                        Plan::Scan { tx: octx.tx.expect("tx"), table: self.view.fs.inodes, pk: rec.id }
                    } else {
                        let name = octx.walk_a.final_name().to_string();
                        Plan::Respond(Ok(FsOk::Listing(vec![DirEntry { name, attrs: rec.attrs() }])))
                    }
                }
                OpKind::Open => {
                    if rec.is_dir {
                        Plan::Respond(Err(FsError::IsDir))
                    } else if rec.inline_len > 0 && rec.block_count == 0 {
                        // Small file: fetch the inline data from the metadata
                        // layer (the actual bytes travel NDB -> NN -> client).
                        octx.stage = Stage::SmallRead;
                        Plan::SmallRead { tx: octx.tx.expect("tx"), id: rec.id }
                    } else if rec.block_count == 0 {
                        Plan::Respond(Ok(FsOk::Locations { attrs: rec.attrs(), blocks: Vec::new() }))
                    } else {
                        octx.stage = Stage::Scanning(0);
                        Plan::Scan { tx: octx.tx.expect("tx"), table: self.view.fs.blocks, pk: rec.id }
                    }
                }
                _ => unreachable!("execute_readonly on a mutation"),
            }
        };
        match plan {
            Plan::Respond(result) => self.finish_readonly(ctx, op_id, result),
            Plan::Scan { tx, table, pk } => {
                self.kernel().scan(ctx, tx, table, PartitionKey(pk));
            }
            Plan::SmallRead { tx, id } => {
                let small_files = self.view.fs.small_files;
                self.kernel().read(
                    ctx,
                    tx,
                    vec![ReadSpec {
                        table: small_files,
                        key: FsSchema::small_file_key(InodeId(id)),
                        mode: LockMode::ReadCommitted,
                    }],
                );
            }
        }
    }

    /// Handles the locked validation read results and executes the mutation.
    fn on_lock_rows(&mut self, ctx: &mut Ctx<'_>, op_id: u64, rows: Vec<Option<Bytes>>) {
        let mut stale_ids: Vec<u64> = Vec::new();
        let read_only;
        let sto_locked;
        {
            let octx = self.ops.get_mut(&op_id).expect("op exists");
            read_only = matches!(octx.op.kind(), OpKind::Stat | OpKind::List | OpKind::Open);
            for (slot, row) in octx.lock_slots.clone().iter().zip(rows) {
                match slot {
                    LockSlot::Ancestor { expected_id } => {
                        let ok = row
                            .as_ref()
                            .map(|d| {
                                let rec = InodeRecord::decode(d);
                                // A flagged ancestor counts as moved: with
                                // `validate_ancestors` on, this closes the
                                // cached-chain bypass of the subtree lock.
                                rec.id == *expected_id && rec.is_dir && !rec.sto_locked
                            })
                            .unwrap_or(false);
                        if !ok {
                            stale_ids.push(*expected_id);
                        }
                    }
                    _ => {
                        let rec = row.map(|d| InodeRecord::decode(&d));
                        match slot {
                            LockSlot::ParentA => octx.parent_rec = rec,
                            LockSlot::TargetA => octx.target_rec = rec,
                            LockSlot::ParentB => octx.parent_b_rec = rec,
                            LockSlot::TargetB => octx.target_b_rec = rec,
                            LockSlot::Ancestor { .. } => unreachable!(),
                        }
                    }
                }
            }
            // Root parent is implicit when the walk stopped at root.
            if octx.walk_a.cur == InodeId::ROOT.0 && octx.parent_rec.is_none() {
                octx.parent_rec = Some(InodeRecord::dir(InodeId::ROOT, 0));
            }
            if let Some(wb) = &octx.walk_b {
                if wb.cur == InodeId::ROOT.0 && octx.parent_b_rec.is_none() {
                    octx.parent_b_rec = Some(InodeRecord::dir(InodeId::ROOT, 0));
                }
            }
            // Rename-within-one-dir dedup: B-parent mirrors A-parent.
            if octx.walk_b.is_some() && octx.parent_b_rec.is_none() {
                let wa_cur = octx.walk_a.cur;
                if octx.walk_b.as_ref().map(|w| w.cur) == Some(wa_cur) {
                    octx.parent_b_rec = octx.parent_rec.clone();
                }
            }
            // Another op's subtree lock on the parent or target: reject with
            // a retryable error (§3.6 — ops meeting the flag back off).
            sto_locked = [&octx.parent_rec, &octx.target_rec, &octx.parent_b_rec, &octx.target_b_rec]
                .into_iter()
                .any(|r| r.as_ref().is_some_and(|rec| rec.sto_locked));
        }
        if !stale_ids.is_empty() {
            // A cached ancestor moved or vanished: drop exactly the links
            // that produced the stale ids and everything cached beneath
            // them, then retry from the root (the HopsFS hint-cache
            // fallback). The rest of the working set survives.
            self.stats.cache_stale_drops += 1;
            let octx = &self.ops[&op_id];
            let mut links: Vec<(u64, String)> = Vec::new();
            for chain in std::iter::once(&octx.walk_a.cached_chain)
                .chain(octx.walk_b.as_ref().map(|w| &w.cached_chain))
            {
                for &(parent, ref name, id) in chain {
                    if stale_ids.contains(&id) {
                        links.push((parent, name.clone()));
                    }
                }
            }
            for (parent, name) in links {
                self.cache.remove(parent, &name);
            }
            for id in stale_ids {
                self.cache.remove_subtree(id);
            }
            self.retry_op(ctx, op_id, false);
            return;
        }
        if sto_locked {
            self.stats.sto_rejections += 1;
            let hint = self.cfg().admission.sto_busy_retry_after;
            self.retry_op_with_hint(ctx, op_id, false, Some(hint));
            return;
        }
        if read_only {
            self.execute_readonly(ctx, op_id);
        } else {
            self.execute_mutation(ctx, op_id);
        }
    }

    fn execute_mutation(&mut self, ctx: &mut Ctx<'_>, op_id: u64) {
        let now_ns = ctx.now().as_nanos();
        let fs = self.fs();
        enum Plan {
            Fail(FsError),
            Done(FsOk),
            Write,
            Scan { table: ndb::TableId, pk: u64 },
            /// Start the subtree operations protocol on this directory.
            Sto { rec: InodeRecord, rename_dst: Option<(u64, String)> },
        }
        let plan;
        {
            let octx = self.ops.get_mut(&op_id).expect("op exists");
            // Parent must exist and be a directory for entry mutations.
            let parent_ok = octx.parent_rec.as_ref().map(|r| r.is_dir);
            plan = match octx.op.clone() {
                FsOp::Mkdir { path } => match parent_ok {
                    None => Plan::Fail(FsError::NotFound),
                    Some(false) => Plan::Fail(FsError::NotDir),
                    Some(true) => {
                        if let Some(existing) = &octx.target_rec {
                            if octx.idempotent_retry && existing.is_dir {
                                Plan::Done(FsOk::Done)
                            } else {
                                Plan::Fail(FsError::AlreadyExists)
                            }
                        } else {
                            let id = {
                                // alloc below, outside the borrow
                                0u64
                            };
                            let _ = id;
                            let name = path.name().expect("not root").to_string();
                            octx.pending_ok = Some(FsOk::Done);
                            octx.writes.push(WriteOp::Put {
                                table: fs.inodes,
                                key: FsSchema::inode_key(InodeId(octx.walk_a.cur), &name),
                                data: Bytes::new(), // filled after id allocation below
                            });
                            Plan::Write
                        }
                    }
                },
                FsOp::Create { path, size } => match parent_ok {
                    None => Plan::Fail(FsError::NotFound),
                    Some(false) => Plan::Fail(FsError::NotDir),
                    Some(true) => {
                        if let Some(existing) = &octx.target_rec {
                            if octx.idempotent_retry && !existing.is_dir {
                                Plan::Done(FsOk::Done)
                            } else {
                                Plan::Fail(FsError::AlreadyExists)
                            }
                        } else {
                            let name = path.name().expect("not root").to_string();
                            octx.pending_ok = Some(FsOk::Done);
                            // Mark with an empty placeholder; patched below.
                            octx.writes.push(WriteOp::Put {
                                table: fs.inodes,
                                key: FsSchema::inode_key(InodeId(octx.walk_a.cur), &name),
                                data: Bytes::new(),
                            });
                            let _ = size;
                            Plan::Write
                        }
                    }
                },
                FsOp::SetPerm { .. } => match (&octx.parent_rec, octx.target_rec.clone()) {
                    (None, _) | (_, None) => Plan::Fail(FsError::NotFound),
                    (Some(_), Some(mut rec)) => {
                        if let FsOp::SetPerm { perm, .. } = &octx.op {
                            rec.perm = *perm;
                        }
                        rec.mtime = now_ns;
                        octx.pending_ok = Some(FsOk::Done);
                        octx.writes.push(WriteOp::Put {
                            table: fs.inodes,
                            key: FsSchema::inode_key(InodeId(octx.walk_a.cur), octx.walk_a.final_name()),
                            data: rec.encode(),
                        });
                        Plan::Write
                    }
                },
                FsOp::Delete { recursive, .. } => match (&octx.parent_rec, octx.target_rec.clone()) {
                    (None, _) => Plan::Fail(FsError::NotFound),
                    (_, None) => {
                        if octx.idempotent_retry {
                            Plan::Done(FsOk::Done)
                        } else {
                            Plan::Fail(FsError::NotFound)
                        }
                    }
                    (Some(_), Some(rec)) if rec.is_dir && recursive => {
                        // Recursive directory delete runs the subtree
                        // protocol: this tx commits only the lock flag;
                        // the subtree goes down in bounded batches.
                        octx.pending_ok = Some(FsOk::Done);
                        octx.cache_invalidate
                            .push((octx.walk_a.cur, octx.walk_a.final_name().to_string()));
                        Plan::Sto { rec, rename_dst: None }
                    }
                    (Some(_), Some(rec)) => {
                        octx.pending_ok = Some(FsOk::Done);
                        octx.cache_invalidate
                            .push((octx.walk_a.cur, octx.walk_a.final_name().to_string()));
                        octx.writes.push(WriteOp::Delete {
                            table: fs.inodes,
                            key: FsSchema::inode_key(InodeId(octx.walk_a.cur), octx.walk_a.final_name()),
                        });
                        if rec.is_dir {
                            // Non-recursive: one scan round proves emptiness.
                            octx.dir_queue.push_back(rec.id);
                            octx.stage = Stage::Scanning(0);
                            Plan::Scan { table: fs.inodes, pk: rec.id }
                        } else {
                            if rec.inline_len > 0 {
                                octx.writes.push(WriteOp::Delete {
                                    table: fs.small_files,
                                    key: FsSchema::small_file_key(InodeId(rec.id)),
                                });
                            }
                            if rec.block_count > 0 {
                                octx.file_queue.push_back(rec.id);
                                octx.stage = Stage::Scanning(1);
                                Plan::Scan { table: fs.replicas, pk: rec.id }
                            } else {
                                Plan::Write
                            }
                        }
                    }
                },
                FsOp::Rename { dst, .. } => {
                    let src_rec = octx.target_rec.clone();
                    match (src_rec, &octx.parent_b_rec, &octx.target_b_rec) {
                        (None, _, _) => Plan::Fail(FsError::NotFound),
                        (_, None, _) => Plan::Fail(FsError::NotFound),
                        (_, _, Some(_)) => Plan::Fail(FsError::AlreadyExists),
                        (Some(mut rec), Some(pb), None) => {
                            if !pb.is_dir {
                                Plan::Fail(FsError::NotDir)
                            } else if rec.is_dir {
                                // Directory rename runs the subtree protocol:
                                // flag the root now, move the entry in the
                                // closing transaction (concurrent ops must
                                // not resolve through a moving subtree).
                                let wb_cur = octx.walk_b.as_ref().expect("rename").cur;
                                octx.pending_ok = Some(FsOk::Done);
                                octx.cache_invalidate
                                    .push((octx.walk_a.cur, octx.walk_a.final_name().to_string()));
                                Plan::Sto {
                                    rec,
                                    rename_dst: Some((
                                        wb_cur,
                                        dst.name().expect("not root").to_string(),
                                    )),
                                }
                            } else {
                                rec.mtime = now_ns;
                                let wb_cur = octx.walk_b.as_ref().expect("rename").cur;
                                octx.pending_ok = Some(FsOk::Done);
                                octx.cache_invalidate
                                    .push((octx.walk_a.cur, octx.walk_a.final_name().to_string()));
                                octx.writes.push(WriteOp::Delete {
                                    table: fs.inodes,
                                    key: FsSchema::inode_key(
                                        InodeId(octx.walk_a.cur),
                                        octx.walk_a.final_name(),
                                    ),
                                });
                                octx.writes.push(WriteOp::Put {
                                    table: fs.inodes,
                                    key: FsSchema::inode_key(InodeId(wb_cur), dst.name().expect("not root")),
                                    data: rec.encode(),
                                });
                                Plan::Write
                            }
                        }
                    }
                }
                FsOp::Append { .. } => match (&octx.parent_rec, octx.target_rec.clone()) {
                    (None, _) | (_, None) => Plan::Fail(FsError::NotFound),
                    (Some(_), Some(rec)) if rec.is_dir => Plan::Fail(FsError::IsDir),
                    (Some(_), Some(_)) => {
                        octx.pending_ok = Some(FsOk::Done);
                        octx.writes.push(WriteOp::Put {
                            table: fs.inodes,
                            key: FsSchema::inode_key(InodeId(octx.walk_a.cur), octx.walk_a.final_name()),
                            data: Bytes::new(), // patched with the grown record
                        });
                        Plan::Write
                    }
                },
                FsOp::Stat { .. } | FsOp::List { .. } | FsOp::Open { .. } => {
                    unreachable!("read-only ops do not lock")
                }
            };
        }
        match plan {
            Plan::Fail(e) => {
                // Locks were taken: abort the tx to release them.
                self.abort_and_finish(ctx, op_id, Err(e));
            }
            Plan::Done(ok) => {
                // An idempotent-retry ack: the first attempt may have
                // committed at an unknown time, so the lease footprint
                // widens and the notice is unmonitored (committed: false).
                if let Some(tx) = self.ops.get_mut(&op_id).and_then(|o| o.tx.take()) {
                    self.tx_to_op.remove(&tx);
                    self.kernel().abort(ctx, tx);
                }
                self.finish_mutation(ctx, op_id, Ok(ok), false);
            }
            Plan::Write => self.patch_creates_and_write(ctx, op_id),
            Plan::Scan { table, pk } => {
                let tx = self.ops[&op_id].tx.expect("tx");
                self.kernel().scan(ctx, tx, table, PartitionKey(pk));
            }
            Plan::Sto { rec, rename_dst } => self.sto_begin_lock(ctx, op_id, rec, rename_dst),
        }
    }

    /// Chooses where a new block's replicas live and emits the metadata rows
    /// plus storage commands — either the replicated datanode layer (§IV-C)
    /// or the cloud object store (§VII future work).
    fn place_block(
        &mut self,
        ctx: &mut Ctx<'_>,
        inode: InodeId,
        block_id: u64,
        len: u64,
        extra_writes: &mut Vec<WriteOp>,
        store_cmds: &mut Vec<(u32, StoreBlock)>,
    ) {
        let fs = self.fs();
        match self.cfg().block_backend {
            BlockBackend::Datanodes => {
                let replication = self.cfg().block_replication as usize;
                let targets = place_replicas(
                    &self.view,
                    &self.dn_alive_mask(ctx.now()),
                    None, // server-side placement: the writer's AZ is unknown
                    replication,
                    ctx.rng(),
                );
                for &dn in &targets {
                    extra_writes.push(WriteOp::Put {
                        table: fs.replicas,
                        key: FsSchema::replica_key(inode, block_id, dn as u32),
                        data: ReplicaRecord { block_id, dn_idx: dn as u32 }.encode(),
                    });
                    extra_writes.push(WriteOp::Put {
                        table: fs.dn_replicas,
                        key: FsSchema::dn_replica_key(dn as u32, block_id),
                        data: encode_sequence(inode.0),
                    });
                }
                // Ship the payload to the first replica; it pipelines to the
                // rest (cross-AZ hops included, per the placement policy).
                if let Some((&first, rest)) = targets.split_first() {
                    store_cmds.push((
                        first as u32,
                        StoreBlock {
                            block: block_id,
                            len,
                            inode: inode.0,
                            pipeline: rest.iter().map(|&d| d as u32).collect(),
                        },
                    ));
                }
            }
            BlockBackend::CloudStore => {
                // One metadata row with the sentinel location; the provider
                // replicates internally. The PUT goes to the AZ-local
                // front-end (no tenant cross-AZ traffic).
                extra_writes.push(WriteOp::Put {
                    table: fs.replicas,
                    key: FsSchema::replica_key(inode, block_id, CLOUD_LOCATION),
                    data: ReplicaRecord { block_id, dn_idx: CLOUD_LOCATION }.encode(),
                });
                let me = ctx.me();
                let endpoint = self.view.cloud_endpoint(ctx.az_of(me));
                ctx.send_sized(endpoint, len.max(64), PutObject { key: block_id, bytes: len });
            }
        }
    }

    /// Fills in the inode records for create/mkdir (needs id allocation) and
    /// issues the write + commit steps.
    fn patch_creates_and_write(&mut self, ctx: &mut Ctx<'_>, op_id: u64) {
        let now_ns = ctx.now().as_nanos();
        let fs = self.fs();
        let block_replication = self.cfg().block_replication;
        let small_max = self.cfg().small_file_max;
        let block_size = self.cfg().block_size;
        // Patch placeholder create/mkdir rows (they need fresh ids).
        let patch: Option<(FsOp, usize)> = {
            let octx = self.ops.get_mut(&op_id).expect("op exists");
            let needs_patch = octx
                .writes
                .iter()
                .position(|w| matches!(w, WriteOp::Put { data, .. } if data.is_empty()));
            needs_patch.map(|i| (octx.op.clone(), i))
        };
        let mut extra_writes: Vec<WriteOp> = Vec::new();
        let mut store_cmds: Vec<(u32, StoreBlock)> = Vec::new();
        if let Some((op, slot)) = patch {
            let (rec, cache_dir) = match &op {
                FsOp::Mkdir { .. } => (InodeRecord::dir(InodeId(self.alloc_id()), now_ns), true),
                FsOp::Append { bytes, .. } => {
                    let mut rec = self.ops[&op_id]
                        .target_rec
                        .clone()
                        .expect("append validated the target");
                    let new_size = rec.size + bytes;
                    rec.mtime = now_ns;
                    if rec.block_count == 0 && new_size < small_max {
                        // Still small: rewrite the inline payload.
                        rec.inline_len = new_size as u32;
                        rec.size = new_size;
                        extra_writes.push(WriteOp::Put {
                            table: fs.small_files,
                            key: FsSchema::small_file_key(InodeId(rec.id)),
                            data: Bytes::from(vec![0u8; new_size as usize]),
                        });
                    } else {
                        // Block-backed growth: one new block for the append.
                        if rec.inline_len > 0 {
                            // Crossing the threshold: spill inline data into
                            // the first block.
                            rec.inline_len = 0;
                            extra_writes.push(WriteOp::Delete {
                                table: fs.small_files,
                                key: FsSchema::small_file_key(InodeId(rec.id)),
                            });
                        }
                        let block_id = self.alloc_id();
                        let index = u64::from(rec.block_count);
                        rec.block_count += 1;
                        rec.size = new_size;
                        extra_writes.push(WriteOp::Put {
                            table: fs.blocks,
                            key: FsSchema::block_key(InodeId(rec.id), index),
                            data: BlockRecord { block_id, len: *bytes, gen: 1 }.encode(),
                        });
                        self.place_block(
                            ctx,
                            InodeId(rec.id),
                            block_id,
                            *bytes,
                            &mut extra_writes,
                            &mut store_cmds,
                        );
                    }
                    (rec, false)
                }
                FsOp::Create { size, .. } => {
                    let id = self.alloc_id();
                    let mut rec = InodeRecord::file(InodeId(id), now_ns, block_replication);
                    rec.size = *size;
                    if *size > 0 && *size < small_max {
                        rec.inline_len = *size as u32;
                        extra_writes.push(WriteOp::Put {
                            table: fs.small_files,
                            key: FsSchema::small_file_key(InodeId(id)),
                            data: Bytes::from(vec![0u8; *size as usize]),
                        });
                    } else if *size >= small_max {
                        let nblocks = size.div_ceil(block_size).max(1);
                        rec.block_count = nblocks as u32;
                        for b in 0..nblocks {
                            let block_id = self.alloc_id();
                            let len = (*size - b * block_size).min(block_size);
                            extra_writes.push(WriteOp::Put {
                                table: fs.blocks,
                                key: FsSchema::block_key(InodeId(id), b),
                                data: BlockRecord { block_id, len, gen: 1 }.encode(),
                            });
                            self.place_block(
                                ctx,
                                InodeId(id),
                                block_id,
                                len,
                                &mut extra_writes,
                                &mut store_cmds,
                            );
                        }
                    }
                    (rec, false)
                }
                _ => unreachable!("only create/mkdir/append leave placeholders"),
            };
            let octx = self.ops.get_mut(&op_id).expect("op exists");
            if let WriteOp::Put { data, key, .. } = &mut octx.writes[slot] {
                *data = rec.encode();
                if cache_dir {
                    let parent = key.pk.0;
                    let name = String::from_utf8_lossy(&key.suffix).into_owned();
                    let _ = (parent, name); // cached after commit succeeds
                }
            }
            octx.writes.extend(extra_writes);
            // Block stores fan out after commit; stash on doomed list? No —
            // separate channel: reuse pending via command list below.
            for (dn, cmd) in store_cmds {
                if let Some(&dn_node) = self.view.dn_ids.get(dn as usize) {
                    // Sending at commit time would be more precise; the
                    // difference is a sub-ms head start on a background copy.
                    let bytes = cmd.len.max(1024);
                    ctx.send_sized(dn_node, bytes, cmd);
                }
            }
        }
        let (tx, writes) = {
            let octx = self.ops.get_mut(&op_id).expect("op exists");
            octx.stage = Stage::Committing;
            (octx.tx.expect("tx"), std::mem::take(&mut octx.writes))
        };
        self.tx_write(ctx, tx, writes);
        // Commit is issued when the WriteAck returns (see on_tx_event).
    }

    /// Issues a write step, tracking the largest single write step in
    /// [`NnStats::max_tx_writes`] (the kernel keeps the same high-water mark,
    /// but its copy dies with a namenode restart).
    fn tx_write(&mut self, ctx: &mut Ctx<'_>, tx: TxId, writes: Vec<WriteOp>) {
        self.stats.max_tx_writes = self.stats.max_tx_writes.max(writes.len() as u64);
        self.kernel().write(ctx, tx, writes);
    }

    fn abort_and_finish(&mut self, ctx: &mut Ctx<'_>, op_id: u64, result: FsResult) {
        if let Some(tx) = self.ops.get_mut(&op_id).and_then(|o| o.tx.take()) {
            self.tx_to_op.remove(&tx);
            self.kernel().abort(ctx, tx);
        }
        self.finish_op(ctx, op_id, result);
    }

    // ----- subtree operations protocol (FAST'17 §3.6) -----------------------

    /// Phase 1: flag the subtree root and publish the on-going-operation row,
    /// inside the op's current (validated, locked) transaction. Committing it
    /// makes the lock durable; everything after runs in fresh transactions.
    fn sto_begin_lock(
        &mut self,
        ctx: &mut Ctx<'_>,
        op_id: u64,
        rec: InodeRecord,
        rename_dst: Option<(u64, String)>,
    ) {
        let fs = self.fs();
        let owner = self.my_idx as u32;
        let (tx, writes) = {
            let octx = self.ops.get_mut(&op_id).expect("op exists");
            let root_key = (octx.walk_a.cur, octx.walk_a.final_name().to_string());
            let mut locked = rec;
            locked.sto_locked = true;
            let sto_row = StoRecord {
                inode: locked.id,
                parent: root_key.0,
                name: root_key.1.clone(),
                owner_nn: owner,
            };
            let writes = vec![
                WriteOp::Put {
                    table: fs.inodes,
                    key: FsSchema::inode_key(InodeId(root_key.0), &root_key.1),
                    data: locked.encode(),
                },
                WriteOp::Put {
                    table: fs.sto_locks,
                    key: FsSchema::sto_key(InodeId(locked.id)),
                    data: sto_row.encode(),
                },
            ];
            octx.stage = Stage::StoLock;
            octx.sto = Some(StoState {
                root: locked.id,
                root_key,
                root_rec: locked,
                rename_dst,
                dirs: VecDeque::new(),
                files: VecDeque::new(),
                units: Vec::new(),
                batches: VecDeque::new(),
                locked_at: SimTime::ZERO,
            });
            (octx.tx.expect("tx started"), writes)
        };
        self.tx_write(ctx, tx, writes);
    }

    /// The lock transaction committed (or raced the commit point — safe to
    /// treat as committed either way): register the in-flight root, drop this
    /// namenode's own hints under it, and move to the next phase.
    fn on_sto_locked(&mut self, ctx: &mut Ctx<'_>, op_id: u64) {
        let now = ctx.now();
        let (root, is_rename) = {
            let octx = match self.ops.get_mut(&op_id) {
                Some(o) => o,
                None => return,
            };
            if let Some(tx) = octx.tx.take() {
                self.tx_to_op.remove(&tx);
            }
            // The batched phase gets a fresh retry budget: the lock is held
            // now, and giving up early would strand it until the sweep.
            octx.attempt = 1;
            let sto = octx.sto.as_mut().expect("sto state");
            sto.locked_at = now;
            (sto.root, sto.rename_dst.is_some())
        };
        self.stats.sto_ops += 1;
        self.sto_inflight.insert(root);
        // Concurrent ops on this namenode must re-walk through the flagged
        // root, not ride a stale hint past it.
        self.cache.remove_subtree(root);
        if is_rename {
            // Rename moves the subtree wholesale: no interior rows change,
            // so there is nothing to batch — go straight to the closing tx.
            self.sto_final(ctx, op_id);
        } else {
            self.sto_start_scan(ctx, op_id);
        }
    }

    /// Phase 2 (delete only): (re)start the BFS discovery scan in a fresh
    /// read-only transaction. Called again from scratch if a scan aborts.
    fn sto_start_scan(&mut self, ctx: &mut Ctx<'_>, op_id: u64) {
        let inodes = self.fs().inodes;
        let root = {
            let octx = match self.ops.get_mut(&op_id) {
                Some(o) => o,
                None => return,
            };
            // Re-collected by this pass (a retried scan must not double-count
            // invalidations for replica rows it sees again).
            octx.doomed_blocks.clear();
            octx.stage = Stage::StoScan(0);
            let sto = octx.sto.as_mut().expect("sto state");
            sto.dirs.clear();
            sto.files.clear();
            sto.units.clear();
            sto.batches.clear();
            let root = sto.root;
            sto.dirs.push_back((root, 0));
            root
        };
        let tx = match self.kernel().begin(ctx, Some((inodes, PartitionKey(root)))) {
            Some(tx) => tx,
            None => return self.sto_give_up(ctx, op_id, FsError::Unavailable),
        };
        self.tx_to_op.insert(tx, op_id);
        self.ops.get_mut(&op_id).expect("op exists").tx = Some(tx);
        self.kernel().scan(ctx, tx, inodes, PartitionKey(root));
    }

    /// One discovery round: children of the next queued directory
    /// (`StoScan(0)`) or replicas of the next block-backed file
    /// (`StoScan(1)`).
    fn on_sto_scan(&mut self, ctx: &mut Ctx<'_>, op_id: u64, rows: Vec<ndb::Row>) {
        let fs = self.fs();
        enum Next {
            Scan { table: ndb::TableId, pk: u64 },
            Batches,
        }
        let next = {
            let octx = match self.ops.get_mut(&op_id) {
                Some(o) => o,
                None => return,
            };
            let stage = octx.stage;
            let OpCtx { sto, doomed_blocks, stage: stage_slot, .. } = octx;
            let sto = sto.as_mut().expect("sto state");
            match stage {
                Stage::StoScan(0) => {
                    let (dir, depth) = sto.dirs.pop_front().expect("dir queued");
                    for r in &rows {
                        let rec = InodeRecord::decode(&r.data);
                        let entry = WriteOp::Delete {
                            table: fs.inodes,
                            key: RowKey { pk: PartitionKey(dir), suffix: r.key.suffix.clone() },
                        };
                        if rec.is_dir {
                            sto.dirs.push_back((rec.id, depth + 1));
                            sto.units.push((depth + 1, vec![entry]));
                        } else if rec.block_count > 0 {
                            sto.files.push_back(StoFile {
                                id: rec.id,
                                depth: depth + 1,
                                entry,
                                inline: rec.inline_len > 0,
                                block_count: rec.block_count,
                            });
                        } else {
                            let mut unit = Vec::new();
                            if rec.inline_len > 0 {
                                unit.push(WriteOp::Delete {
                                    table: fs.small_files,
                                    key: FsSchema::small_file_key(InodeId(rec.id)),
                                });
                            }
                            unit.push(entry);
                            sto.units.push((depth + 1, unit));
                        }
                    }
                    if let Some(&(next_dir, _)) = sto.dirs.front() {
                        Next::Scan { table: fs.inodes, pk: next_dir }
                    } else if let Some(f) = sto.files.front() {
                        *stage_slot = Stage::StoScan(1);
                        Next::Scan { table: fs.replicas, pk: f.id }
                    } else {
                        Next::Batches
                    }
                }
                _ => {
                    let f = sto.files.pop_front().expect("file queued");
                    // Intra-unit order matters for crash-reachability:
                    // storage rows go before the entry row, so an
                    // interrupted batch sequence never strands replica or
                    // block rows behind an already-deleted entry.
                    let mut unit = Vec::new();
                    for r in &rows {
                        let rep = ReplicaRecord::decode(&r.data);
                        unit.push(WriteOp::Delete {
                            table: fs.dn_replicas,
                            key: FsSchema::dn_replica_key(rep.dn_idx, rep.block_id),
                        });
                        doomed_blocks.push((rep.block_id, rep.dn_idx));
                    }
                    for r in &rows {
                        unit.push(WriteOp::Delete {
                            table: fs.replicas,
                            key: RowKey { pk: PartitionKey(f.id), suffix: r.key.suffix.clone() },
                        });
                    }
                    for i in 0..u64::from(f.block_count) {
                        unit.push(WriteOp::Delete {
                            table: fs.blocks,
                            key: FsSchema::block_key(InodeId(f.id), i),
                        });
                    }
                    if f.inline {
                        unit.push(WriteOp::Delete {
                            table: fs.small_files,
                            key: FsSchema::small_file_key(InodeId(f.id)),
                        });
                    }
                    unit.push(f.entry);
                    sto.units.push((f.depth, unit));
                    if let Some(nf) = sto.files.front() {
                        Next::Scan { table: fs.replicas, pk: nf.id }
                    } else {
                        Next::Batches
                    }
                }
            }
        };
        match next {
            Next::Scan { table, pk } => {
                let tx = self.ops[&op_id].tx.expect("tx");
                self.kernel().scan(ctx, tx, table, PartitionKey(pk));
            }
            Next::Batches => self.sto_build_batches(ctx, op_id),
        }
    }

    /// Flattens the discovered per-inode units into bounded batches, deepest
    /// tree level first (reverse level order): a crash between batches always
    /// leaves the survivors as a smaller subtree still reachable from the
    /// root entry, which only the final transaction removes.
    fn sto_build_batches(&mut self, ctx: &mut Ctx<'_>, op_id: u64) {
        let batch_size = self.cfg().subtree_batch_size.max(1);
        // The discovery tx was read-only; release it.
        if let Some(tx) = self.ops.get_mut(&op_id).and_then(|o| o.tx.take()) {
            self.tx_to_op.remove(&tx);
            self.kernel().abort(ctx, tx);
        }
        {
            let octx = match self.ops.get_mut(&op_id) {
                Some(o) => o,
                None => return,
            };
            let sto = octx.sto.as_mut().expect("sto state");
            // Stable by depth descending: BFS discovery order is preserved
            // within a level, so same-seed replays batch identically.
            sto.units.sort_by_key(|&(depth, _)| std::cmp::Reverse(depth));
            let mut cur: Vec<WriteOp> = Vec::new();
            for (_, unit) in sto.units.drain(..) {
                for w in unit {
                    cur.push(w);
                    if cur.len() == batch_size {
                        sto.batches.push_back(std::mem::take(&mut cur));
                    }
                }
            }
            if !cur.is_empty() {
                sto.batches.push_back(cur);
            }
        }
        self.sto_next_batch(ctx, op_id);
    }

    /// Issues the next pending batch, or moves to the closing transaction
    /// once every batch has committed.
    fn sto_next_batch(&mut self, ctx: &mut Ctx<'_>, op_id: u64) {
        let empty = {
            let octx = match self.ops.get_mut(&op_id) {
                Some(o) => o,
                None => return,
            };
            if let Some(tx) = octx.tx.take() {
                self.tx_to_op.remove(&tx);
            }
            // Progress: each committed batch refreshes the retry budget.
            octx.attempt = 1;
            octx.sto.as_ref().expect("sto state").batches.is_empty()
        };
        if empty {
            self.sto_final(ctx, op_id);
        } else {
            self.sto_issue_batch(ctx, op_id);
        }
    }

    /// (Re-)issues the front batch in a fresh transaction. Deletes are
    /// idempotent, so re-running a batch whose commit raced an abort is safe.
    fn sto_issue_batch(&mut self, ctx: &mut Ctx<'_>, op_id: u64) {
        let inodes = self.fs().inodes;
        let (root, batch) = {
            let octx = match self.ops.get_mut(&op_id) {
                Some(o) => o,
                None => return,
            };
            octx.stage = Stage::StoBatch;
            let sto = octx.sto.as_ref().expect("sto state");
            (sto.root, sto.batches.front().expect("batch pending").clone())
        };
        // Batch-class admission: an STO mid-protocol yields to interactive
        // traffic under pressure. The deferral keeps `Stage::StoBatch`, so
        // the resume re-enters here and re-checks the gate; the gate's
        // trickle bucket guarantees forward progress even while overloaded.
        if self.cfg().admission.enabled {
            let now = ctx.now();
            let signal = self.overload_signal(ctx);
            let salt = op_id ^ ((self.my_idx as u64) << 48) ^ 0xB47C;
            let layer = ctx.layer();
            match self.gates[CLASS_BATCH].check(now, signal, salt) {
                Admission::Admit => {
                    ctx.metrics().inc(layer, "admission_admitted_batch", 1);
                }
                Admission::Shed { retry_after } => {
                    self.stats.sto_deferred += 1;
                    ctx.metrics().inc(layer, "admission_deferred_batch", 1);
                    let span = self.ops[&op_id].span;
                    ctx.span_at("defer_batch", "admission", span, now, now + retry_after);
                    ctx.set_span(span);
                    ctx.schedule(retry_after, OpResume { op: op_id });
                    return;
                }
            }
        }
        let tx = match self.kernel().begin(ctx, Some((inodes, PartitionKey(root)))) {
            Some(tx) => tx,
            None => return self.sto_give_up(ctx, op_id, FsError::Unavailable),
        };
        self.tx_to_op.insert(tx, op_id);
        self.ops.get_mut(&op_id).expect("op exists").tx = Some(tx);
        self.tx_write(ctx, tx, batch);
    }

    /// The closing small transaction: remove (delete) or move (rename) the
    /// root entry and clear the lock row, atomically.
    fn sto_final(&mut self, ctx: &mut Ctx<'_>, op_id: u64) {
        let now_ns = ctx.now().as_nanos();
        let fs = self.fs();
        let (hint_pk, writes) = {
            let octx = match self.ops.get_mut(&op_id) {
                Some(o) => o,
                None => return,
            };
            if let Some(tx) = octx.tx.take() {
                self.tx_to_op.remove(&tx);
            }
            octx.stage = Stage::StoFinal;
            let sto = octx.sto.as_ref().expect("sto state");
            let mut writes = vec![WriteOp::Delete {
                table: fs.inodes,
                key: FsSchema::inode_key(InodeId(sto.root_key.0), &sto.root_key.1),
            }];
            if let Some((dparent, dname)) = &sto.rename_dst {
                let mut rec = sto.root_rec.clone();
                rec.sto_locked = false;
                rec.mtime = now_ns;
                writes.push(WriteOp::Put {
                    table: fs.inodes,
                    key: FsSchema::inode_key(InodeId(*dparent), dname),
                    data: rec.encode(),
                });
            }
            writes.push(WriteOp::Delete {
                table: fs.sto_locks,
                key: FsSchema::sto_key(InodeId(sto.root)),
            });
            (sto.root_key.0, writes)
        };
        let tx = match self.kernel().begin(ctx, Some((fs.inodes, PartitionKey(hint_pk)))) {
            Some(tx) => tx,
            None => return self.sto_give_up(ctx, op_id, FsError::Unavailable),
        };
        self.tx_to_op.insert(tx, op_id);
        self.ops.get_mut(&op_id).expect("op exists").tx = Some(tx);
        self.tx_write(ctx, tx, writes);
    }

    /// The closing transaction committed: the subtree op is done.
    fn sto_complete(&mut self, ctx: &mut Ctx<'_>, op_id: u64) {
        let now = ctx.now();
        let (root, held, invalidate, ok) = {
            let octx = match self.ops.get_mut(&op_id) {
                Some(o) => o,
                None => return,
            };
            if let Some(tx) = octx.tx.take() {
                self.tx_to_op.remove(&tx);
            }
            let held = now.saturating_since(octx.sto.as_ref().expect("sto state").locked_at);
            (
                octx.sto.as_ref().expect("sto state").root,
                held,
                std::mem::take(&mut octx.cache_invalidate),
                octx.pending_ok.take(),
            )
        };
        self.stats.sto_lock_hold_max_ns = self.stats.sto_lock_hold_max_ns.max(held.as_nanos());
        self.sto_inflight.remove(&root);
        for (parent, name) in invalidate {
            self.cache.remove(parent, &name);
        }
        // Again at completion: walks elsewhere in the namespace may have
        // cached entries since the lock-time invalidation; the subtree is
        // gone (delete) or re-rooted (rename) now.
        self.cache.remove_subtree(root);
        self.finish_mutation(ctx, op_id, Ok(ok.unwrap_or(FsOk::Done)), true);
    }

    /// Phase-local retry: back off and resume the *current* phase (scan
    /// restarts from scratch; batch and final transactions re-issue).
    fn sto_phase_retry(&mut self, ctx: &mut Ctx<'_>, op_id: u64) {
        let max = self.cfg().max_op_attempts;
        let proceed = {
            let octx = match self.ops.get_mut(&op_id) {
                Some(o) => o,
                None => return,
            };
            // The kernel already forgot the tx when it surfaced the abort.
            if let Some(tx) = octx.tx.take() {
                self.tx_to_op.remove(&tx);
            }
            octx.attempt += 1;
            octx.attempt <= max
        };
        if !proceed {
            self.sto_give_up(ctx, op_id, FsError::Busy);
            return;
        }
        self.stats.tx_retries += 1;
        let attempt = self.ops[&op_id].attempt;
        let salt = op_id ^ ((self.my_idx as u64) << 32);
        let delay = self
            .cfg()
            .op_retry
            .delay(attempt.saturating_sub(1), salt)
            .unwrap_or(self.cfg().op_retry.cap);
        let span = self.ops[&op_id].span;
        let layer = ctx.layer();
        ctx.metrics().inc(layer, "op_retries", 1);
        ctx.metrics().record_hist(layer, "retry_backoff_ns", delay.as_nanos());
        let now = ctx.now();
        ctx.span_at("backoff", "retry", span, now, now + delay);
        ctx.set_span(span);
        ctx.schedule(delay, OpResume { op: op_id });
    }

    /// Abandon a subtree op mid-protocol. The lock row stays behind on
    /// purpose: `finish_op` deregisters the root, so this namenode's own next
    /// sweep round reclaims it, and an idempotent client retry converges.
    fn sto_give_up(&mut self, ctx: &mut Ctx<'_>, op_id: u64, err: FsError) {
        if let Some(octx) = self.ops.get_mut(&op_id) {
            // Committed batches already deleted some replica rows; which ones
            // is unknown here, so skip the block-data invalidations rather
            // than invalidate blocks whose rows may survive (storage garbage,
            // not namespace state — documented leak).
            octx.doomed_blocks.clear();
        }
        self.abort_and_finish(ctx, op_id, Err(err));
    }

    /// Scan results for delete-recursion, listing, and open.
    fn on_scan_rows(&mut self, ctx: &mut Ctx<'_>, op_id: u64, rows: Vec<ndb::Row>) {
        if matches!(self.ops.get(&op_id).map(|o| o.stage), Some(Stage::StoScan(_))) {
            return self.on_sto_scan(ctx, op_id, rows);
        }
        let fs = self.fs();
        enum Plan {
            Respond(FsResult),
            Scan { table: ndb::TableId, pk: u64 },
            Write,
        }
        let plan = {
            let octx = self.ops.get_mut(&op_id).expect("op exists");
            match octx.op.kind() {
                OpKind::List => {
                    let entries = rows
                        .iter()
                        .map(|r| DirEntry {
                            name: String::from_utf8_lossy(&r.key.suffix).into_owned(),
                            attrs: InodeRecord::decode(&r.data).attrs(),
                        })
                        .collect();
                    Plan::Respond(Ok(FsOk::Listing(entries)))
                }
                OpKind::Open => match octx.stage {
                    Stage::Scanning(0) => {
                        // Block rows arrived; fetch replicas next.
                        octx.blocks = rows.iter().map(|r| BlockRecord::decode(&r.data)).collect();
                        octx.blocks.sort_by_key(|b| b.block_id);
                        octx.stage = Stage::Scanning(1);
                        let id = octx.target_rec.as_ref().expect("target read").id;
                        Plan::Scan { table: fs.replicas, pk: id }
                    }
                    _ => {
                        let mut locs: HashMap<u64, Vec<u32>> = HashMap::new();
                        for r in &rows {
                            let rep = ReplicaRecord::decode(&r.data);
                            locs.entry(rep.block_id).or_default().push(rep.dn_idx);
                        }
                        let blocks = octx
                            .blocks
                            .iter()
                            .map(|b| BlockLocation {
                                block: crate::types::BlockId(b.block_id),
                                len: b.len,
                                replicas: locs.remove(&b.block_id).unwrap_or_default(),
                            })
                            .collect();
                        let attrs = octx.target_rec.as_ref().expect("target read").attrs();
                        Plan::Respond(Ok(FsOk::Locations { attrs, blocks }))
                    }
                },
                OpKind::Delete => {
                    match octx.stage {
                        Stage::Scanning(0) => {
                            // Children scan of a *non-recursive* directory
                            // delete: recursive directory deletes run the
                            // subtree operations protocol (see the STO
                            // methods), so this scan only checks emptiness.
                            octx.dir_queue.pop_front().expect("dir queued");
                            if rows.is_empty() {
                                Plan::Write
                            } else {
                                Plan::Respond(Err(FsError::NotEmpty))
                            }
                        }
                        _ => {
                            // Replica rows of one block-backed file.
                            let file = octx.file_queue.pop_front().expect("file queued");
                            let mut seen_blocks: BTreeSet<u64> = BTreeSet::new();
                            for r in &rows {
                                let rep = ReplicaRecord::decode(&r.data);
                                octx.writes.push(WriteOp::Delete {
                                    table: fs.replicas,
                                    key: RowKey { pk: PartitionKey(file), suffix: r.key.suffix.clone() },
                                });
                                octx.writes.push(WriteOp::Delete {
                                    table: fs.dn_replicas,
                                    key: FsSchema::dn_replica_key(rep.dn_idx, rep.block_id),
                                });
                                octx.doomed_blocks.push((rep.block_id, rep.dn_idx));
                                seen_blocks.insert(rep.block_id);
                            }
                            // Delete the block rows by index; block indices
                            // are 0..block_count of the file record, but for
                            // children we only know ids — delete by scan is
                            // avoided by keying blocks on (file, index):
                            for i in 0..seen_blocks.len() as u64 {
                                octx.writes.push(WriteOp::Delete {
                                    table: fs.blocks,
                                    key: FsSchema::block_key(InodeId(file), i),
                                });
                            }
                            if let Some(&next) = octx.file_queue.front() {
                                Plan::Scan { table: fs.replicas, pk: next }
                            } else {
                                Plan::Write
                            }
                        }
                    }
                }
                _ => return, // stale
            }
        };
        match plan {
            Plan::Respond(result) => self.finish_readonly(ctx, op_id, result),
            Plan::Scan { table, pk } => {
                let tx = self.ops[&op_id].tx.expect("tx");
                self.kernel().scan(ctx, tx, table, PartitionKey(pk));
            }
            Plan::Write => self.patch_creates_and_write(ctx, op_id),
        }
    }

    fn dn_alive_mask(&self, now: SimTime) -> Vec<bool> {
        let timeout = self.cfg().dn_heartbeat_window;
        self.dn_last_hb.iter().map(|&t| now.saturating_since(t) <= timeout).collect()
    }

    // ----- transaction event dispatch ---------------------------------------

    fn on_tx_response(&mut self, ctx: &mut Ctx<'_>, resp: ndb::messages::TxResponse) {
        let now = ctx.now();
        if let Some(ev) = self.kernel().on_response(now, resp) {
            self.on_tx_event(ctx, ev);
        }
    }

    fn on_tx_event(&mut self, ctx: &mut Ctx<'_>, ev: TxEvent) {
        let tx = match &ev {
            TxEvent::Rows { tx, .. }
            | TxEvent::Scanned { tx, .. }
            | TxEvent::WriteAcked { tx }
            | TxEvent::Committed { tx }
            | TxEvent::Aborted { tx, .. } => *tx,
        };
        if self.admin_txs.contains_key(&tx) {
            self.on_admin_event(ctx, tx, ev);
            return;
        }
        let op_id = match self.tx_to_op.get(&tx) {
            Some(&id) => id,
            None => return, // stale
        };
        // Tx events can surface from the sweep tick (no ambient context);
        // re-attribute the continuation to the originating client op.
        if let Some(o) = self.ops.get(&op_id) {
            ctx.set_span(o.span);
        }
        match ev {
            TxEvent::Rows { rows, .. } => {
                let stage = self.ops.get(&op_id).map(|o| o.stage);
                match stage {
                    Some(Stage::WalkA) | Some(Stage::WalkB) => {
                        let row = rows.into_iter().next().flatten();
                        self.on_walk_row(ctx, op_id, row);
                    }
                    Some(Stage::Locking) => self.on_lock_rows(ctx, op_id, rows),
                    Some(Stage::SmallRead) => {
                        // The inline bytes arrived; the client gets attrs +
                        // empty block list (data already accounted on the wire).
                        let attrs = self
                            .ops
                            .get(&op_id)
                            .and_then(|o| o.target_rec.as_ref())
                            .map(|r| r.attrs());
                        match attrs {
                            Some(attrs) => self.finish_readonly(
                                ctx,
                                op_id,
                                Ok(FsOk::Locations { attrs, blocks: Vec::new() }),
                            ),
                            None => self.finish_readonly(ctx, op_id, Err(FsError::NotFound)),
                        }
                    }
                    _ => {}
                }
            }
            TxEvent::Scanned { rows, .. } => self.on_scan_rows(ctx, op_id, rows),
            TxEvent::WriteAcked { .. } => {
                // Lease commit floor: the commit is issued now, so it
                // happens at or after this instant — a sound lower bound
                // for the coherence monitor.
                if let Some(o) = self.ops.get_mut(&op_id) {
                    o.commit_floor = Some(ctx.now());
                }
                self.kernel().commit(ctx, tx);
            }
            TxEvent::Committed { .. } => {
                match self.ops.get(&op_id).map(|o| o.stage) {
                    Some(Stage::StoLock) => self.on_sto_locked(ctx, op_id),
                    Some(Stage::StoBatch) => {
                        if let Some(sto) =
                            self.ops.get_mut(&op_id).and_then(|o| o.sto.as_mut())
                        {
                            sto.batches.pop_front();
                        }
                        self.stats.sto_batches += 1;
                        self.sto_next_batch(ctx, op_id);
                    }
                    Some(Stage::StoFinal) => self.sto_complete(ctx, op_id),
                    _ => {
                        let (ok, invalidate) = match self.ops.get_mut(&op_id) {
                            Some(o) => {
                                (o.pending_ok.take(), std::mem::take(&mut o.cache_invalidate))
                            }
                            None => (None, Vec::new()),
                        };
                        // Drop hint-cache entries the committed mutation made
                        // stale (this NN's own view; other NNs fall back on
                        // validation or reach the moved entry's old name as
                        // absent).
                        for (parent, name) in invalidate {
                            self.cache.remove(parent, &name);
                        }
                        self.finish_mutation(ctx, op_id, Ok(ok.unwrap_or(FsOk::Done)), true);
                    }
                }
            }
            TxEvent::Aborted { reason, maybe_committed, .. } => {
                let stage = self.ops.get(&op_id).map(|o| o.stage);
                if reason == AbortReason::ClusterDown {
                    match stage {
                        Some(Stage::StoScan(_) | Stage::StoBatch | Stage::StoFinal) => {
                            self.sto_give_up(ctx, op_id, FsError::Unavailable);
                        }
                        _ => self.finish_op(ctx, op_id, Err(FsError::Unavailable)),
                    }
                } else {
                    match stage {
                        // The lock tx raced the commit point: proceed as if
                        // committed. Safe either way — the later phases do
                        // not depend on the flag being set (it only fences
                        // *other* ops), and the final transaction's lock-row
                        // delete is idempotent.
                        Some(Stage::StoLock) if maybe_committed => {
                            self.on_sto_locked(ctx, op_id)
                        }
                        // Phase-local retry: the lock is already held, so
                        // restart only the failed phase, not the whole op.
                        Some(Stage::StoScan(_) | Stage::StoBatch | Stage::StoFinal) => {
                            self.sto_phase_retry(ctx, op_id)
                        }
                        _ => self.retry_op(ctx, op_id, maybe_committed),
                    }
                }
            }
        }
    }

    // ----- admin transactions (ids, election, re-replication) ---------------

    fn refill_ids(&mut self, ctx: &mut Ctx<'_>) {
        if self.id_refill_inflight {
            return;
        }
        let seqs = self.fs().sequences;
        let key = FsSchema::sequence_key("ids");
        let tx = match self.kernel().begin(ctx, Some((seqs, key.pk))) {
            Some(tx) => tx,
            None => return, // retried from the sweep tick
        };
        self.id_refill_inflight = true;
        self.admin_txs.insert(tx, AdminTx::IdRefill { base: None });
        self.kernel().read(
            ctx,
            tx,
            vec![ReadSpec { table: seqs, key, mode: LockMode::Exclusive }],
        );
    }

    fn on_admin_event(&mut self, ctx: &mut Ctx<'_>, tx: TxId, ev: TxEvent) {
        let state = self.admin_txs.remove(&tx).expect("checked by caller");
        match (state, ev) {
            // --- id refill ---
            (AdminTx::IdRefill { .. }, TxEvent::Rows { rows, .. }) => {
                let base = rows
                    .into_iter()
                    .next()
                    .flatten()
                    .map(|d| decode_sequence(&d))
                    .unwrap_or(InodeId::ROOT.0 + 1);
                let seqs = self.fs().sequences;
                self.admin_txs.insert(tx, AdminTx::IdRefill { base: Some(base) });
                self.kernel().write(
                    ctx,
                    tx,
                    vec![WriteOp::Put {
                        table: seqs,
                        key: FsSchema::sequence_key("ids"),
                        data: encode_sequence(base + ID_BATCH),
                    }],
                );
            }
            (AdminTx::IdRefill { base }, TxEvent::WriteAcked { .. }) => {
                self.admin_txs.insert(tx, AdminTx::IdRefill { base });
                self.kernel().commit(ctx, tx);
            }
            (AdminTx::IdRefill { base }, TxEvent::Committed { .. }) => {
                let base = base.expect("write phase recorded the base");
                self.ids_next = base;
                self.ids_end = base + ID_BATCH;
                self.id_refill_inflight = false;
                while let Some(op_id) = self.awaiting_ids.pop_front() {
                    ctx.schedule(SimDuration::ZERO, OpResume { op: op_id });
                }
            }
            (AdminTx::IdRefill { .. }, TxEvent::Aborted { .. }) => {
                self.id_refill_inflight = false; // sweep retries
            }
            // --- election ---
            (AdminTx::Election { scanned: false }, TxEvent::WriteAcked { .. }) => {
                let election = self.fs().election;
                self.admin_txs.insert(tx, AdminTx::Election { scanned: false });
                self.kernel().scan(ctx, tx, election, PartitionKey(0));
            }
            (AdminTx::Election { scanned: false }, TxEvent::Scanned { rows, .. }) => {
                self.process_election_rows(ctx, rows);
                self.admin_txs.insert(tx, AdminTx::Election { scanned: true });
                self.kernel().commit(ctx, tx);
            }
            (AdminTx::Election { .. }, TxEvent::Committed { .. })
            | (AdminTx::Election { .. }, TxEvent::Aborted { .. }) => {
                let period = self.cfg().election_period;
                ctx.schedule(period, TickElection);
            }
            // --- re-replication ---
            (AdminTx::ReplScan, TxEvent::Scanned { rows, .. }) => {
                for r in &rows {
                    // dn_replicas: key (dead_dn, block), data = inode id.
                    let block = u64::from_le_bytes(r.key.suffix[..8].try_into().expect("u64 suffix"));
                    let inode = decode_sequence(&r.data);
                    self.repl_queue.push_back((inode, block));
                }
                self.kernel().abort(ctx, tx);
                self.repl_inflight = false;
                self.pump_rereplication(ctx);
            }
            (AdminTx::ReplScan, TxEvent::Aborted { .. }) => {
                self.repl_inflight = false;
            }
            (AdminTx::ReplReplicas { inode, block }, TxEvent::Scanned { rows, .. }) => {
                self.kernel().abort(ctx, tx);
                self.repl_inflight = false;
                let holders: Vec<u32> = rows
                    .iter()
                    .map(|r| ReplicaRecord::decode(&r.data))
                    .filter(|rep| rep.block_id == block)
                    .map(|rep| rep.dn_idx)
                    .collect();
                let alive = self.dn_alive_mask(ctx.now());
                let alive_holders: Vec<u32> =
                    holders.iter().copied().filter(|&d| alive.get(d as usize) == Some(&true)).collect();
                if alive_holders.is_empty() {
                    // Block lost; nothing to copy from.
                    self.pump_rereplication(ctx);
                    return;
                }
                // Pick a target that doesn't already hold the block.
                let mut mask = alive.clone();
                for &h in &holders {
                    if let Some(m) = mask.get_mut(h as usize) {
                        *m = false;
                    }
                }
                let targets = place_replicas(&self.view, &mask, None, 1, ctx.rng());
                if let Some(&target) = targets.first() {
                    let src = alive_holders[0];
                    if let Some(&src_node) = self.view.dn_ids.get(src as usize) {
                        self.stats.rereplications += 1;
                        ctx.send_sized(
                            src_node,
                            96,
                            ReplicateBlockCmd { block, inode, target: target as u32, leader: ctx.me() },
                        );
                    }
                }
                self.pump_rereplication(ctx);
            }
            (AdminTx::ReplReplicas { .. }, TxEvent::Aborted { .. }) => {
                self.repl_inflight = false;
                self.pump_rereplication(ctx);
            }
            (AdminTx::ReplCommit, TxEvent::WriteAcked { .. }) => {
                self.admin_txs.insert(tx, AdminTx::ReplCommit);
                self.kernel().commit(ctx, tx);
            }
            (AdminTx::ReplCommit, TxEvent::Committed { .. })
            | (AdminTx::ReplCommit, TxEvent::Aborted { .. }) => {}
            // --- subtree-lock orphan sweep ---
            (AdminTx::StoSweep, TxEvent::Scanned { rows, .. }) => {
                self.kernel().abort(ctx, tx); // read-only
                self.sto_sweep_inflight = false;
                let me = self.my_idx as u32;
                let leader = self.is_leader();
                for r in &rows {
                    let rec = StoRecord::decode(&r.data);
                    // Rule 1 (self-repair): a lock row this namenode owns
                    // but has no in-flight op for is left over from a crash,
                    // restart, or abandoned op of *this* process.
                    let mine_orphaned =
                        rec.owner_nn == me && !self.sto_inflight.contains(&rec.inode);
                    // Rule 2 (leader duty): the owner fell out of the active
                    // set — it cannot finish its op, so the leader reclaims.
                    let owner_dead =
                        leader && !self.active.iter().any(|n| n.nn_idx == rec.owner_nn);
                    if (mine_orphaned || owner_dead)
                        && !self.sto_cleanup.iter().any(|q| q.inode == rec.inode)
                    {
                        self.sto_cleanup.push_back(rec);
                    }
                }
                self.pump_sto_cleanup(ctx);
            }
            (AdminTx::StoSweep, TxEvent::Aborted { .. }) => {
                self.sto_sweep_inflight = false; // next election round retries
            }
            (AdminTx::StoClean { rec, read: false }, TxEvent::Rows { rows, .. }) => {
                let fs = self.fs();
                let mut it = rows.into_iter();
                let entry_row = it.next().flatten();
                let lock_row = it.next().flatten();
                // Re-validate under the exclusive locks: the row must still
                // be the exact record we queued (a *newer* op on a recycled
                // path must not be clobbered), and — if it is ours — must
                // not have become in-flight again between sweep and now.
                let still_orphaned = lock_row.as_deref().map(StoRecord::decode) == Some(rec.clone())
                    && !(rec.owner_nn == self.my_idx as u32
                        && self.sto_inflight.contains(&rec.inode));
                if !still_orphaned {
                    self.kernel().abort(ctx, tx);
                    self.sto_clean_inflight = false;
                    self.pump_sto_cleanup(ctx);
                    return;
                }
                let mut writes = vec![WriteOp::Delete {
                    table: fs.sto_locks,
                    key: FsSchema::sto_key(InodeId(rec.inode)),
                }];
                if let Some(data) = entry_row {
                    let mut irec = InodeRecord::decode(&data);
                    // Only unflag the entry if it is still the locked root
                    // (not e.g. a same-name successor after delete+create).
                    if irec.id == rec.inode && irec.sto_locked {
                        irec.sto_locked = false;
                        writes.push(WriteOp::Put {
                            table: fs.inodes,
                            key: FsSchema::inode_key(InodeId(rec.parent), &rec.name),
                            data: irec.encode(),
                        });
                    }
                }
                self.admin_txs.insert(tx, AdminTx::StoClean { rec, read: true });
                self.kernel().write(ctx, tx, writes);
            }
            (AdminTx::StoClean { rec, read: true }, TxEvent::WriteAcked { .. }) => {
                self.admin_txs.insert(tx, AdminTx::StoClean { rec, read: true });
                self.kernel().commit(ctx, tx);
            }
            (AdminTx::StoClean { rec, .. }, TxEvent::Committed { .. }) => {
                self.stats.sto_orphans_cleaned += 1;
                self.cache.remove_subtree(rec.inode);
                self.sto_clean_inflight = false;
                self.pump_sto_cleanup(ctx);
            }
            (AdminTx::StoClean { .. }, TxEvent::Aborted { .. }) => {
                // Dropped; the next sweep round re-queues it if still there.
                self.sto_clean_inflight = false;
                self.pump_sto_cleanup(ctx);
            }
            // Unmatched (event, state) pairs: drop (stale retries).
            _ => {}
        }
    }

    /// Kicks one round of the subtree-lock orphan sweep: scan the (small,
    /// fully replicated) `sto_locks` table and queue rows nobody can finish.
    /// Runs on every namenode each election round — every NN repairs its own
    /// leftovers; the leader additionally repairs rows of departed NNs.
    fn start_sto_sweep(&mut self, ctx: &mut Ctx<'_>) {
        if self.sto_sweep_inflight || !self.sto_cleanup.is_empty() {
            return;
        }
        let sto_locks = self.fs().sto_locks;
        let pk = PartitionKey(0);
        if let Some(tx) = self.kernel().begin(ctx, Some((sto_locks, pk))) {
            self.sto_sweep_inflight = true;
            self.admin_txs.insert(tx, AdminTx::StoSweep);
            self.kernel().scan(ctx, tx, sto_locks, pk);
        }
    }

    /// Cleans the next queued orphaned subtree lock, one transaction at a
    /// time: exclusively read the root's entry row *and* the lock row,
    /// re-validate, then atomically unflag the entry and drop the lock row.
    fn pump_sto_cleanup(&mut self, ctx: &mut Ctx<'_>) {
        if self.sto_clean_inflight {
            return;
        }
        let rec = match self.sto_cleanup.pop_front() {
            Some(r) => r,
            None => return,
        };
        let fs = self.fs();
        let entry_key = FsSchema::inode_key(InodeId(rec.parent), &rec.name);
        let tx = match self.kernel().begin(ctx, Some((fs.inodes, entry_key.pk))) {
            Some(tx) => tx,
            None => {
                self.sto_cleanup.push_front(rec);
                return;
            }
        };
        self.sto_clean_inflight = true;
        let specs = vec![
            ReadSpec { table: fs.inodes, key: entry_key, mode: LockMode::Exclusive },
            ReadSpec {
                table: fs.sto_locks,
                key: FsSchema::sto_key(InodeId(rec.inode)),
                mode: LockMode::Exclusive,
            },
        ];
        self.admin_txs.insert(tx, AdminTx::StoClean { rec, read: false });
        self.kernel().read(ctx, tx, specs);
    }

    fn process_election_rows(&mut self, ctx: &mut Ctx<'_>, rows: Vec<ndb::Row>) {
        let now = ctx.now();
        let period = self.cfg().election_period;
        let misses = self.cfg().election_misses;
        let fresh = period * u64::from(misses) + period / 2;
        let mut active = Vec::new();
        let mut leader = u32::MAX;
        for r in &rows {
            let rec = NnRecord::decode(&r.data);
            let entry = self.seen.entry(rec.nn_idx).or_insert((rec.counter, now));
            if entry.0 != rec.counter {
                *entry = (rec.counter, now);
            }
            let alive = rec.nn_idx == self.my_idx as u32 || now.saturating_since(entry.1) <= fresh;
            if alive {
                leader = leader.min(rec.nn_idx);
                active.push(ActiveNn {
                    nn_idx: rec.nn_idx,
                    node_id: rec.node_id,
                    location_domain: rec.location_domain,
                });
            }
        }
        active.sort_by_key(|n| n.nn_idx);
        self.active = active;
        // Track when each peer left the active set: a revoke round only
        // exempts a namenode once it has been gone a full lease lifetime
        // (nothing it granted can outlive that).
        if !self.active.is_empty() {
            let present: BTreeSet<u32> = self.active.iter().map(|n| n.nn_idx).collect();
            for idx in 0..self.view.nn_ids.len() as u32 {
                if present.contains(&idx) {
                    self.nn_departed_at.remove(&idx);
                } else {
                    self.nn_departed_at.entry(idx).or_insert(now);
                }
            }
        }
        if leader != u32::MAX {
            self.leader_idx = leader;
        }
        // Leader duties: watch block datanodes.
        if self.is_leader() {
            let alive = self.dn_alive_mask(now);
            for (idx, &ok) in alive.iter().enumerate() {
                if !ok && !self.dn_marked_dead[idx] {
                    self.dn_marked_dead[idx] = true;
                    self.repl_dead_dn = idx as u32;
                    self.start_repl_scan(ctx, idx as u32);
                }
            }
        }
        // Every round, with the fresh active set in hand: reclaim subtree
        // locks nobody can finish (own leftovers; leader also dead owners').
        self.start_sto_sweep(ctx);
    }

    fn start_repl_scan(&mut self, ctx: &mut Ctx<'_>, dead_dn: u32) {
        let dn_replicas = self.fs().dn_replicas;
        let pk = PartitionKey(dead_dn as u64);
        if let Some(tx) = self.kernel().begin(ctx, Some((dn_replicas, pk))) {
            self.repl_inflight = true;
            self.admin_txs.insert(tx, AdminTx::ReplScan);
            self.kernel().scan(ctx, tx, dn_replicas, pk);
        }
    }

    /// Processes the next damaged block from the repair queue.
    fn pump_rereplication(&mut self, ctx: &mut Ctx<'_>) {
        if self.repl_inflight {
            return;
        }
        if self.repl_queue.is_empty() {
            return;
        }
        // Maintenance-class admission: repair work is the first to yield
        // under overload. A paused pump keeps its queue; the next sweep tick
        // re-checks the gate (no retry-after scheduling needed — the 50 ms
        // sweep cadence is the retry loop).
        if self.cfg().admission.enabled {
            let now = ctx.now();
            let signal = self.overload_signal(ctx);
            let salt = (self.my_idx as u64) ^ 0x4E41_7265706C;
            if let Admission::Shed { .. } = self.gates[CLASS_MAINTENANCE].check(now, signal, salt)
            {
                self.stats.repl_deferred += 1;
                let layer = ctx.layer();
                ctx.metrics().inc(layer, "admission_deferred_maintenance", 1);
                return;
            }
            let layer = ctx.layer();
            ctx.metrics().inc(layer, "admission_admitted_maintenance", 1);
        }
        let (inode, block) = match self.repl_queue.pop_front() {
            Some(x) => x,
            None => return,
        };
        let replicas = self.fs().replicas;
        let pk = PartitionKey(inode);
        if let Some(tx) = self.kernel().begin(ctx, Some((replicas, pk))) {
            self.repl_inflight = true;
            self.admin_txs.insert(tx, AdminTx::ReplReplicas { inode, block });
            self.kernel().scan(ctx, tx, replicas, pk);
        } else {
            self.repl_queue.push_front((inode, block));
        }
    }

    fn on_replica_copied(&mut self, ctx: &mut Ctx<'_>, m: ReplicaCopied) {
        // Record the repaired replica and drop the dead one.
        let fs = self.fs();
        let pk = PartitionKey(m.inode);
        if let Some(tx) = self.kernel().begin(ctx, Some((fs.replicas, pk))) {
            self.admin_txs.insert(tx, AdminTx::ReplCommit);
            let writes = vec![
                WriteOp::Put {
                    table: fs.replicas,
                    key: FsSchema::replica_key(InodeId(m.inode), m.block, m.new_dn),
                    data: ReplicaRecord { block_id: m.block, dn_idx: m.new_dn }.encode(),
                },
                WriteOp::Put {
                    table: fs.dn_replicas,
                    key: FsSchema::dn_replica_key(m.new_dn, m.block),
                    data: encode_sequence(m.inode),
                },
                WriteOp::Delete {
                    table: fs.replicas,
                    key: FsSchema::replica_key(InodeId(m.inode), m.block, self.repl_dead_dn),
                },
                WriteOp::Delete {
                    table: fs.dn_replicas,
                    key: FsSchema::dn_replica_key(self.repl_dead_dn, m.block),
                },
            ];
            self.kernel().write(ctx, tx, writes);
        }
    }

    fn on_tick_election(&mut self, ctx: &mut Ctx<'_>) {
        // A parked or booting namenode owns no election row: it falls out
        // of every peer's active set like a dead node would, and rejoins by
        // bumping again once it serves. (Draining nodes keep bumping — their
        // lease revoke rounds still need peers to see them.)
        if matches!(self.serve_state, NnPoolState::Parked | NnPoolState::Booting) {
            ctx.schedule(self.cfg().election_period, TickElection);
            return;
        }
        self.counter += 1;
        let election = self.fs().election;
        let me = ctx.me();
        let rec = NnRecord {
            nn_idx: self.my_idx as u32,
            counter: self.counter,
            location_domain: self.view.nn_domains[self.my_idx].map(|a| a.0).unwrap_or(255),
            node_id: me.0,
        };
        let key = FsSchema::election_key(self.my_idx as u32);
        match self.kernel().begin(ctx, Some((election, key.pk))) {
            Some(tx) => {
                self.admin_txs.insert(tx, AdminTx::Election { scanned: false });
                self.kernel().write(
                    ctx,
                    tx,
                    vec![WriteOp::Put { table: election, key, data: rec.encode() }],
                );
            }
            None => {
                let period = self.cfg().election_period;
                ctx.schedule(period, TickElection);
            }
        }
    }

    fn on_get_active(&mut self, ctx: &mut Ctx<'_>, from: NodeId) {
        let resp = if self.cfg().elastic.enabled {
            // Elastic pool: the controller's versioned membership is the
            // authority (the election view lags it by up to a round, which
            // is exactly the window a drained node must not be offered in).
            ActiveNns {
                leader_idx: self.leader_idx,
                nns: self
                    .membership
                    .iter()
                    .map(|&i| ActiveNn {
                        nn_idx: i,
                        node_id: self.view.nn_ids[i as usize].0,
                        location_domain: self.view.nn_domains[i as usize]
                            .map(|a| a.0)
                            .unwrap_or(255),
                    })
                    .collect(),
                membership_epoch: self.membership_epoch,
            }
        } else if self.active.is_empty() {
            // Before the first election round completes, report the static
            // deployment so clients can bootstrap.
            ActiveNns {
                leader_idx: 0,
                nns: (0..self.view.nn_ids.len())
                    .map(|i| ActiveNn {
                        nn_idx: i as u32,
                        node_id: self.view.nn_ids[i].0,
                        location_domain: self.view.nn_domains[i].map(|a| a.0).unwrap_or(255),
                    })
                    .collect(),
                membership_epoch: 0,
            }
        } else {
            ActiveNns {
                leader_idx: self.leader_idx,
                nns: self.active.clone(),
                membership_epoch: 0,
            }
        };
        let done = ctx.execute(NN_WORKER, SimDuration::from_micros(30));
        ctx.send_sized_from(done, from, 64 + 16 * resp.nns.len() as u64, resp);
    }

    fn on_tick_sweep(&mut self, ctx: &mut Ctx<'_>) {
        let now = ctx.now();
        // Queue-depth gauges, sampled once per sweep: what the admission
        // gates see, exported so overload is visible even with tracing off.
        let backlog = ctx.lane_backlog(NN_WORKER);
        let ndb_hint = self.kernel.as_ref().map_or(SimDuration::ZERO, ClientKernel::tc_queue_delay);
        let inflight = self.ops.len() as u64;
        let layer = ctx.layer();
        ctx.metrics().set_gauge(layer, "worker_queue_ns", backlog.as_nanos());
        ctx.metrics().set_gauge(layer, "ndb_tc_queue_ns", ndb_hint.as_nanos());
        ctx.metrics().set_gauge(layer, "ops_inflight", inflight);
        let events = self.kernel().sweep(now);
        for ev in events {
            self.on_tx_event(ctx, ev);
        }
        if !self.awaiting_ids.is_empty() && !self.id_refill_inflight {
            self.refill_ids(ctx);
        }
        if !self.repl_queue.is_empty() {
            self.pump_rereplication(ctx);
        }
        if !self.sto_cleanup.is_empty() {
            self.pump_sto_cleanup(ctx);
        }
        self.lease_sweep(ctx, now);
        if self.cfg().elastic.enabled {
            if self.serve_state == NnPoolState::Serving {
                if let Some(controller) = self.view.controller_id {
                    let signal = self.overload_signal(ctx).max(self.signal_peak);
                    self.signal_peak = SimDuration::ZERO;
                    let report = NnLoadReport {
                        nn_idx: self.my_idx as u32,
                        signal_ns: signal.as_nanos(),
                        shed_delta: self.stats.admission_shed - self.shed_reported,
                    };
                    self.shed_reported = self.stats.admission_shed;
                    ctx.send_sized(controller, 48, report);
                }
            }
            self.check_drain_done(ctx);
        }
        ctx.schedule(SimDuration::from_millis(50), TickSweep);
    }

    // ----- elastic pool lifecycle -------------------------------------------

    fn on_nn_activate(&mut self, ctx: &mut Ctx<'_>) {
        if self.serve_state != NnPoolState::Parked {
            return; // duplicate or raced with a drain; the controller owns ordering
        }
        self.serve_state = NnPoolState::Booting;
        ctx.schedule(self.cfg().elastic.boot_delay, BootDone);
    }

    fn on_boot_done(&mut self, ctx: &mut Ctx<'_>) {
        if self.serve_state != NnPoolState::Booting {
            return;
        }
        self.serve_state = NnPoolState::Serving;
        self.warm_left = self.cfg().elastic.warm_ops;
        if let Some(controller) = self.view.controller_id {
            ctx.send_sized(controller, 32, NnServing { nn_idx: self.my_idx as u32 });
        }
    }

    fn on_nn_drain(&mut self, ctx: &mut Ctx<'_>) {
        if self.serve_state != NnPoolState::Serving {
            return;
        }
        self.serve_state = NnPoolState::Draining;
        self.drain_since = ctx.now();
        self.check_drain_done(ctx);
    }

    /// Drain-then-park: a draining namenode waits out the drain grace
    /// (requests routed under the pre-drain membership epoch may still be in
    /// the air), then waits for its in-flight operations *and* its
    /// origin-side lease revoke rounds to complete — an op mid-commit or a
    /// mutation blocked on a revoke must not lose its namenode — then
    /// reports done and parks.
    fn check_drain_done(&mut self, ctx: &mut Ctx<'_>) {
        if self.serve_state != NnPoolState::Draining
            || ctx.now().saturating_since(self.drain_since) < self.cfg().elastic.drain_grace
            || !self.ops.is_empty()
            || !self.lease_rounds.is_empty()
        {
            return;
        }
        self.serve_state = NnPoolState::Parked;
        if let Some(controller) = self.view.controller_id {
            ctx.send_sized(controller, 32, NnDrainDone { nn_idx: self.my_idx as u32 });
        }
    }

    fn on_membership_update(&mut self, m: MembershipUpdate) {
        if m.epoch > self.membership_epoch {
            self.membership_epoch = m.epoch;
            self.membership = m.active;
        }
    }

    fn on_op_resume(&mut self, ctx: &mut Ctx<'_>, op_id: u64) {
        if let Some(octx) = self.ops.get(&op_id) {
            ctx.set_span(octx.span);
            match octx.stage {
                Stage::AwaitIds | Stage::WalkA => self.start_op(ctx, op_id),
                // STO phase-local retries: the lock is held; resume the
                // failed phase only. A scan restarts from scratch, a batch
                // or final transaction re-issues its writes.
                Stage::StoScan(_) => self.sto_start_scan(ctx, op_id),
                Stage::StoBatch => self.sto_issue_batch(ctx, op_id),
                Stage::StoFinal => self.sto_final(ctx, op_id),
                _ => {}
            }
        }
    }
}

impl Actor for NameNodeActor {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        if self.kernel.is_none() {
            let me = ctx.me();
            let loc = ctx.location(me);
            let domain = self.view.nn_domains[self.my_idx];
            self.kernel = Some(ClientKernel::new(Arc::clone(&self.view.ndb), me, loc, domain));
            let now = ctx.now();
            for t in &mut self.dn_last_hb {
                *t = now;
            }
            let stagger = SimDuration::from_millis(7) * (self.my_idx as u64 + 1);
            ctx.schedule(stagger, TickElection);
            ctx.schedule(SimDuration::from_millis(50), TickSweep);
            // Grant warm-up: no leases until this namenode has had time to
            // appear in every peer's election view — a grant before that
            // could dodge revoke rounds that exempt "long-departed" peers.
            let cfg = self.cfg();
            let visible = cfg.election_period * (u64::from(cfg.election_misses) + 1);
            self.lease_grants_from = now + visible;
            self.refill_ids(ctx);
        }
    }

    fn on_restart(&mut self, ctx: &mut Ctx<'_>) {
        // A restarted namenode is stateless by design: all metadata lives in
        // NDB. Drop every piece of volatile state — NDB connections,
        // in-flight ops, the inode-hint cache, leased ID ranges, election
        // view — and let `on_start` rebuild from scratch. Cumulative stats
        // survive: they belong to the measurement harness, not the process.
        let stats = std::mem::take(&mut self.stats);
        *self = NameNodeActor::new(Arc::clone(&self.view), self.my_idx);
        self.stats = stats;
        // The pre-crash lease holder table is gone: until everything this
        // namenode could have granted has expired, it cannot prove revokes
        // complete — stay silent on revoke requests (origins resend).
        self.lease_grace_until = ctx.now() + self.view.config.lease.ttl;
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_>, from: NodeId, msg: Box<dyn Payload>) {
        let any = msg.into_any();
        let any = match any.downcast::<FsRequest>() {
            Ok(m) => return self.on_fs_request(ctx, from, *m),
            Err(m) => m,
        };
        let any = match any.downcast::<ndb::messages::TxResponse>() {
            Ok(m) => return self.on_tx_response(ctx, *m),
            Err(m) => m,
        };
        let any = match any.downcast::<OpResume>() {
            Ok(m) => return self.on_op_resume(ctx, m.op),
            Err(m) => m,
        };
        let any = match any.downcast::<GetActiveNns>() {
            Ok(_) => return self.on_get_active(ctx, from),
            Err(m) => m,
        };
        let any = match any.downcast::<BlockDnHeartbeat>() {
            Ok(m) => {
                let idx = m.dn_idx as usize;
                if idx < self.dn_last_hb.len() {
                    self.dn_last_hb[idx] = ctx.now();
                    self.dn_marked_dead[idx] = false;
                }
                return;
            }
            Err(m) => m,
        };
        let any = match any.downcast::<ReplicaCopied>() {
            Ok(m) => return self.on_replica_copied(ctx, *m),
            Err(m) => m,
        };
        let any = match any.downcast::<PutObjectAck>() {
            // Block objects are durable provider-side; nothing to update
            // (the replica row was written in the create/append tx).
            Ok(_) => return,
            Err(m) => m,
        };
        let any = match any.downcast::<LeaseRevokeReq>() {
            Ok(m) => return self.on_lease_revoke_req(ctx, *m),
            Err(m) => m,
        };
        let any = match any.downcast::<LeaseRevokeAck>() {
            Ok(m) => return self.on_lease_revoke_ack(ctx, *m),
            Err(m) => m,
        };
        let any = match any.downcast::<LeaseInvalidateAck>() {
            Ok(m) => return self.on_lease_invalidate_ack(ctx, from, *m),
            Err(m) => m,
        };
        let any = match any.downcast::<LeaseRenew>() {
            Ok(m) => return self.on_lease_renew(ctx, from, *m),
            Err(m) => m,
        };
        let any = match any.downcast::<NnActivate>() {
            Ok(_) => return self.on_nn_activate(ctx),
            Err(m) => m,
        };
        let any = match any.downcast::<NnDrain>() {
            Ok(_) => return self.on_nn_drain(ctx),
            Err(m) => m,
        };
        let any = match any.downcast::<MembershipUpdate>() {
            Ok(m) => return self.on_membership_update(*m),
            Err(m) => m,
        };
        let any = match any.downcast::<BootDone>() {
            Ok(_) => return self.on_boot_done(ctx),
            Err(m) => m,
        };
        let any = match any.downcast::<TickElection>() {
            Ok(_) => return self.on_tick_election(ctx),
            Err(m) => m,
        };
        match any.downcast::<TickSweep>() {
            Ok(_) => self.on_tick_sweep(ctx),
            Err(m) => debug_assert!(false, "namenode got unknown message {m:?}"),
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}
