//! Shared static view of a full HopsFS deployment.

use crate::config::FsConfig;
use crate::meta::FsSchema;
use ndb::ClusterView;
use simnet::{AzId, Location, NodeId};
use std::sync::Arc;

/// Immutable deployment-wide knowledge shared by namenodes, block datanodes
/// and clients.
#[derive(Debug)]
pub struct FsView {
    /// The metadata-storage (NDB) cluster view.
    pub ndb: Arc<ClusterView>,
    /// HopsFS table ids within the NDB schema.
    pub fs: FsSchema,
    /// Deployment configuration.
    pub config: FsConfig,
    /// Simulation node ids of the namenodes.
    pub nn_ids: Vec<NodeId>,
    /// Placement of each namenode.
    pub nn_locations: Vec<Location>,
    /// `locationDomainId` of each namenode (None = vanilla).
    pub nn_domains: Vec<Option<AzId>>,
    /// Simulation node ids of the block-storage datanodes.
    pub dn_ids: Vec<NodeId>,
    /// AZ of each block-storage datanode.
    pub dn_azs: Vec<AzId>,
    /// Cloud object-store front-ends, one per deployment AZ (present when
    /// the block backend is [`crate::config::BlockBackend::CloudStore`]).
    pub cloud_ids: Vec<NodeId>,
    /// The namenode pool controller (present when `config.elastic.enabled`;
    /// see [`crate::elastic`]).
    pub controller_id: Option<NodeId>,
}

impl FsView {
    /// The object-store front-end local to `az` (falls back to the first).
    ///
    /// # Panics
    ///
    /// Panics if the deployment has no cloud store.
    pub fn cloud_endpoint(&self, az: AzId) -> NodeId {
        let idx = self.config.azs.iter().position(|&a| a == az).unwrap_or(0);
        *self.cloud_ids.get(idx).or_else(|| self.cloud_ids.first()).expect("cloud store deployed")
    }
}

impl FsView {
    /// Namenode index for a simulation node id, if it is one.
    pub fn nn_index_of(&self, id: NodeId) -> Option<usize> {
        self.nn_ids.iter().position(|&n| n == id)
    }

    /// Wraps in an `Arc`.
    pub fn shared(self) -> Arc<FsView> {
        Arc::new(self)
    }
}
