//! HopsFS clients: one actor per client session, driven by an [`OpSource`].
//!
//! Clients implement the paper's metadata-server selection policy (§IV-B3):
//! an AZ-aware client first fetches the active namenode list (maintained by
//! the leader-election protocol, which piggybacks each NN's
//! `locationDomainId`) and picks a namenode in its own AZ, falling back to a
//! random one. A vanilla client picks a random namenode and sticks with it
//! until it fails, then picks a random survivor.

use crate::lease::{
    cache_kind, CacheEntry, LeaseCache, LeaseInvalidate, LeaseInvalidateAck, LeaseMonitor,
    LeaseRenew, LeaseRenewAck, RenewItem,
};
use crate::ops::{ActiveNn, ActiveNns, FsOp, FsRequest, FsResponse, GetActiveNns, OpKind};
use crate::types::{FsError, FsResult};
use crate::view::FsView;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;
use simnet::{Actor, AzId, Ctx, Histogram, NodeId, Payload, RetryPolicy, SimDuration, SimTime};
use std::any::Any;
use std::sync::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// Supplies operations to a client session (closed loop: the next op is
/// requested when the previous one completes).
pub trait OpSource: Send {
    /// The next operation, or `None` when the session is done.
    fn next_op(&mut self, rng: &mut StdRng, now: SimTime) -> Option<FsOp>;
    /// Observes a completed operation.
    fn on_result(&mut self, _op: &FsOp, _result: &FsResult) {}
}

/// A fixed list of operations (tests, examples).
#[derive(Debug)]
pub struct ScriptedSource {
    ops: std::collections::VecDeque<FsOp>,
}

impl ScriptedSource {
    /// Creates a source that plays `ops` in order.
    pub fn new(ops: Vec<FsOp>) -> Self {
        ScriptedSource { ops: ops.into() }
    }
}

impl OpSource for ScriptedSource {
    fn next_op(&mut self, _rng: &mut StdRng, _now: SimTime) -> Option<FsOp> {
        self.ops.pop_front()
    }
}

/// Aggregated workload statistics, shared by all client sessions of one
/// experiment (single-threaded simulation ⇒ `Arc<Mutex<…>>`).
#[derive(Debug)]
pub struct ClientStats {
    /// Record only while true (toggled by the harness around the
    /// measurement window).
    pub recording: bool,
    /// Successful ops per kind.
    pub ok_per_kind: [u64; 9],
    /// Failed ops per kind.
    pub err_per_kind: [u64; 9],
    /// End-to-end latency (ns) across all ops.
    pub latency_all: Histogram,
    /// End-to-end latency (ns) per kind.
    pub latency_per_kind: [Histogram; 9],
    /// Error tallies.
    pub errors: HashMap<&'static str, u64>,
    /// `Overloaded` responses observed (admission sheds reaching clients).
    /// Counted on every arrival, ignoring `recording` — the chaos
    /// shed-accounting audit needs the full-run tally.
    pub overloaded_responses: u64,
    /// Reads served locally from a valid lease (zero namenode round trips).
    /// Gated on `recording`, like latencies.
    pub lease_hits: u64,
    /// Cacheable reads that went to a namenode (no valid lease). Gated on
    /// `recording`.
    pub lease_misses: u64,
    /// Cache entries dropped by invalidation (pushes plus self-notices).
    /// Counted on every arrival, ignoring `recording`.
    pub lease_invalidations: u64,
    /// Lease renewals confirmed by a namenode. Ignores `recording`.
    pub lease_renewed: u64,
}

impl Default for ClientStats {
    fn default() -> Self {
        ClientStats {
            recording: true,
            ok_per_kind: [0; 9],
            err_per_kind: [0; 9],
            latency_all: Histogram::new(),
            latency_per_kind: std::array::from_fn(|_| Histogram::new()),
            errors: HashMap::new(),
            overloaded_responses: 0,
            lease_hits: 0,
            lease_misses: 0,
            lease_invalidations: 0,
            lease_renewed: 0,
        }
    }
}

impl ClientStats {
    /// New shared handle.
    pub fn shared() -> Arc<Mutex<ClientStats>> {
        Arc::new(Mutex::new(ClientStats::default()))
    }

    /// Total successful operations.
    pub fn total_ok(&self) -> u64 {
        self.ok_per_kind.iter().sum()
    }

    /// Total failed operations.
    pub fn total_err(&self) -> u64 {
        self.err_per_kind.iter().sum()
    }

    fn kind_slot(kind: OpKind) -> usize {
        OpKind::ALL.iter().position(|&k| k == kind).expect("kind in ALL")
    }

    /// Latency histogram of one kind.
    pub fn latency_of(&self, kind: OpKind) -> &Histogram {
        &self.latency_per_kind[Self::kind_slot(kind)]
    }

    /// Successful op count of one kind.
    pub fn ok_of(&self, kind: OpKind) -> u64 {
        self.ok_per_kind[Self::kind_slot(kind)]
    }

    /// Records one completed operation (shared by HopsFS and baseline
    /// clients so all systems report through the same sink).
    pub fn record(&mut self, kind: OpKind, result: &FsResult, latency: SimDuration) {
        if !self.recording {
            return;
        }
        let slot = Self::kind_slot(kind);
        match result {
            Ok(_) => {
                self.ok_per_kind[slot] += 1;
                self.latency_all.record(latency.as_nanos());
                self.latency_per_kind[slot].record(latency.as_nanos());
            }
            Err(e) => {
                self.err_per_kind[slot] += 1;
                let label = match e {
                    FsError::NotFound => "not_found",
                    FsError::AlreadyExists => "already_exists",
                    FsError::NotDir => "not_dir",
                    FsError::NotEmpty => "not_empty",
                    FsError::IsDir => "is_dir",
                    FsError::Busy => "busy",
                    FsError::Unavailable => "unavailable",
                    FsError::Invalid => "invalid",
                    FsError::Overloaded { .. } => "overloaded",
                };
                *self.errors.entry(label).or_insert(0) += 1;
            }
        }
    }
}

#[derive(Debug, Clone)]
struct TickClient;
#[derive(Debug, Clone)]
struct ThinkDone;
/// Backoff expired: resend the pending request if it is still the same
/// attempt (a response or a newer timeout invalidates the resend).
#[derive(Debug, Clone)]
struct RetryNow {
    req_id: u64,
    attempt: u32,
}

/// Wakes an idle session so it polls its [`OpSource`] immediately (used by
/// the synchronous test facade instead of waiting for the next tick).
#[derive(Debug, Clone, Copy)]
pub struct Poke;

#[derive(Debug)]
struct Pending {
    req_id: u64,
    op: FsOp,
    started: SimTime,
    sent_at: SimTime,
    attempt: u32,
    idempotent_retry: bool,
    /// Root tracing span of this op (NONE when tracing is off); restored as
    /// the ambient span on every resend so retries stay attributed.
    span: simnet::SpanId,
}

/// One client session.
pub struct FsClientActor {
    view: Arc<FsView>,
    /// The client's `locationDomainId` (None = vanilla).
    pub domain: Option<AzId>,
    source: Box<dyn OpSource>,
    stats: Arc<Mutex<ClientStats>>,
    /// Current metadata server, as a simulation node id.
    my_nn: Option<NodeId>,
    active: Vec<ActiveNn>,
    awaiting_active: bool,
    active_sent_at: SimTime,
    /// Highest pool-membership epoch seen on any response (see
    /// [`crate::elastic`]); a higher epoch on a response invalidates the
    /// cached active list.
    membership_epoch: u64,
    next_req: u64,
    pending: Option<Pending>,
    /// Per-op timeout before the namenode is declared failed.
    pub op_timeout: SimDuration,
    /// Maximum send attempts per op.
    pub max_attempts: u32,
    /// Backoff between failover resends (jittered per client so a namenode
    /// crash does not stampede every client onto the same survivor at the
    /// same instant). The retry budget stays in `max_attempts`.
    pub retry: RetryPolicy,
    /// Pause between ops (0 = fully closed loop).
    pub think_time: SimDuration,
    /// A think pause is in progress (`ThinkDone` scheduled): the stall
    /// ticker must not cut it short by issuing early.
    thinking: bool,
    /// Results kept when enabled (tests/examples).
    pub keep_results: bool,
    /// Collected results (when `keep_results`).
    pub results: Vec<FsResult>,
    /// True once the source is exhausted.
    pub done: bool,
    /// Leased metadata cache (inert unless `config.lease.enabled`).
    pub cache: LeaseCache,
    /// Coherence observer shared across the experiment's clients; checked
    /// on every local serve, fed on every mutation ack. `None` outside
    /// chaos/property harnesses.
    pub monitor: Option<Arc<Mutex<LeaseMonitor>>>,
}

impl FsClientActor {
    /// Creates a client session.
    pub fn new(
        view: Arc<FsView>,
        domain: Option<AzId>,
        source: Box<dyn OpSource>,
        stats: Arc<Mutex<ClientStats>>,
    ) -> Self {
        let cache = LeaseCache::new(view.config.lease.max_entries);
        FsClientActor {
            view,
            domain,
            source,
            stats,
            my_nn: None,
            active: Vec::new(),
            awaiting_active: false,
            active_sent_at: SimTime::ZERO,
            membership_epoch: 0,
            next_req: 0,
            pending: None,
            op_timeout: SimDuration::from_secs(4),
            max_attempts: 6,
            retry: RetryPolicy::new(SimDuration::from_millis(50), SimDuration::from_millis(800)),
            think_time: SimDuration::ZERO,
            thinking: false,
            keep_results: false,
            results: Vec::new(),
            done: false,
            cache,
            monitor: None,
        }
    }

    fn pick_nn(&mut self, rng: &mut StdRng) -> Option<NodeId> {
        if !self.active.is_empty() {
            if let Some(domain) = self.domain {
                // AZ-aware policy: same-AZ active namenode, else random active.
                let local: Vec<&ActiveNn> = self
                    .active
                    .iter()
                    .filter(|n| n.location_domain == domain.0)
                    .collect();
                let chosen = if local.is_empty() {
                    self.active.choose(rng)
                } else {
                    local.choose(rng).copied()
                };
                return chosen.map(|n| NodeId(n.node_id));
            }
            if self.view.config.elastic.enabled {
                // Elastic pool: only members serve — a static pick would
                // land on a parked namenode and bounce.
                return self.active.choose(rng).map(|n| NodeId(n.node_id));
            }
        }
        // Vanilla (or no active list yet): random from the static deployment.
        self.view.nn_ids.choose(rng).copied()
    }

    fn fetch_active(&mut self, ctx: &mut Ctx<'_>) {
        self.awaiting_active = true;
        self.active_sent_at = ctx.now();
        // Prefer a reachable bootstrap namenode (a dead pick would answer
        // with the moral equivalent of connection-refused; model that by
        // retrying from the tick instead).
        let n = self.view.nn_ids.len();
        let pick = self.view.nn_ids[ctx.rng().gen_range(0..n)];
        ctx.send_sized(pick, 48, GetActiveNns);
    }

    fn issue_next(&mut self, ctx: &mut Ctx<'_>) {
        self.thinking = false;
        if self.pending.is_some() || self.done {
            return;
        }
        let now = ctx.now();
        let op = {
            let rng = ctx.rng();
            self.source.next_op(rng, now)
        };
        let op = match op {
            Some(op) => op,
            None => {
                self.done = true;
                return;
            }
        };
        // Lease-cache fast path: a cacheable read with a valid lease is
        // served locally — zero namenode round trips — at a synthetic
        // local-lookup latency (scheduled, not recursed, so a long run of
        // hits cannot blow the stack).
        if self.view.config.lease.enabled {
            if let Some(kind) = cache_kind(op.kind()) {
                let path = op.path().to_string();
                if let Some(e) = self.cache.get(&path, kind, now) {
                    let value = e.value.clone();
                    if let Some(mon) = &self.monitor {
                        mon.lock().unwrap().check_serve(e, kind, now);
                    }
                    let local = SimDuration::from_micros(5);
                    {
                        let mut stats = self.stats.lock().unwrap();
                        if stats.recording {
                            stats.lease_hits += 1;
                        }
                        stats.record(op.kind(), &Ok(value.clone()), local);
                    }
                    let layer = ctx.layer();
                    ctx.metrics().inc(layer, "lease_cache_hits", 1);
                    let result = Ok(value);
                    self.source.on_result(&op, &result);
                    if self.keep_results {
                        self.results.push(result);
                    }
                    self.thinking = true;
                    ctx.schedule(self.think_time.max(local), ThinkDone);
                    return;
                }
                {
                    let mut stats = self.stats.lock().unwrap();
                    if stats.recording {
                        stats.lease_misses += 1;
                    }
                }
                let layer = ctx.layer();
                ctx.metrics().inc(layer, "lease_cache_misses", 1);
            }
        }
        self.next_req += 1;
        let req_id = self.next_req;
        // Each op gets a fresh root span: drop whatever ambient context this
        // dispatch arrived under (e.g. the previous op's response).
        ctx.set_span(simnet::SpanId::NONE);
        let span = ctx.span_start(op.kind().name(), "op");
        self.pending = Some(Pending {
            req_id,
            op: op.clone(),
            started: now,
            sent_at: now,
            attempt: 1,
            idempotent_retry: false,
            span,
        });
        self.send_pending(ctx);
    }

    fn send_pending(&mut self, ctx: &mut Ctx<'_>) {
        let nn = match self.my_nn {
            Some(nn) if ctx.is_alive(nn) => nn,
            _ => {
                let rng_pick = {
                    let mut rng = ctx.rng().clone();
                    self.pick_nn(&mut rng)
                };
                match rng_pick {
                    Some(nn) => {
                        self.my_nn = Some(nn);
                        nn
                    }
                    None => return,
                }
            }
        };
        let p = self.pending.as_mut().expect("pending op");
        p.sent_at = ctx.now();
        let req = FsRequest {
            req_id: p.req_id,
            op: p.op.clone(),
            idempotent_retry: p.idempotent_retry,
            span: p.span,
        };
        ctx.set_span(req.span);
        ctx.send_sized(nn, 256, req);
    }

    fn complete(&mut self, ctx: &mut Ctx<'_>, result: FsResult) {
        let p = self.pending.take().expect("pending op");
        ctx.span_end(p.span);
        let latency = ctx.now().saturating_since(p.started);
        self.stats.lock().unwrap().record(p.op.kind(), &result, latency);
        self.source.on_result(&p.op, &result);
        if self.keep_results {
            self.results.push(result);
        }
        if self.think_time == SimDuration::ZERO {
            self.issue_next(ctx);
        } else {
            self.thinking = true;
            ctx.schedule(self.think_time, ThinkDone);
        }
    }

    fn on_response(&mut self, ctx: &mut Ctx<'_>, resp: FsResponse) {
        if let Err(FsError::Overloaded { .. }) = &resp.result {
            // Tallied before staleness filtering: the shed-accounting audit
            // matches namenode sheds against *deliveries*, stale or not.
            self.stats.lock().unwrap().overloaded_responses += 1;
        }
        // Conflict notices apply stale-or-not: a late-arriving mutation ack
        // is still this client's first knowledge of the conflict — drop the
        // affected entries, tombstone the ids, and (in harnesses) feed the
        // coherence monitor before anything else can serve.
        if let Some(notice) = &resp.notice {
            let dropped =
                self.cache.invalidate(&notice.targets, &notice.listing_dirs, notice.commit_time);
            self.stats.lock().unwrap().lease_invalidations += dropped;
            if let Some(mon) = &self.monitor {
                mon.lock().unwrap().record_ack(notice, ctx.now());
            }
        }
        // Pool-membership epoch piggyback (see `crate::elastic`): a higher
        // epoch means the namenode pool grew or shrank — the cached active
        // list no longer reflects who serves. Adopt lazily: drop the list
        // and re-fetch; no controller broadcast to every client needed.
        if resp.membership_epoch > self.membership_epoch {
            self.membership_epoch = resp.membership_epoch;
            self.active.clear();
            if !self.awaiting_active {
                self.fetch_active(ctx);
            }
        }
        match &self.pending {
            Some(p) if p.req_id == resp.req_id => {}
            _ => return, // stale (timed-out attempt answered late)
        }
        if let Err(FsError::Overloaded { retry_after }) = resp.result {
            // The namenode shed us at admission: the op never ran, so this
            // is a plain resend (not an idempotent retry), and the server's
            // retry-after hint overrides the local backoff curve. Stay on
            // the same namenode — it is alive, just saturated, and its gate
            // trickle decides when we get through. Exception: `redirect`
            // marks a namenode that is out of the pool (parked, booting or
            // draining) — backing off against it would never succeed, so
            // drop it and re-pick a member instead.
            let redirect = resp.redirect;
            let p = self.pending.as_mut().expect("pending op");
            p.attempt += 1;
            if p.attempt > self.max_attempts {
                self.complete(ctx, Err(FsError::Overloaded { retry_after }));
                return;
            }
            let me = u64::from(ctx.me().0);
            let salt = p.req_id ^ (me << 32);
            let d = self
                .retry
                .delay_after_hint(retry_after, p.attempt.saturating_sub(2), salt)
                .unwrap_or(retry_after);
            let now = ctx.now();
            // Mask the op timeout until the resend fires.
            p.sent_at = now + d;
            let layer = ctx.layer();
            if redirect {
                self.my_nn = None;
                self.active.clear();
                ctx.metrics().inc(layer, "elastic_redirect_repicks", 1);
            } else {
                ctx.metrics().inc(layer, "overload_backoff", 1);
            }
            ctx.metrics().record_hist(layer, "retry_backoff_ns", d.as_nanos());
            ctx.span_at("overload_backoff", "retry", p.span, now, now + d);
            let resend = RetryNow { req_id: p.req_id, attempt: p.attempt };
            ctx.schedule(d, resend);
            return;
        }
        // Install a piggybacked lease (tombstones may refuse it: a push for
        // a conflicting mutation can overtake a grant on the wire).
        if let Some(grant) = resp.lease {
            let p = self.pending.as_ref().expect("pending checked above");
            if let (Some(kind), Ok(value)) = (cache_kind(p.op.kind()), &resp.result) {
                let path = p.op.path().to_string();
                let entry = CacheEntry {
                    value: value.clone(),
                    chain: grant.ids,
                    target: grant.target,
                    listing_dir: grant.listing_dir,
                    anchor: grant.anchor,
                    expiry: grant.expiry,
                    granted_by: grant.granted_by,
                };
                self.cache.insert(&path, kind, entry);
            }
        }
        self.complete(ctx, resp.result);
    }

    fn on_tick(&mut self, ctx: &mut Ctx<'_>) {
        let now = ctx.now();
        // Retry a lost active-list fetch (bootstrap NN may be down).
        if self.awaiting_active && now.saturating_since(self.active_sent_at) > SimDuration::from_millis(900)
        {
            self.fetch_active(ctx);
        }
        // Kick the loop if we stalled with nothing in flight — but not
        // during a think pause, or every think time degrades to the tick
        // interval.
        if !self.awaiting_active && self.pending.is_none() && !self.done && !self.thinking {
            self.issue_next(ctx);
        }
        let timeout = self.op_timeout;
        let max = self.max_attempts;
        let retry = self.retry;
        let me = u64::from(ctx.me().0);
        let mut backoff = None;
        let mut give_up = false;
        if let Some(p) = &mut self.pending {
            if now.saturating_since(p.sent_at) > timeout {
                p.attempt += 1;
                p.idempotent_retry = true;
                if p.attempt > max {
                    give_up = true;
                } else {
                    // Back off before hammering a survivor; the salt keeps
                    // the jitter deterministic but decorrelated per client.
                    let d = retry
                        .delay(p.attempt.saturating_sub(2), p.req_id ^ (me << 32))
                        .unwrap_or(retry.cap);
                    // Mask the timeout window until the resend fires.
                    p.sent_at = now + d;
                    let layer = ctx.layer();
                    ctx.metrics().inc(layer, "op_retries", 1);
                    ctx.metrics().record_hist(layer, "retry_backoff_ns", d.as_nanos());
                    ctx.span_at("backoff", "retry", p.span, now, now + d);
                    backoff = Some((d, RetryNow { req_id: p.req_id, attempt: p.attempt }));
                }
            }
        }
        if give_up {
            self.complete(ctx, Err(FsError::Unavailable));
        } else if let Some((d, resend)) = backoff {
            // The namenode looks dead: pick a random survivor (§IV-B3)
            // once the backoff expires.
            self.my_nn = None;
            self.active.clear();
            ctx.schedule(d, resend);
        }
        self.lease_refresh(ctx, now);
        ctx.schedule(SimDuration::from_millis(250), TickClient);
    }

    /// Background lease upkeep, off the client tick: drop expired entries
    /// and batch near-expiry renewals to each granting namenode.
    fn lease_refresh(&mut self, ctx: &mut Ctx<'_>, now: SimTime) {
        let lcfg = self.view.config.lease;
        if !lcfg.enabled || self.cache.is_empty() {
            return;
        }
        self.cache.sweep(now, lcfg.ttl + lcfg.revoke_margin);
        let cands = self.cache.renewal_candidates(now, lcfg.refresh_margin, 64);
        if cands.is_empty() {
            return;
        }
        let mut by_nn: std::collections::BTreeMap<u32, Vec<RenewItem>> =
            std::collections::BTreeMap::new();
        for (path, kind) in cands {
            if let Some(e) = self.cache.peek(&path, kind) {
                by_nn.entry(e.granted_by).or_default().push(RenewItem {
                    path,
                    kind,
                    ids: e.chain.clone(),
                    listing_dir: e.listing_dir,
                    anchor: e.anchor,
                });
            }
        }
        for (nn, items) in by_nn {
            // Renewals only go to the granting namenode (its holder table
            // has the registration); a dead granter simply means the entry
            // expires and the next read re-fetches.
            let node = NodeId(nn);
            if ctx.is_alive(node) {
                let size = 64 + 48 * items.len() as u64;
                ctx.send_sized(node, size, LeaseRenew { items });
            }
        }
    }

    fn on_retry_now(&mut self, ctx: &mut Ctx<'_>, m: RetryNow) {
        match &self.pending {
            Some(p) if p.req_id == m.req_id && p.attempt == m.attempt => {}
            _ => return, // answered or superseded while backing off
        }
        let needs_list = self.domain.is_some()
            || (self.view.config.elastic.enabled && self.active.is_empty());
        if needs_list && !self.awaiting_active {
            self.fetch_active(ctx);
        } else {
            self.send_pending(ctx);
        }
    }

    /// Whether the session has nothing in flight and nothing queued — used
    /// by the chaos liveness checker ("every submitted op terminates").
    pub fn idle(&self) -> bool {
        self.pending.is_none() && !self.awaiting_active
    }
}

impl Actor for FsClientActor {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        ctx.schedule(SimDuration::from_millis(250), TickClient);
        if self.domain.is_some() || self.view.config.elastic.enabled {
            self.fetch_active(ctx);
        } else {
            self.issue_next(ctx);
        }
    }

    fn on_restart(&mut self, _ctx: &mut Ctx<'_>) {
        // A restarted client process has no cache. The namenode-side
        // registrations it leaves behind are harmless — revoke rounds wait
        // them out or get no ack and fall back to expiry.
        self.cache.clear();
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_>, from: NodeId, msg: Box<dyn Payload>) {
        let any = msg.into_any();
        let any = match any.downcast::<FsResponse>() {
            Ok(m) => return self.on_response(ctx, *m),
            Err(m) => m,
        };
        let any = match any.downcast::<LeaseInvalidate>() {
            Ok(m) => {
                // A namenode push: drop conflicting entries and ack so the
                // revoke round (and the mutation behind it) can complete.
                let dropped = self.cache.invalidate(&m.targets, &m.listing_dirs, m.commit_time);
                self.stats.lock().unwrap().lease_invalidations += dropped;
                let layer = ctx.layer();
                ctx.metrics().inc(layer, "lease_invalidations", dropped);
                ctx.send_sized(
                    from,
                    64,
                    LeaseInvalidateAck { round: m.round, origin_idx: m.origin_idx },
                );
                return;
            }
            Err(m) => m,
        };
        let any = match any.downcast::<LeaseRenewAck>() {
            Ok(m) => {
                for (path, kind, expiry) in m.renewed {
                    self.cache.extend(&path, kind, expiry);
                    self.stats.lock().unwrap().lease_renewed += 1;
                }
                return;
            }
            Err(m) => m,
        };
        let any = match any.downcast::<ActiveNns>() {
            Ok(m) => {
                self.awaiting_active = false;
                self.active = m.nns;
                if m.membership_epoch > self.membership_epoch {
                    self.membership_epoch = m.membership_epoch;
                }
                // Re-send only if the pending request has no namenode yet
                // (failover repick); an already-sent request must not be
                // duplicated to a second namenode.
                let needs_nn = self.my_nn.is_none();
                if needs_nn {
                    let pick = {
                        let mut rng = ctx.rng().clone();
                        self.pick_nn(&mut rng)
                    };
                    self.my_nn = pick;
                    if self.pending.is_some() {
                        self.send_pending(ctx);
                    }
                }
                if self.pending.is_none() {
                    self.issue_next(ctx);
                }
                return;
            }
            Err(m) => m,
        };
        let any = match any.downcast::<TickClient>() {
            Ok(_) => return self.on_tick(ctx),
            Err(m) => m,
        };
        let any = match any.downcast::<ThinkDone>() {
            Ok(_) => return self.issue_next(ctx),
            Err(m) => m,
        };
        let any = match any.downcast::<RetryNow>() {
            Ok(m) => return self.on_retry_now(ctx, *m),
            Err(m) => m,
        };
        match any.downcast::<Poke>() {
            Ok(_) => self.issue_next(ctx),
            Err(m) => debug_assert!(false, "client got unknown message {m:?}"),
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}
