//! Chaos invariant checking: machine-checkable statements about what a
//! HopsFS-CL cluster must guarantee across injected faults.
//!
//! The nemesis (`simnet::Schedule`) makes things go wrong; this module says
//! what "still correct" means. It provides:
//!
//! - [`TrackedSource`], an [`OpSource`] decorator that records every
//!   **acknowledged mutation** into a shared [`ChaosLog`] — the ground truth
//!   for the no-acked-loss safety check;
//! - [`audit_ops`], which turns that log into a verification script (one
//!   `Stat` per acked path) to replay after the faults heal;
//! - [`InvariantReport`] / [`check_invariants`], a point-in-time scan of the
//!   cluster for the singleton invariants: at most one acting namenode
//!   leader and exactly one NDB arbitrator among alive management nodes,
//!   plus client liveness (every submitted op eventually terminates, so no
//!   session is left stuck in flight).
//!
//! Tests (`tests/chaos.rs` at the workspace root) combine these with a
//! seeded fault schedule and assert the report is clean after heal.

use crate::client::{ClientStats, FsClientActor, OpSource};
use crate::meta::StoRecord;
use crate::namenode::NameNodeActor;
use crate::ops::FsOp;
use crate::types::FsResult;
use crate::view::FsView;
use ndb::mgmt::MgmtActor;
use ndb::{DatanodeActor, PartitionKey, TableId};
use rand::rngs::StdRng;
use simnet::{NodeId, SimTime, Simulation};
use std::sync::Mutex;
use std::sync::Arc;

/// Ground truth of acknowledged mutations, shared by every [`TrackedSource`]
/// of an experiment.
#[derive(Debug, Default)]
pub struct ChaosLog {
    /// Paths whose `Create` was acknowledged (must exist afterwards).
    pub acked_creates: Vec<String>,
    /// Paths whose `Mkdir` was acknowledged (must exist afterwards).
    pub acked_mkdirs: Vec<String>,
    /// Paths whose `Delete` was acknowledged (tracked for completeness; a
    /// later re-create may legitimately bring the path back).
    pub acked_deletes: Vec<String>,
    /// Completed operations, successful or not.
    pub completed: u64,
    /// Completed operations that returned an error.
    pub errors: u64,
}

impl ChaosLog {
    /// A fresh shared log.
    pub fn shared() -> Arc<Mutex<ChaosLog>> {
        Arc::new(Mutex::new(ChaosLog::default()))
    }
}

/// [`OpSource`] decorator recording acked mutations into a [`ChaosLog`].
pub struct TrackedSource {
    inner: Box<dyn OpSource>,
    log: Arc<Mutex<ChaosLog>>,
}

impl TrackedSource {
    /// Wraps `inner`, recording into `log`.
    pub fn new(inner: Box<dyn OpSource>, log: Arc<Mutex<ChaosLog>>) -> Self {
        TrackedSource { inner, log }
    }
}

impl OpSource for TrackedSource {
    fn next_op(&mut self, rng: &mut StdRng, now: SimTime) -> Option<FsOp> {
        self.inner.next_op(rng, now)
    }

    fn on_result(&mut self, op: &FsOp, result: &FsResult) {
        self.inner.on_result(op, result);
        let mut log = self.log.lock().unwrap();
        log.completed += 1;
        if result.is_err() {
            log.errors += 1;
            return;
        }
        match op {
            FsOp::Create { path, .. } => log.acked_creates.push(path.to_string()),
            FsOp::Mkdir { path } => log.acked_mkdirs.push(path.to_string()),
            FsOp::Delete { path, .. } => log.acked_deletes.push(path.to_string()),
            _ => {}
        }
    }
}

/// Builds the audit script for a log: one `Stat` per acked create/mkdir
/// whose path was not subsequently acked-deleted. Every op in the returned
/// script must succeed, or an acknowledged mutation was lost.
pub fn audit_ops(log: &ChaosLog) -> Vec<FsOp> {
    let deleted: std::collections::HashSet<&str> =
        log.acked_deletes.iter().map(String::as_str).collect();
    log.acked_mkdirs
        .iter()
        .chain(log.acked_creates.iter())
        .filter(|p| !deleted.contains(p.as_str()))
        .map(|p| FsOp::Stat { path: crate::path::FsPath::parse(p).expect("logged path") })
        .collect()
}

/// Point-in-time invariant scan result; produced by [`check_invariants`].
#[derive(Debug)]
pub struct InvariantReport {
    /// Indices of alive namenodes that currently believe they lead.
    pub leaders: Vec<usize>,
    /// Ranks of alive NDB management nodes that currently believe they are
    /// the active arbitrator.
    pub arbitrators: Vec<usize>,
    /// Clients with an op still in flight (non-empty = liveness violation
    /// if the workload has drained).
    pub busy_clients: Vec<NodeId>,
    /// Leftover subtree-operation lock rows (see [`orphaned_sto_locks`]).
    /// Non-empty at quiesce = part of the namespace is locked forever.
    pub sto_orphans: Vec<StoRecord>,
}

impl InvariantReport {
    /// Whether the singleton invariants hold, no client is stuck, and no
    /// subtree lock is orphaned.
    pub fn clean(&self) -> bool {
        self.leaders.len() <= 1
            && self.arbitrators.len() == 1
            && self.busy_clients.is_empty()
            && self.sto_orphans.is_empty()
    }
}

/// Scans the fully replicated `sto_locks` table for leftover subtree-op lock
/// rows, reading the first alive NDB datanode directly (replicas of a fully
/// replicated table are identical, so one alive node sees them all).
///
/// Call at quiesce, after faults heal, elections settle, and the namenodes'
/// orphan sweep has had at least one round: with no subtree op in flight,
/// *any* surviving row is an orphan — a namenode crashed mid-protocol and
/// the cleanup path failed to reclaim the lock, leaving every operation
/// through that subtree root permanently rejected.
pub fn orphaned_sto_locks(sim: &Simulation, view: &FsView) -> Vec<StoRecord> {
    let dn = view
        .ndb
        .datanode_ids
        .iter()
        .find(|&&id| {
            // A recovering datanode's copy of the fully replicated table may
            // be mid-resync: only a synced replica is authoritative.
            sim.is_alive(id) && !sim.actor::<DatanodeActor>(id).is_recovering()
        })
        .expect("at least one synced NDB datanode alive");
    sim.actor::<DatanodeActor>(*dn)
        .peek_partition(view.fs.sto_locks, PartitionKey(0))
        .iter()
        .map(|(_, data)| StoRecord::decode(data))
        .collect()
}

/// Compares per-fragment digests across the alive, synced members of every
/// NDB node group and returns the `(group, table, partition)` triples whose
/// replicas diverge. After faults heal and recoveries complete, a non-empty
/// result means a replica holds stale data — exactly the durability bug a
/// revive-without-resync produces.
///
/// Not wired into [`InvariantReport::clean`]: transactions aborted *during*
/// a fault window can legitimately leave benign divergence between a
/// replica that applied a row at the commit point and one that never got
/// the message (the row is unlocked and repaired by the next write). Use
/// this as a dedicated check in recovery drills, where convergence is the
/// property under test.
pub fn fragment_divergence(
    sim: &Simulation,
    view: &FsView,
) -> Vec<(usize, TableId, PartitionKey)> {
    let cfg = &view.ndb.config;
    let mut out = Vec::new();
    for g in 0..cfg.node_group_count() {
        let digests: Vec<_> = cfg
            .group_members(g)
            .map(|i| view.ndb.datanode_ids[i])
            .filter(|&id| sim.is_alive(id))
            .map(|id| sim.actor::<DatanodeActor>(id))
            .filter(|dn| !dn.is_recovering())
            .map(|dn| dn.fragment_digests())
            .collect();
        if digests.len() < 2 {
            continue;
        }
        let mut keys: std::collections::BTreeSet<(TableId, PartitionKey)> =
            std::collections::BTreeSet::new();
        for d in &digests {
            keys.extend(d.keys().copied());
        }
        for k in keys {
            let vals: Vec<Option<u64>> = digests.iter().map(|d| d.get(&k).copied()).collect();
            if vals.windows(2).any(|w| w[0] != w[1]) {
                out.push((g, k.0, k.1));
            }
        }
    }
    out
}

/// Total reads any NDB datanode served while it was in Recovering state —
/// the no-stale-reads invariant of the node-recovery protocol. Must be
/// zero in every run, faults or not.
pub fn recovering_read_violations(sim: &Simulation, view: &FsView) -> u64 {
    view.ndb
        .datanode_ids
        .iter()
        .map(|&id| sim.actor::<DatanodeActor>(id).stats.reads_served_while_recovering)
        .sum()
}

/// The epoch-fenced routing invariant of online NDB node-group
/// reconfiguration (see `ndb::mgmt`): **no write is ever applied under a
/// superseded partition-map epoch.** Every prepare carries the coordinator's
/// epoch; a datanode whose committed epoch has moved past it refuses the row
/// (the transaction aborts `WrongEpoch` and the client retries under the new
/// map), and counts any slip in `epoch_stale_applies`. Returns the total
/// across all NDB datanodes — must be zero in every run, reconfigurations
/// and faults included. Pair with a client-side ack replay
/// ([`audit_ops`]-style) to cover the second half of the invariant: no
/// acked mutation is lost across an epoch change.
pub fn epoch_routing(sim: &Simulation, view: &FsView) -> u64 {
    view.ndb
        .datanode_ids
        .iter()
        .map(|&id| sim.actor::<DatanodeActor>(id).stats.epoch_stale_applies)
        .sum()
}

/// The client-cache coherence invariant: **no read is ever served from a
/// cache entry whose lease outlived an acked conflicting mutation.**
/// Returns the violation count observed by the experiment's shared
/// [`crate::lease::LeaseMonitor`] — mutating clients report every
/// unambiguous mutation ack into it, and every locally served read is
/// checked against those acks (an entry anchored at or before a conflicting
/// mutation's commit floor must never be served at or after that mutation's
/// ack). Must be zero in every run, faults or not: crashes and partitions
/// may *delay* mutation acks (the revoke round waits out unreachable
/// holders) but must never let a stale lease outlive one.
pub fn lease_coherence(monitor: &crate::lease::LeaseMonitor) -> u64 {
    monitor.violations
}

/// Cross-layer shed accounting; produced by [`shed_audit`].
///
/// The overload-control invariant is **"a shed request is never acked"**:
/// a request the admission gate turned away must not also have executed.
/// The namenode counts every delivered FS request exactly once — answered
/// (ok or error, through the response path), shed at admission, or still in
/// flight — so the books balance iff no request took two paths. The
/// client-side tally closes the loop: every shed became an `Overloaded`
/// delivery, never a success.
#[derive(Debug)]
pub struct ShedAudit {
    /// FS requests delivered to namenodes (resends count separately).
    pub requests_received: u64,
    /// Requests answered through the response path (ok + error).
    pub answered: u64,
    /// Requests shed at admission with `Overloaded`.
    pub shed: u64,
    /// Admitted ops still executing at scan time (0 once quiesced).
    pub in_flight: u64,
    /// `Overloaded` responses observed at clients (stale ones included).
    pub client_overloads: u64,
}

impl ShedAudit {
    /// Whether the books balance. Valid at quiescence in runs where no
    /// namenode crashed (a restart discards in-flight ops while the
    /// cumulative received-counter survives) and every response was
    /// delivered (clients alive, partitions healed).
    pub fn clean(&self) -> bool {
        self.requests_received == self.answered + self.shed + self.in_flight
            && self.shed == self.client_overloads
    }
}

/// Tallies shed accounting across all alive namenodes and the experiment's
/// shared client stats. See [`ShedAudit::clean`] for validity conditions.
pub fn shed_audit(sim: &Simulation, view: &FsView, stats: &ClientStats) -> ShedAudit {
    let mut audit = ShedAudit {
        requests_received: 0,
        answered: 0,
        shed: 0,
        in_flight: 0,
        client_overloads: stats.overloaded_responses,
    };
    for &id in view.nn_ids.iter().filter(|&&id| sim.is_alive(id)) {
        let nn = sim.actor::<NameNodeActor>(id);
        audit.requests_received += nn.stats.requests_received;
        audit.answered +=
            nn.stats.ops_ok.values().sum::<u64>() + nn.stats.ops_err.values().sum::<u64>();
        audit.shed += nn.stats.admission_shed;
        audit.in_flight += nn.ops_in_flight() as u64;
    }
    audit
}

/// Scans the cluster: which alive namenodes believe they lead, which alive
/// management nodes believe they arbitrate, and which of `clients` still
/// have work in flight.
///
/// Call this *after* partitions heal and elections settle. During a
/// partition, two namenodes may transiently believe they lead (the NDB
/// arbitrator guarantees only one can commit); after heal and an election
/// round, at most one alive namenode and exactly one management node may
/// hold their role.
pub fn check_invariants(sim: &Simulation, view: &FsView, clients: &[NodeId]) -> InvariantReport {
    let now = sim.now();
    let leaders = view
        .nn_ids
        .iter()
        .enumerate()
        .filter(|&(_, &id)| sim.is_alive(id))
        .filter(|&(_, &id)| sim.actor::<NameNodeActor>(id).is_leader())
        .map(|(i, _)| i)
        .collect();
    let arbitrators = view
        .ndb
        .mgmt_ids
        .iter()
        .enumerate()
        .filter(|&(_, &id)| sim.is_alive(id))
        .filter(|&(_, &id)| sim.actor::<MgmtActor>(id).believes_active(now))
        .map(|(r, _)| r)
        .collect();
    let busy_clients = clients
        .iter()
        .filter(|&&id| !sim.actor::<FsClientActor>(id).idle())
        .copied()
        .collect();
    let sto_orphans = orphaned_sto_locks(sim, view);
    InvariantReport { leaders, arbitrators, busy_clients, sto_orphans }
}
