//! Cloud object-store block backend — the paper's §VII future work:
//! *"we will integrate HopsFS-CL with native cloud storage as a block layer
//! to make storage and inter-AZ networking costs competitive with native
//! cloud object stores."*
//!
//! The store is modeled after S3-class regional object storage:
//!
//! - one **front-end per AZ**; tenants talk to the AZ-local endpoint, so
//!   their block traffic never crosses AZs on *their* bill (regional object
//!   storage replicates across AZs inside the provider);
//! - **request-rate limits** per front-end (the paper notes these stores are
//!   "API-request rate-limited" — §VI), modeled as a pacing interval with
//!   queueing;
//! - first-byte **latency** far above a datanode hop (~15 ms), plus a
//!   bandwidth term;
//! - per-request **fees** (PUT/GET), tracked for the cost comparison bench.
//!
//! Enable with [`crate::config::BlockBackend::CloudStore`]: large-file
//! blocks become objects instead of 3×-replicated datanode blocks; replica
//! rows carry the [`CLOUD_LOCATION`] sentinel, and datanode re-replication
//! is the provider's problem.

use simnet::{Actor, Ctx, NodeId, Payload, SimDuration, SimTime};
use std::any::Any;
use std::sync::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// Replica-location sentinel meaning "the block lives in the object store".
pub const CLOUD_LOCATION: u32 = u32::MAX;

/// Tenant → store: persist a block object.
#[derive(Debug, Clone, Copy)]
pub struct PutObject {
    /// Object key (block id).
    pub key: u64,
    /// Payload size.
    pub bytes: u64,
}

/// Store → tenant: object durable (across AZs, inside the provider).
#[derive(Debug, Clone, Copy)]
pub struct PutObjectAck {
    /// Object key.
    pub key: u64,
}

/// Tenant → store: fetch a block object.
#[derive(Debug, Clone, Copy)]
pub struct GetObject {
    /// Object key.
    pub key: u64,
}

/// Store → tenant: object payload (or absence).
#[derive(Debug, Clone, Copy)]
pub struct GetObjectResp {
    /// Object key.
    pub key: u64,
    /// Payload size; `None` if the key does not exist.
    pub bytes: Option<u64>,
}

/// Tenant → store: delete an object (idempotent, free of charge, as on S3).
#[derive(Debug, Clone, Copy)]
pub struct DeleteObject {
    /// Object key.
    pub key: u64,
}

/// Regional object contents + request accounting, shared by the per-AZ
/// front-ends (provider-internal replication is not tenant traffic).
#[derive(Debug, Default)]
pub struct CloudStoreState {
    objects: HashMap<u64, u64>,
    /// PUT requests served (for the fee model).
    pub put_requests: u64,
    /// GET requests served.
    pub get_requests: u64,
    /// DELETE requests served.
    pub delete_requests: u64,
    /// Total object bytes ingested.
    pub bytes_in: u64,
}

impl CloudStoreState {
    /// New shared handle.
    pub fn shared() -> Arc<Mutex<CloudStoreState>> {
        Arc::new(Mutex::new(CloudStoreState::default()))
    }

    /// Number of stored objects.
    pub fn object_count(&self) -> usize {
        self.objects.len()
    }

    /// Size of one object, if present.
    pub fn object_size(&self, key: u64) -> Option<u64> {
        self.objects.get(&key).copied()
    }

    /// Estimated request fees in USD (S3-like: $5/million PUT,
    /// $0.40/million GET).
    pub fn request_fees_usd(&self) -> f64 {
        self.put_requests as f64 * 5.0 / 1e6 + self.get_requests as f64 * 0.4 / 1e6
    }
}

/// One AZ-local front-end of the regional object store.
pub struct CloudStoreActor {
    state: Arc<Mutex<CloudStoreState>>,
    /// First-byte service latency.
    pub service_latency: SimDuration,
    /// Per-front-end ingest/egress bandwidth (bytes/s).
    pub bandwidth: u64,
    /// Minimum spacing between requests (the API rate limit; e.g. 3500
    /// mutating requests/s on an S3 prefix ⇒ ~286 µs).
    pub request_interval: SimDuration,
    next_slot: SimTime,
}

impl CloudStoreActor {
    /// Creates a front-end over the shared regional state.
    pub fn new(state: Arc<Mutex<CloudStoreState>>) -> Self {
        CloudStoreActor {
            state,
            service_latency: SimDuration::from_millis(15),
            bandwidth: 500_000_000, // 500 MB/s per front-end stream budget
            request_interval: SimDuration::from_micros(286),
            next_slot: SimTime::ZERO,
        }
    }

    /// Admission + service time for one request of `bytes` (rate limiting by
    /// pacing: requests beyond the limit queue).
    fn service(&mut self, now: SimTime, bytes: u64) -> SimTime {
        let start = self.next_slot.max(now);
        self.next_slot = start + self.request_interval;
        let xfer = SimDuration::from_nanos(bytes.saturating_mul(1_000_000_000) / self.bandwidth.max(1));
        start + self.service_latency + xfer
    }
}

impl Actor for CloudStoreActor {
    fn on_message(&mut self, ctx: &mut Ctx<'_>, from: NodeId, msg: Box<dyn Payload>) {
        let now = ctx.now();
        let any = msg.into_any();
        let any = match any.downcast::<PutObject>() {
            Ok(m) => {
                let done = self.service(now, m.bytes);
                let mut st = self.state.lock().unwrap();
                st.objects.insert(m.key, m.bytes);
                st.put_requests += 1;
                st.bytes_in += m.bytes;
                drop(st);
                ctx.send_sized_from(done, from, 64, PutObjectAck { key: m.key });
                return;
            }
            Err(m) => m,
        };
        let any = match any.downcast::<GetObject>() {
            Ok(m) => {
                let bytes = self.state.lock().unwrap().object_size(m.key);
                let done = self.service(now, bytes.unwrap_or(0));
                self.state.lock().unwrap().get_requests += 1;
                ctx.send_sized_from(done, from, bytes.unwrap_or(0).max(64), GetObjectResp {
                    key: m.key,
                    bytes,
                });
                return;
            }
            Err(m) => m,
        };
        match any.downcast::<DeleteObject>() {
            Ok(m) => {
                let mut st = self.state.lock().unwrap();
                st.objects.remove(&m.key);
                st.delete_requests += 1;
            }
            Err(m) => debug_assert!(false, "cloud store got unknown message {m:?}"),
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::{Location, NodeSpec, Simulation};

    #[derive(Debug, Clone)]
    struct Go;

    struct Tenant {
        store: NodeId,
        pub acks: u32,
        pub got: Option<Option<u64>>,
        pub last_at: SimTime,
        puts: u32,
    }
    impl Actor for Tenant {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            ctx.schedule(SimDuration::from_millis(1), Go);
        }
        fn on_message(&mut self, ctx: &mut Ctx<'_>, _from: NodeId, msg: Box<dyn Payload>) {
            let any = msg.into_any();
            let any = match any.downcast::<Go>() {
                Ok(_) => {
                    for i in 0..self.puts {
                        ctx.send_sized(self.store, 1_000_000, PutObject { key: u64::from(i), bytes: 1_000_000 });
                    }
                    return;
                }
                Err(m) => m,
            };
            let any = match any.downcast::<PutObjectAck>() {
                Ok(_) => {
                    self.acks += 1;
                    self.last_at = ctx.now();
                    if self.acks == self.puts {
                        ctx.send_sized(self.store, 64, GetObject { key: 0 });
                        ctx.send_sized(self.store, 64, GetObject { key: 999_999 });
                    }
                    return;
                }
                Err(m) => m,
            };
            if let Ok(r) = any.downcast::<GetObjectResp>() {
                if r.key == 0 {
                    self.got = Some(r.bytes);
                }
                self.last_at = ctx.now();
            }
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
    }

    fn run(puts: u32) -> (Simulation, NodeId, Arc<Mutex<CloudStoreState>>) {
        let mut sim = Simulation::new(3);
        sim.set_jitter(0.0);
        let state = CloudStoreState::shared();
        let store = sim.add_node(
            NodeSpec::new("s3-az0", Location::new(0, 0)),
            Box::new(CloudStoreActor::new(Arc::clone(&state))),
        );
        let tenant = sim.add_node(
            NodeSpec::new("tenant", Location::new(0, 1)),
            Box::new(Tenant { store, acks: 0, got: None, last_at: SimTime::ZERO, puts }),
        );
        sim.run_until(SimTime::from_secs(30));
        (sim, tenant, state)
    }

    #[test]
    fn put_get_round_trip_with_fees() {
        let (sim, tenant, state) = run(3);
        let t = sim.actor::<Tenant>(tenant);
        assert_eq!(t.acks, 3);
        assert_eq!(t.got, Some(Some(1_000_000)), "stored object readable");
        let st = state.lock().unwrap();
        assert_eq!(st.object_count(), 3);
        assert_eq!(st.put_requests, 3);
        assert_eq!(st.get_requests, 2);
        assert!(st.request_fees_usd() > 0.0);
    }

    #[test]
    fn put_latency_includes_service_floor() {
        let (sim, tenant, _) = run(1);
        let t = sim.actor::<Tenant>(tenant);
        // Sent at 1ms; 15ms service + 2ms transfer at 500MB/s + network.
        assert!(t.last_at >= SimTime::from_millis(16), "cloud latency too low: {}", t.last_at);
    }

    #[test]
    fn rate_limit_paces_bursts() {
        // 2000 puts at a 286us interval take >= ~0.57s even though they all
        // arrive at once.
        let (sim, tenant, _) = run(2000);
        let t = sim.actor::<Tenant>(tenant);
        assert_eq!(t.acks, 2000);
        assert!(
            t.last_at >= SimTime::from_millis(550),
            "rate limit not enforced: finished at {}",
            t.last_at
        );
    }

    #[test]
    fn missing_objects_read_as_none() {
        let (sim, tenant, state) = run(1);
        let _ = sim.actor::<Tenant>(tenant);
        assert_eq!(state.lock().unwrap().object_size(424242), None);
    }
}
