//! Deployment: materializes a full HopsFS / HopsFS-CL cluster — NDB
//! metadata storage, namenodes, block datanodes — into a simulation, and
//! bulk-loads an initial namespace.

use crate::block::BlockDnActor;
use crate::client::{ClientStats, FsClientActor, OpSource};
use crate::cloudstore::{CloudStoreActor, CloudStoreState};
use crate::config::{BlockBackend, FsConfig};
use crate::meta::{encode_sequence, FsSchema, InodeRecord};
use crate::namenode::{NameNodeActor, NN_WORKER};
use crate::types::InodeId;
use crate::view::FsView;
use ndb::{NdbCluster, Schema};
use simnet::{AzId, Disk, HostId, LaneClassSpec, Location, NodeId, NodeSpec, Simulation};
use std::sync::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// Bulk-loader id space: the sequence row starts here, so directly loaded
/// inodes use ids below it.
const BULK_ID_CEILING: u64 = 1 << 20;

/// A deployed HopsFS cluster.
pub struct FsCluster {
    /// Shared deployment view.
    pub view: Arc<FsView>,
    /// The underlying NDB cluster handle.
    pub ndb: NdbCluster,
    /// Object-store accounting when the cloud block backend is enabled.
    pub cloud: Option<Arc<Mutex<CloudStoreState>>>,
    bulk_next_id: u64,
    bulk_dirs: HashMap<String, u64>,
}

/// Builds the full stack into `sim`: the NDB cluster, `cfg.nn_count`
/// namenodes, and `dn_count` block-storage datanodes, plus the bootstrap
/// rows (root inode and id sequence).
///
/// # Panics
///
/// Panics if the configuration is inconsistent (e.g. no AZs).
pub fn build_fs_cluster(sim: &mut Simulation, cfg: FsConfig, dn_count: usize) -> FsCluster {
    let mut schema = Schema::new();
    let fs = FsSchema::register(&mut schema, cfg.read_backup_tables());
    let ndb = ndb::build_cluster(sim, cfg.ndb.clone(), schema, &cfg.azs);

    // Namenodes: round-robin over the deployment AZs, each on its own host.
    let mut nn_ids = Vec::with_capacity(cfg.nn_count);
    let mut nn_locations = Vec::with_capacity(cfg.nn_count);
    let mut nn_domains = Vec::with_capacity(cfg.nn_count);
    let nn_lanes = vec![LaneClassSpec::new(NN_WORKER, cfg.nn_costs.worker_threads)];

    // Pre-compute ids so the FsView can be built before the actors.
    let base = sim.node_count() as u32;
    for i in 0..cfg.nn_count {
        let az = cfg.azs[i % cfg.azs.len()];
        nn_ids.push(NodeId(base + i as u32));
        nn_locations.push(Location { az, host: HostId(base + i as u32) });
        nn_domains.push(if cfg.az_aware { Some(az) } else { None });
    }
    let dn_base = base + cfg.nn_count as u32;
    let mut dn_ids = Vec::with_capacity(dn_count);
    let mut dn_azs = Vec::with_capacity(dn_count);
    for i in 0..dn_count {
        dn_ids.push(NodeId(dn_base + i as u32));
        dn_azs.push(cfg.azs[i % cfg.azs.len()]);
    }
    let cloud_base = dn_base + dn_count as u32;
    let cloud_ids: Vec<NodeId> = if cfg.block_backend == BlockBackend::CloudStore {
        (0..cfg.azs.len()).map(|i| NodeId(cloud_base + i as u32)).collect()
    } else {
        Vec::new()
    };
    let controller_base = cloud_base + cloud_ids.len() as u32;
    let controller_id = cfg.elastic.enabled.then_some(NodeId(controller_base));

    let view = FsView {
        ndb: Arc::clone(&ndb.view),
        fs,
        config: cfg,
        nn_ids: nn_ids.clone(),
        nn_locations: nn_locations.clone(),
        nn_domains,
        dn_ids: dn_ids.clone(),
        dn_azs: dn_azs.clone(),
        cloud_ids: cloud_ids.clone(),
        controller_id,
    }
    .shared();

    for i in 0..view.config.nn_count {
        let spec = NodeSpec::new(format!("nn-{i}"), nn_locations[i])
            .with_lanes(nn_lanes.clone())
            .with_layer("namenode");
        let id = sim.add_node(spec, Box::new(NameNodeActor::new(Arc::clone(&view), i)));
        assert_eq!(id, nn_ids[i], "node id prediction drifted");
    }
    for i in 0..dn_count {
        let loc = Location { az: dn_azs[i], host: HostId(dn_base + i as u32) };
        let spec = NodeSpec::new(format!("blockdn-{i}"), loc)
            .with_lanes(vec![LaneClassSpec::new(crate::block::dn_lane(), 8)])
            .with_disk(Disk::new(800_000_000))
            .with_layer("blockdn");
        let id = sim.add_node(spec, Box::new(BlockDnActor::new(Arc::clone(&view), i as u32)));
        assert_eq!(id, dn_ids[i], "node id prediction drifted");
    }

    // Cloud object-store front-ends (one per AZ), sharing regional state.
    let cloud = if view.config.block_backend == BlockBackend::CloudStore {
        let state = CloudStoreState::shared();
        for (i, &az) in view.config.azs.iter().enumerate() {
            let loc = Location { az, host: HostId(cloud_base + i as u32) };
            let id = sim.add_node(
                NodeSpec::new(format!("cloudstore-{az}"), loc).with_layer("cloudstore"),
                Box::new(CloudStoreActor::new(Arc::clone(&state))),
            );
            assert_eq!(id, cloud_ids[i], "node id prediction drifted");
        }
        Some(state)
    } else {
        None
    };

    // The namenode pool controller (see `crate::elastic`): its own host in
    // the first AZ, outside the serving path.
    if let Some(cid) = controller_id {
        let loc = Location { az: view.config.azs[0], host: HostId(controller_base) };
        let id = sim.add_node(
            NodeSpec::new("nn-controller", loc).with_layer("elastic"),
            Box::new(crate::elastic::ElasticController::new(Arc::clone(&view))),
        );
        assert_eq!(id, cid, "node id prediction drifted");
    }

    let mut cluster =
        FsCluster { view, ndb, cloud, bulk_next_id: InodeId::ROOT.0 + 1, bulk_dirs: HashMap::new() };
    cluster.bulk_dirs.insert("/".to_string(), InodeId::ROOT.0);

    // Bootstrap rows: the root inode and the id sequence.
    let fsv = cluster.view.fs;
    cluster.ndb.load_row(
        sim,
        fsv.inodes,
        FsSchema::inode_key(InodeId::NONE, ""),
        InodeRecord::dir(InodeId::ROOT, 0).encode(),
    );
    cluster.ndb.load_row(
        sim,
        fsv.sequences,
        FsSchema::sequence_key("ids"),
        encode_sequence(BULK_ID_CEILING),
    );
    cluster
}

impl FsCluster {
    /// Bulk-creates a directory (and its ancestors) directly in the metadata
    /// store, bypassing the protocol — for pre-loading benchmark namespaces.
    /// Returns the directory's inode id.
    ///
    /// # Panics
    ///
    /// Panics if the bulk id space is exhausted or the path is invalid.
    pub fn bulk_mkdir_p(&mut self, sim: &mut Simulation, path: &str) -> u64 {
        let p = crate::path::FsPath::parse(path).expect("valid path");
        let mut cur = "/".to_string();
        let mut cur_id = InodeId::ROOT.0;
        for comp in p.components() {
            let child = if cur == "/" { format!("/{comp}") } else { format!("{cur}/{comp}") };
            cur_id = match self.bulk_dirs.get(&child) {
                Some(&id) => id,
                None => {
                    let id = self.alloc_bulk_id();
                    let rec = InodeRecord::dir(InodeId(id), 0);
                    let parent = *self.bulk_dirs.get(&cur).expect("ancestor loaded");
                    self.ndb.load_row(
                        sim,
                        self.view.fs.inodes,
                        FsSchema::inode_key(InodeId(parent), comp),
                        rec.encode(),
                    );
                    self.bulk_dirs.insert(child.clone(), id);
                    id
                }
            };
            cur = child;
        }
        cur_id
    }

    /// Bulk-creates an (empty or inline) file; ancestors are created as
    /// needed. Returns the file's inode id.
    ///
    /// # Panics
    ///
    /// Panics on invalid paths or bulk id exhaustion.
    pub fn bulk_add_file(&mut self, sim: &mut Simulation, path: &str, size: u64) -> u64 {
        let p = crate::path::FsPath::parse(path).expect("valid path");
        let parent_path = p.parent().expect("file cannot be root").to_string();
        let parent = self.bulk_mkdir_p(sim, &parent_path);
        let id = self.alloc_bulk_id();
        let mut rec = InodeRecord::file(InodeId(id), 0, self.view.config.block_replication);
        rec.size = size;
        if size > 0 && size < self.view.config.small_file_max {
            rec.inline_len = size as u32;
            self.ndb.load_row(
                sim,
                self.view.fs.small_files,
                FsSchema::small_file_key(InodeId(id)),
                bytes::Bytes::from(vec![0u8; size as usize]),
            );
        }
        self.ndb.load_row(
            sim,
            self.view.fs.inodes,
            FsSchema::inode_key(InodeId(parent), p.name().expect("file has a name")),
            rec.encode(),
        );
        id
    }

    fn alloc_bulk_id(&mut self) -> u64 {
        let id = self.bulk_next_id;
        self.bulk_next_id += 1;
        assert!(id < BULK_ID_CEILING, "bulk namespace too large");
        id
    }

    /// Adds a client session actor in `az`. AZ-awareness follows the cluster
    /// configuration.
    pub fn add_client(
        &self,
        sim: &mut Simulation,
        az: AzId,
        source: Box<dyn OpSource>,
        stats: Arc<Mutex<ClientStats>>,
    ) -> NodeId {
        let host = HostId(sim.node_count() as u32);
        let domain = if self.view.config.az_aware { Some(az) } else { None };
        let actor = FsClientActor::new(Arc::clone(&self.view), domain, source, stats);
        sim.add_node(
            NodeSpec::new("fs-client", Location { az, host }).with_layer("fs-client"),
            Box::new(actor),
        )
    }

    /// Adds an open-loop client session in `az`: Poisson arrivals at
    /// `rate_per_sec`, an AIMD in-flight window, and a bounded arrival
    /// queue of `queue_cap` (see [`crate::openloop::OpenLoopClientActor`]).
    pub fn add_open_loop_client(
        &self,
        sim: &mut Simulation,
        az: AzId,
        source: Box<dyn OpSource>,
        stats: Arc<Mutex<ClientStats>>,
        rate_per_sec: f64,
        queue_cap: usize,
    ) -> NodeId {
        let host = HostId(sim.node_count() as u32);
        let actor = crate::openloop::OpenLoopClientActor::new(
            Arc::clone(&self.view),
            source,
            stats,
            rate_per_sec,
            queue_cap,
        );
        sim.add_node(
            NodeSpec::new("ol-client", Location { az, host }).with_layer("fs-client"),
            Box::new(actor),
        )
    }
}

/// Builds only the [`FsView`] (fake node ids), for pure-function tests such
/// as placement.
pub fn build_fs_view_for_tests(cfg: FsConfig, dn_count: usize) -> Arc<FsView> {
    let mut schema = Schema::new();
    let fs = FsSchema::register(&mut schema, cfg.read_backup_tables());
    let ndb_view = ndb::ClusterView {
        config: cfg.ndb.clone(),
        schema,
        pmap: ndb::PartitionMap::new(&cfg.ndb),
        datanode_ids: (0..cfg.ndb.datanodes.len() as u32).map(NodeId).collect(),
        datanode_locations: (0..cfg.ndb.datanodes.len())
            .map(|i| Location { az: cfg.azs[i % cfg.azs.len()], host: HostId(i as u32) })
            .collect(),
        mgmt_ids: vec![NodeId(1000)],
    }
    .shared();
    let nn = cfg.nn_count;
    let azs = cfg.azs.clone();
    FsView {
        ndb: ndb_view,
        fs,
        nn_ids: (2000..2000 + nn as u32).map(NodeId).collect(),
        nn_locations: (0..nn)
            .map(|i| Location { az: azs[i % azs.len()], host: HostId(2000 + i as u32) })
            .collect(),
        nn_domains: (0..nn)
            .map(|i| if cfg.az_aware { Some(azs[i % azs.len()]) } else { None })
            .collect(),
        dn_ids: (3000..3000 + dn_count as u32).map(NodeId).collect(),
        dn_azs: (0..dn_count).map(|i| azs[i % azs.len()]).collect(),
        cloud_ids: Vec::new(),
        controller_id: None,
        config: cfg,
    }
    .shared()
}
