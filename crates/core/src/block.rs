//! The block storage layer: datanodes (DNs) that store the blocks of large
//! files (> 128 KB), heartbeat to the namenodes, and execute re-replication
//! commands from the leader (§IV-C).
//!
//! Small files never reach this layer: their data lives inline in the
//! metadata store on NVMe next to their metadata (§II-A3).

use crate::namenode::BlockDnHeartbeat;
use crate::view::FsView;
use simnet::{Actor, Ctx, DiskOp, NodeId, Payload, SimDuration};
use std::any::Any;
use std::collections::HashMap;
use std::sync::Arc;

/// Lane-class name for the datanode I/O pool.
pub fn dn_lane() -> &'static str {
    "io"
}

#[derive(Debug, Clone)]
struct TickHb;

/// Namenode → datanode: persist a block (server-side placement path). The
/// first datanode stores and forwards the payload down the `pipeline`, as
/// the HDFS write pipeline does — so replication traffic (including its
/// cross-AZ hops) is on the wire.
#[derive(Debug, Clone)]
pub struct StoreBlock {
    /// Block id.
    pub block: u64,
    /// Bytes.
    pub len: u64,
    /// Owning file inode.
    pub inode: u64,
    /// Remaining replica targets (datanode indices) downstream.
    pub pipeline: Vec<u32>,
}

/// Namenode → datanode: drop a block (file deleted).
#[derive(Debug, Clone, Copy)]
pub struct InvalidateBlock {
    /// Block id.
    pub block: u64,
}

/// Leader → surviving datanode: copy `block` to `target` (re-replication
/// after a datanode failure).
#[derive(Debug, Clone, Copy)]
pub struct ReplicateBlockCmd {
    /// Block id.
    pub block: u64,
    /// Owning file inode.
    pub inode: u64,
    /// Destination datanode index.
    pub target: u32,
    /// The leader namenode to ack to.
    pub leader: NodeId,
}

/// Datanode → datanode: the block bytes of a re-replication copy.
#[derive(Debug, Clone, Copy)]
pub struct CopyBlock {
    /// Block id.
    pub block: u64,
    /// Bytes.
    pub len: u64,
    /// Owning file inode.
    pub inode: u64,
    /// Leader to ack to once stored.
    pub leader: NodeId,
}

/// Datanode → leader: a re-replication copy completed.
#[derive(Debug, Clone, Copy)]
pub struct ReplicaCopied {
    /// Block id.
    pub block: u64,
    /// Owning file inode.
    pub inode: u64,
    /// Datanode now holding the new replica.
    pub new_dn: u32,
}

/// The block-storage datanode actor.
pub struct BlockDnActor {
    view: Arc<FsView>,
    /// My block-datanode index.
    pub my_idx: u32,
    /// Stored blocks: id → (len, inode).
    blocks: HashMap<u64, (u64, u64)>,
    /// Heartbeat period.
    pub heartbeat: SimDuration,
}

impl BlockDnActor {
    /// Creates block datanode `my_idx`.
    pub fn new(view: Arc<FsView>, my_idx: u32) -> Self {
        BlockDnActor { view, my_idx, blocks: HashMap::new(), heartbeat: SimDuration::from_millis(500) }
    }

    /// Number of blocks stored.
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }

    /// Whether a block is stored here.
    pub fn has_block(&self, block: u64) -> bool {
        self.blocks.contains_key(&block)
    }

    /// Total stored bytes.
    pub fn stored_bytes(&self) -> u64 {
        self.blocks.values().map(|&(len, _)| len).sum()
    }
}

impl Actor for BlockDnActor {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        ctx.schedule(self.heartbeat, TickHb);
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_>, _from: NodeId, msg: Box<dyn Payload>) {
        let any = msg.into_any();
        let any = match any.downcast::<TickHb>() {
            Ok(_) => {
                for &nn in &self.view.nn_ids {
                    ctx.send_sized(nn, 48, BlockDnHeartbeat { dn_idx: self.my_idx });
                }
                ctx.schedule(self.heartbeat, TickHb);
                return;
            }
            Err(m) => m,
        };
        let any = match any.downcast::<StoreBlock>() {
            Ok(m) => {
                ctx.execute(dn_lane(), SimDuration::from_micros(60));
                let done = ctx.disk_io(DiskOp::Write, m.len);
                self.blocks.insert(m.block, (m.len, m.inode));
                // Forward the payload down the write pipeline.
                let mut rest = m.pipeline.clone();
                if !rest.is_empty() {
                    let next = rest.remove(0);
                    if let Some(&node) = self.view.dn_ids.get(next as usize) {
                        let fwd = StoreBlock { pipeline: rest, ..*m };
                        ctx.send_sized_from(done, node, m.len.max(1024), fwd);
                    }
                }
                return;
            }
            Err(m) => m,
        };
        let any = match any.downcast::<InvalidateBlock>() {
            Ok(m) => {
                self.blocks.remove(&m.block);
                return;
            }
            Err(m) => m,
        };
        let any = match any.downcast::<ReplicateBlockCmd>() {
            Ok(m) => {
                if let Some(&(len, inode)) = self.blocks.get(&m.block) {
                    // Read from disk, then stream to the target.
                    let done = ctx.disk_io(DiskOp::Read, len);
                    if let Some(&target) = self.view.dn_ids.get(m.target as usize) {
                        ctx.send_sized_from(
                            done,
                            target,
                            len.max(1024),
                            CopyBlock { block: m.block, len, inode, leader: m.leader },
                        );
                    }
                }
                return;
            }
            Err(m) => m,
        };
        match any.downcast::<CopyBlock>() {
            Ok(m) => {
                ctx.execute(dn_lane(), SimDuration::from_micros(60));
                let done = ctx.disk_io(DiskOp::Write, m.len);
                self.blocks.insert(m.block, (m.len, m.inode));
                ctx.send_sized_from(
                    done,
                    m.leader,
                    64,
                    ReplicaCopied { block: m.block, inode: m.inode, new_dn: self.my_idx },
                );
            }
            Err(m) => debug_assert!(false, "block dn got unknown message {m:?}"),
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}
