//! Client ↔ namenode operation protocol.

use crate::path::FsPath;
use crate::types::FsResult;

/// A file-system operation.
#[derive(Debug, Clone)]
pub enum FsOp {
    /// Create a directory (parent must exist).
    Mkdir {
        /// Directory path.
        path: FsPath,
    },
    /// Create a file of `size` bytes. Files under the small-file threshold
    /// are stored inline in the metadata layer (§II-A3); larger files get
    /// blocks on the block-storage layer.
    Create {
        /// File path.
        path: FsPath,
        /// File size in bytes (0 = empty file, as in the paper's benchmarks).
        size: u64,
    },
    /// Open a file for reading: returns attributes and block locations
    /// (HDFS `getBlockLocations`).
    Open {
        /// File path.
        path: FsPath,
    },
    /// Delete a file or directory.
    Delete {
        /// Target path.
        path: FsPath,
        /// Allow deleting non-empty directories.
        recursive: bool,
    },
    /// Atomically rename a file or directory.
    Rename {
        /// Source path.
        src: FsPath,
        /// Destination path (must not exist; parent must exist).
        dst: FsPath,
    },
    /// Get attributes (HDFS `getFileInfo` / `fstat`).
    Stat {
        /// Target path.
        path: FsPath,
    },
    /// List a directory (HDFS `getListing`).
    List {
        /// Directory path.
        path: FsPath,
    },
    /// Set permission bits (HDFS `setPermission`).
    SetPerm {
        /// Target path.
        path: FsPath,
        /// New permission bits.
        perm: u16,
    },
    /// Append `bytes` to a file (HDFS `append` + write + close). Small files
    /// grow inline until the threshold; block-backed files gain a block.
    Append {
        /// File path.
        path: FsPath,
        /// Bytes appended.
        bytes: u64,
    },
}

/// Operation kind, for metrics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpKind {
    /// mkdir
    Mkdir,
    /// createFile
    Create,
    /// readFile / getBlockLocations
    Open,
    /// delete
    Delete,
    /// rename
    Rename,
    /// stat / getFileInfo
    Stat,
    /// ls / getListing
    List,
    /// setPermission
    SetPerm,
    /// append
    Append,
}

impl OpKind {
    /// All kinds, in a stable order.
    pub const ALL: [OpKind; 9] = [
        OpKind::Mkdir,
        OpKind::Create,
        OpKind::Open,
        OpKind::Delete,
        OpKind::Rename,
        OpKind::Stat,
        OpKind::List,
        OpKind::SetPerm,
        OpKind::Append,
    ];

    /// Whether the operation mutates metadata.
    pub fn is_mutation(self) -> bool {
        matches!(
            self,
            OpKind::Mkdir
                | OpKind::Create
                | OpKind::Delete
                | OpKind::Rename
                | OpKind::SetPerm
                | OpKind::Append
        )
    }

    /// Short display name matching the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            OpKind::Mkdir => "mkdir",
            OpKind::Create => "createFile",
            OpKind::Open => "readFile",
            OpKind::Delete => "deleteFile",
            OpKind::Rename => "rename",
            OpKind::Stat => "stat",
            OpKind::List => "ls",
            OpKind::SetPerm => "setPerm",
            OpKind::Append => "append",
        }
    }
}

impl FsOp {
    /// The operation's kind.
    pub fn kind(&self) -> OpKind {
        match self {
            FsOp::Mkdir { .. } => OpKind::Mkdir,
            FsOp::Create { .. } => OpKind::Create,
            FsOp::Open { .. } => OpKind::Open,
            FsOp::Delete { .. } => OpKind::Delete,
            FsOp::Rename { .. } => OpKind::Rename,
            FsOp::Stat { .. } => OpKind::Stat,
            FsOp::List { .. } => OpKind::List,
            FsOp::SetPerm { .. } => OpKind::SetPerm,
            FsOp::Append { .. } => OpKind::Append,
        }
    }

    /// The primary path the operation touches.
    pub fn path(&self) -> &FsPath {
        match self {
            FsOp::Mkdir { path }
            | FsOp::Create { path, .. }
            | FsOp::Open { path }
            | FsOp::Delete { path, .. }
            | FsOp::Stat { path }
            | FsOp::List { path }
            | FsOp::SetPerm { path, .. }
            | FsOp::Append { path, .. } => path,
            FsOp::Rename { src, .. } => src,
        }
    }
}

/// Client → namenode request.
#[derive(Debug, Clone)]
pub struct FsRequest {
    /// Client-chosen correlation id.
    pub req_id: u64,
    /// The operation.
    pub op: FsOp,
    /// True when this is a retry of an ambiguous failure: `Create` treats
    /// `AlreadyExists` and `Delete` treats `NotFound` as success (the first
    /// attempt may have committed before its ack was lost).
    pub idempotent_retry: bool,
    /// Tracing span of the client operation this request belongs to
    /// ([`simnet::SpanId::NONE`] when tracing is off). Propagated so the
    /// namenode can attribute queued/retried work to the originating op.
    pub span: simnet::SpanId,
}

/// Namenode → client response.
#[derive(Debug, Clone)]
pub struct FsResponse {
    /// Correlation id from the request.
    pub req_id: u64,
    /// Operation result.
    pub result: FsResult,
    /// Lease piggybacked on a successful read when client caching is on
    /// (see [`crate::lease`]); `None` otherwise.
    pub lease: Option<crate::lease::LeaseGrant>,
    /// Conflict summary piggybacked on a successful mutation when client
    /// caching is on: which cached ids the mutation made stale.
    pub notice: Option<crate::lease::MutationNotice>,
    /// The namenode's current pool-membership epoch (see [`crate::elastic`];
    /// 0 = static deployment). A client seeing a higher epoch than it knows
    /// re-fetches the active list — that is how the pool's grows and shrinks
    /// propagate without a broadcast to every client.
    pub membership_epoch: u64,
    /// True when the answering namenode is not serving (parked, booting or
    /// draining): the result is `Overloaded`, but the client should re-pick
    /// a member instead of backing off against this namenode.
    pub redirect: bool,
}

impl FsResponse {
    /// A plain response with no lease-protocol payload.
    pub fn plain(req_id: u64, result: FsResult) -> Self {
        FsResponse { req_id, result, lease: None, notice: None, membership_epoch: 0, redirect: false }
    }
}

/// Client → namenode: ask for the active namenode list (served from the
/// leader-election state; used by the AZ-aware client selection policy,
/// §IV-B3).
#[derive(Debug, Clone, Copy)]
pub struct GetActiveNns;

/// One active namenode, as reported by the election table.
#[derive(Debug, Clone, Copy)]
pub struct ActiveNn {
    /// Namenode index.
    pub nn_idx: u32,
    /// Simulation node id to address it.
    pub node_id: u32,
    /// Its `locationDomainId` (255 = unset).
    pub location_domain: u8,
}

/// Namenode → client: the active list and current leader.
#[derive(Debug, Clone)]
pub struct ActiveNns {
    /// Index of the current leader namenode.
    pub leader_idx: u32,
    /// All namenodes believed alive.
    pub nns: Vec<ActiveNn>,
    /// Pool-membership epoch this list reflects (0 = static deployment).
    pub membership_epoch: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_classify_mutations() {
        assert!(OpKind::Create.is_mutation());
        assert!(OpKind::Rename.is_mutation());
        assert!(!OpKind::Stat.is_mutation());
        assert!(!OpKind::Open.is_mutation());
        assert!(!OpKind::List.is_mutation());
    }

    #[test]
    fn op_kind_and_path() {
        let p = FsPath::parse("/a/b").unwrap();
        let op = FsOp::Create { path: p.clone(), size: 0 };
        assert_eq!(op.kind(), OpKind::Create);
        assert_eq!(op.path(), &p);
        let r = FsOp::Rename { src: p.clone(), dst: FsPath::parse("/c").unwrap() };
        assert_eq!(r.path(), &p);
    }

    #[test]
    fn names_match_paper_labels() {
        assert_eq!(OpKind::Create.name(), "createFile");
        assert_eq!(OpKind::Open.name(), "readFile");
        assert_eq!(OpKind::ALL.len(), 9);
        assert!(OpKind::Append.is_mutation());
    }
}
