//! Block placement policies for the block storage layer (§IV-C).

use crate::config::PlacementPolicy;
use crate::view::FsView;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use simnet::AzId;

/// Chooses `n` distinct block-storage datanodes for a new block's replicas.
///
/// `alive[i]` masks usable datanodes; `writer_az` is the writing client's AZ
/// when known (the first replica prefers it, like HDFS's writer-local rule).
/// Returns fewer than `n` nodes when the cluster is too degraded.
///
/// Policies:
/// - [`PlacementPolicy::Random`]: uniform distinct nodes;
/// - [`PlacementPolicy::RackAwareAzAsRack`]: the HDFS default with AZs
///   configured as racks — first replica local, second on a different AZ,
///   third on the second's AZ (a different node), rest random;
/// - [`PlacementPolicy::AzSpread`]: strict round-robin across AZs, so a
///   whole-AZ failure can never lose all replicas.
pub fn place_replicas(
    view: &FsView,
    alive: &[bool],
    writer_az: Option<AzId>,
    n: usize,
    rng: &mut StdRng,
) -> Vec<usize> {
    let mut candidates: Vec<usize> = (0..view.dn_ids.len())
        .filter(|&i| alive.get(i).copied().unwrap_or(false))
        .collect();
    candidates.shuffle(rng);
    if candidates.is_empty() || n == 0 {
        return Vec::new();
    }
    let az_of = |i: usize| view.dn_azs[i];
    let mut picked: Vec<usize> = Vec::with_capacity(n);
    let take = |picked: &mut Vec<usize>, pred: &dyn Fn(usize) -> bool| -> bool {
        if let Some(pos) = candidates.iter().position(|&i| !picked.contains(&i) && pred(i)) {
            picked.push(candidates[pos]);
            true
        } else {
            false
        }
    };

    match view.config.placement {
        PlacementPolicy::Random => {
            for &c in &candidates {
                if picked.len() == n {
                    break;
                }
                picked.push(c);
            }
        }
        PlacementPolicy::RackAwareAzAsRack => {
            // 1st: writer-local if possible.
            if let Some(waz) = writer_az {
                if !take(&mut picked, &|i| az_of(i) == waz) {
                    take(&mut picked, &|_| true);
                }
            } else {
                take(&mut picked, &|_| true);
            }
            // 2nd: a different AZ ("rack") than the first.
            if picked.len() < n {
                let first_az = az_of(picked[0]);
                if !take(&mut picked, &|i| az_of(i) != first_az) {
                    take(&mut picked, &|_| true);
                }
            }
            // 3rd: same AZ as the second, different node.
            if picked.len() < n && picked.len() >= 2 {
                let second_az = az_of(picked[1]);
                if !take(&mut picked, &|i| az_of(i) == second_az) {
                    take(&mut picked, &|_| true);
                }
            }
            // Rest: anything.
            while picked.len() < n && take(&mut picked, &|_| true) {}
        }
        PlacementPolicy::AzSpread => {
            // Cover distinct AZs first (writer's AZ first when known).
            let mut azs: Vec<AzId> = view.config.azs.clone();
            if let Some(waz) = writer_az {
                azs.retain(|&a| a != waz);
                azs.insert(0, waz);
            }
            'outer: loop {
                let before = picked.len();
                for &az in &azs {
                    if picked.len() == n {
                        break 'outer;
                    }
                    take(&mut picked, &|i| az_of(i) == az);
                }
                if picked.len() == before {
                    // No progress possible in any AZ.
                    while picked.len() < n && take(&mut picked, &|_| true) {}
                    break;
                }
            }
        }
    }
    picked
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FsConfig;
    use crate::deploy::build_fs_view_for_tests;
    use rand::SeedableRng;
    use std::collections::HashSet;

    fn view(policy: PlacementPolicy, dns: usize) -> std::sync::Arc<FsView> {
        let mut cfg = FsConfig::hopsfs_cl(6, 3, 1);
        cfg.placement = policy;
        build_fs_view_for_tests(cfg, dns)
    }

    fn rng() -> StdRng {
        StdRng::seed_from_u64(9)
    }

    #[test]
    fn replicas_are_distinct() {
        for policy in [PlacementPolicy::Random, PlacementPolicy::RackAwareAzAsRack, PlacementPolicy::AzSpread] {
            let v = view(policy, 9);
            let picked = place_replicas(&v, &[true; 9], Some(AzId(0)), 3, &mut rng());
            assert_eq!(picked.len(), 3);
            assert_eq!(picked.iter().collect::<HashSet<_>>().len(), 3, "{policy:?}");
        }
    }

    #[test]
    fn rack_aware_spans_at_least_two_azs() {
        let v = view(PlacementPolicy::RackAwareAzAsRack, 9);
        for seed in 0..20 {
            let mut r = StdRng::seed_from_u64(seed);
            let picked = place_replicas(&v, &[true; 9], Some(AzId(1)), 3, &mut r);
            let azs: HashSet<_> = picked.iter().map(|&i| v.dn_azs[i]).collect();
            assert!(azs.len() >= 2, "replicas all in one AZ: {picked:?}");
            assert_eq!(v.dn_azs[picked[0]], AzId(1), "first replica is writer-local");
        }
    }

    #[test]
    fn az_spread_covers_all_three_azs() {
        let v = view(PlacementPolicy::AzSpread, 9);
        for seed in 0..20 {
            let mut r = StdRng::seed_from_u64(seed);
            let picked = place_replicas(&v, &[true; 9], None, 3, &mut r);
            let azs: HashSet<_> = picked.iter().map(|&i| v.dn_azs[i]).collect();
            assert_eq!(azs.len(), 3, "one replica per AZ: {picked:?}");
        }
    }

    #[test]
    fn dead_nodes_are_never_picked() {
        let v = view(PlacementPolicy::AzSpread, 9);
        let mut alive = vec![true; 9];
        for i in [0usize, 3, 6] {
            alive[i] = false;
        }
        let picked = place_replicas(&v, &alive, None, 3, &mut rng());
        assert!(picked.iter().all(|&i| alive[i]), "{picked:?}");
    }

    #[test]
    fn degraded_cluster_returns_fewer() {
        let v = view(PlacementPolicy::AzSpread, 9);
        let mut alive = vec![false; 9];
        alive[4] = true;
        let picked = place_replicas(&v, &alive, None, 3, &mut rng());
        assert_eq!(picked, vec![4]);
        assert!(place_replicas(&v, &[false; 9], None, 3, &mut rng()).is_empty());
    }
}
