//! Core file-system types: identifiers, attributes, errors, results.

use simnet::{SimDuration, SimTime};
use std::fmt;

/// Inode identifier. The root directory is always [`InodeId::ROOT`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct InodeId(pub u64);

impl InodeId {
    /// The root directory's inode id.
    pub const ROOT: InodeId = InodeId(1);
    /// The pseudo-parent of the root directory.
    pub const NONE: InodeId = InodeId(0);
}

impl fmt::Display for InodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "inode{}", self.0)
    }
}

/// Block identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BlockId(pub u64);

/// POSIX-ish permission bits (9 bits rwxrwxrwx).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Perm(pub u16);

impl Default for Perm {
    fn default() -> Self {
        Perm(0o755)
    }
}

/// File or directory attributes, as returned by `stat`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InodeAttrs {
    /// Inode id.
    pub id: InodeId,
    /// Whether this is a directory.
    pub is_dir: bool,
    /// Permission bits.
    pub perm: Perm,
    /// Owner id.
    pub owner: u32,
    /// Group id.
    pub group: u32,
    /// File size in bytes (0 for directories).
    pub size: u64,
    /// Modification time (virtual nanoseconds).
    pub mtime: u64,
    /// Replication factor for the file's blocks.
    pub replication: u8,
    /// Bytes stored inline in the metadata layer (small files < 128 KB).
    pub inline_len: u32,
}

/// A directory entry from `list`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DirEntry {
    /// Entry name.
    pub name: String,
    /// Entry attributes.
    pub attrs: InodeAttrs,
}

/// Location of one block replica.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockLocation {
    /// Block id.
    pub block: BlockId,
    /// Block length in bytes.
    pub len: u64,
    /// Datanode indices holding replicas.
    pub replicas: Vec<u32>,
}

/// Result payload of a successful file-system operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FsOk {
    /// Operation completed with nothing to return.
    Done,
    /// Attributes (stat).
    Attrs(InodeAttrs),
    /// Directory listing.
    Listing(Vec<DirEntry>),
    /// Block locations (and inline length for small files).
    Locations {
        /// Attributes of the opened file.
        attrs: InodeAttrs,
        /// Replica locations of each block (empty for small files).
        blocks: Vec<BlockLocation>,
    },
}

/// File-system operation errors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsError {
    /// A path component does not exist.
    NotFound,
    /// Target already exists (create/mkdir/rename destination).
    AlreadyExists,
    /// A non-final path component is not a directory.
    NotDir,
    /// Attempted to remove a non-empty directory without `recursive`.
    NotEmpty,
    /// A file operation hit a directory (or vice versa).
    IsDir,
    /// Transient contention; safe to retry (abort/timeout exhausted retries).
    Busy,
    /// The cluster (metadata or block layer) cannot serve the operation.
    Unavailable,
    /// Malformed path or argument.
    Invalid,
    /// The NameNode shed the request at admission — it was never enqueued
    /// and did **not** execute. Retry no earlier than `retry_after` from
    /// receipt (the server's own estimate of when capacity frees up).
    Overloaded {
        /// Server-suggested minimum wait before retrying.
        retry_after: SimDuration,
    },
}

impl fmt::Display for FsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            FsError::NotFound => "no such file or directory",
            FsError::AlreadyExists => "file exists",
            FsError::NotDir => "not a directory",
            FsError::NotEmpty => "directory not empty",
            FsError::IsDir => "is a directory",
            FsError::Busy => "resource busy, retry",
            FsError::Unavailable => "file system unavailable",
            FsError::Invalid => "invalid argument",
            FsError::Overloaded { .. } => "server overloaded, retry later",
        };
        f.write_str(s)
    }
}

impl std::error::Error for FsError {}

/// Result alias for file-system operations.
pub type FsResult = Result<FsOk, FsError>;

/// A completed operation observation, recorded by clients for the harness.
#[derive(Debug, Clone)]
pub struct OpRecord {
    /// Which kind of operation (indexes [`crate::ops::OpKind`]).
    pub kind: crate::ops::OpKind,
    /// Whether it succeeded.
    pub ok: bool,
    /// End-to-end latency.
    pub latency: simnet::SimDuration,
    /// Completion time.
    pub finished_at: SimTime,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn root_constants() {
        assert_eq!(InodeId::ROOT.0, 1);
        assert_eq!(InodeId::NONE.0, 0);
        assert!(InodeId::NONE < InodeId::ROOT);
    }

    #[test]
    fn errors_display() {
        assert_eq!(FsError::NotFound.to_string(), "no such file or directory");
        assert_eq!(FsError::Busy.to_string(), "resource busy, retry");
    }

    #[test]
    fn default_perm_is_755() {
        assert_eq!(Perm::default().0, 0o755);
    }
}
