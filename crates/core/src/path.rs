//! Absolute-path parsing and validation.
//!
//! HopsFS paths are `/`-separated absolute paths. Components may not be
//! empty, `"."`, or `".."` (the benchmark workloads never produce them, and
//! HDFS normalizes them away client-side).

use crate::types::FsError;

/// A validated, normalized absolute path.
///
/// # Examples
///
/// ```
/// use hopsfs::path::FsPath;
///
/// let p = FsPath::parse("/user/spotify/playlists").unwrap();
/// assert_eq!(p.components(), &["user", "spotify", "playlists"]);
/// assert_eq!(p.name(), Some("playlists"));
/// assert_eq!(p.parent().unwrap().to_string(), "/user/spotify");
/// assert!(FsPath::parse("relative/path").is_err());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct FsPath {
    components: Vec<String>,
}

impl FsPath {
    /// The root path `/`.
    pub fn root() -> Self {
        FsPath { components: Vec::new() }
    }

    /// Parses and validates an absolute path.
    ///
    /// # Errors
    ///
    /// Returns [`FsError::Invalid`] for relative paths, empty components,
    /// `.`/`..`, or components longer than 255 bytes.
    pub fn parse(s: &str) -> Result<Self, FsError> {
        if !s.starts_with('/') {
            return Err(FsError::Invalid);
        }
        let mut components = Vec::new();
        for part in s.split('/').skip(1) {
            if part.is_empty() {
                // Allow a single trailing slash ("/a/b/" == "/a/b") and "/".
                continue;
            }
            if part == "." || part == ".." || part.len() > 255 {
                return Err(FsError::Invalid);
            }
            components.push(part.to_string());
        }
        Ok(FsPath { components })
    }

    /// Path components, root-first.
    pub fn components(&self) -> &[String] {
        &self.components
    }

    /// Number of components (0 for root).
    pub fn depth(&self) -> usize {
        self.components.len()
    }

    /// Whether this is the root path.
    pub fn is_root(&self) -> bool {
        self.components.is_empty()
    }

    /// Final component, or `None` for root.
    pub fn name(&self) -> Option<&str> {
        self.components.last().map(String::as_str)
    }

    /// Parent path, or `None` for root.
    pub fn parent(&self) -> Option<FsPath> {
        if self.components.is_empty() {
            None
        } else {
            Some(FsPath { components: self.components[..self.components.len() - 1].to_vec() })
        }
    }

    /// Appends a component.
    ///
    /// # Panics
    ///
    /// Panics if `name` contains `/` or is empty (callers validate first).
    pub fn join(&self, name: &str) -> FsPath {
        assert!(!name.is_empty() && !name.contains('/'), "invalid component {name:?}");
        let mut components = self.components.clone();
        components.push(name.to_string());
        FsPath { components }
    }

    /// Whether `self` is an ancestor of (or equal to) `other`.
    pub fn is_prefix_of(&self, other: &FsPath) -> bool {
        other.components.len() >= self.components.len()
            && other.components[..self.components.len()] == self.components[..]
    }
}

impl std::fmt::Display for FsPath {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.components.is_empty() {
            return f.write_str("/");
        }
        for c in &self.components {
            write!(f, "/{c}")?;
        }
        Ok(())
    }
}

impl std::str::FromStr for FsPath {
    type Err = FsError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        FsPath::parse(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_and_normalizes() {
        assert_eq!(FsPath::parse("/").unwrap(), FsPath::root());
        assert_eq!(FsPath::parse("/a/b/").unwrap(), FsPath::parse("/a/b").unwrap());
        assert_eq!(FsPath::parse("/a/b").unwrap().depth(), 2);
    }

    #[test]
    fn rejects_bad_paths() {
        for bad in ["", "a/b", "/a/./b", "/a/../b"] {
            assert_eq!(FsPath::parse(bad), Err(FsError::Invalid), "{bad:?}");
        }
        let long = format!("/{}", "x".repeat(256));
        assert_eq!(FsPath::parse(&long), Err(FsError::Invalid));
    }

    #[test]
    fn family_relations() {
        let p = FsPath::parse("/a/b/c").unwrap();
        assert_eq!(p.name(), Some("c"));
        assert_eq!(p.parent().unwrap().to_string(), "/a/b");
        assert!(FsPath::parse("/a").unwrap().is_prefix_of(&p));
        assert!(!FsPath::parse("/a/x").unwrap().is_prefix_of(&p));
        assert!(FsPath::root().is_prefix_of(&p));
        assert_eq!(FsPath::root().parent(), None);
    }

    #[test]
    fn display_round_trips() {
        for s in ["/", "/a", "/a/b/c"] {
            assert_eq!(FsPath::parse(s).unwrap().to_string(), s);
        }
    }

    #[test]
    fn join_extends() {
        let p = FsPath::root().join("a").join("b");
        assert_eq!(p.to_string(), "/a/b");
    }
}
