//! File-system deployment configuration and namenode cost calibration.

use ndb::ClusterConfig;
use simnet::{AzId, RetryPolicy, SimDuration};

/// Where large-file blocks live.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockBackend {
    /// The HopsFS block storage layer: blocks replicated across block
    /// datanodes (§IV-C).
    Datanodes,
    /// The paper's §VII future work: blocks stored as objects in a regional
    /// cloud object store (AZ-local endpoints, provider-internal
    /// replication, request fees — see [`crate::cloudstore`]).
    CloudStore,
}

/// Block-placement policies for the block storage layer (§IV-C).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlacementPolicy {
    /// Uniformly random distinct datanodes (no topology knowledge).
    Random,
    /// The HDFS rack-aware default with AZs configured as racks (the paper's
    /// approach): first replica local to the writer, second on a different
    /// AZ, third on the same AZ as the second but a different node.
    RackAwareAzAsRack,
    /// Strict AZ spread: one replica per AZ while AZs remain.
    AzSpread,
}

/// Namenode CPU calibration. One op costs
/// `op_base + per_component * depth + op_finish` on the worker pool, which
/// together with the pool size bounds per-NN throughput (§V-D2 shows NNs use
/// all their CPUs thanks to granular locking).
#[derive(Debug, Clone, PartialEq)]
pub struct NnCostModel {
    /// Worker threads per namenode (the paper's VMs had 32 vCPUs).
    pub worker_threads: usize,
    /// Fixed cost on receiving an operation (parse, plan, lock phase).
    pub op_base: SimDuration,
    /// Cost per resolved path component.
    pub per_component: SimDuration,
    /// Fixed cost to finalize and serialize the response.
    pub op_finish: SimDuration,
    /// Extra cost per directory-listing entry returned.
    pub per_list_entry: SimDuration,
}

impl Default for NnCostModel {
    fn default() -> Self {
        NnCostModel {
            worker_threads: 32,
            op_base: SimDuration::from_micros(780),
            per_component: SimDuration::from_micros(35),
            op_finish: SimDuration::from_micros(330),
            per_list_entry: SimDuration::from_nanos(2_500),
        }
    }
}

impl NnCostModel {
    /// Proportionally shrunk worker pool for scaled-down simulations.
    pub fn scaled_down(&self, factor: usize) -> Self {
        let mut c = self.clone();
        c.worker_threads = (c.worker_threads / factor.max(1)).max(1);
        c
    }
}

/// Full HopsFS / HopsFS-CL deployment description.
#[derive(Debug, Clone)]
pub struct FsConfig {
    /// Metadata-storage (NDB) cluster configuration.
    pub ndb: ClusterConfig,
    /// AZs the deployment spans (placement for non-AZ-aware processes is
    /// round-robin over these).
    pub azs: Vec<AzId>,
    /// Number of namenodes.
    pub nn_count: usize,
    /// Whether namenodes and clients are AZ-aware (HopsFS-CL): namenodes get
    /// `locationDomainId`s, every table is Read Backup enabled, clients
    /// prefer AZ-local namenodes, and block placement spreads across AZs.
    pub az_aware: bool,
    /// Block replication factor (default 3).
    pub block_replication: u8,
    /// Small-file threshold: files strictly smaller stay inline in NDB.
    pub small_file_max: u64,
    /// Block size for large files.
    pub block_size: u64,
    /// Block placement policy (datanode backend only).
    pub placement: PlacementPolicy,
    /// Where large-file blocks are stored.
    pub block_backend: BlockBackend,
    /// Overrides whether tables are Read Backup enabled (None = follow
    /// `az_aware`); used by the ablation experiments and Figure 14.
    pub read_backup_override: Option<bool>,
    /// Strict mode: re-read (validate) every cache-resolved ancestor inside
    /// the transaction. HopsFS proper trusts its inode-hint cache for
    /// ancestor directories and only lock-reads the parent and target
    /// (FAST'17), so this defaults to off; turning it on trades a hot root
    /// partition for rename-vs-resolve linearizability.
    pub validate_ancestors: bool,
    /// Namenode CPU calibration.
    pub nn_costs: NnCostModel,
    /// Leader-election round period (paper: 2 s).
    pub election_period: SimDuration,
    /// Election rounds a namenode may miss before being considered dead.
    pub election_misses: u32,
    /// Max op attempts before responding `Busy` (retry with backoff provides
    /// backpressure to NDB, §II-B2).
    pub max_op_attempts: u32,
    /// Backoff policy for namenode-side op retries after NDB aborts
    /// (deadlocks, transient node failures). The budget comes from
    /// [`FsConfig::max_op_attempts`], not from the policy.
    pub op_retry: RetryPolicy,
    /// How long since the last heartbeat a block datanode is still counted
    /// alive when choosing replica placements and re-replication targets.
    pub dn_heartbeat_window: SimDuration,
    /// Max write ops per transaction during the batched phase of a subtree
    /// operation (the STO protocol, FAST'17 §3.6). A 10k-inode delete runs
    /// as ⌈rows / batch⌉ bounded transactions instead of one huge one.
    pub subtree_batch_size: usize,
    /// Overload control at the namenode front door (admission, shedding,
    /// priority classes). Off by default: existing benches measure the
    /// unprotected system; overload experiments flip `enabled`.
    pub admission: AdmissionConfig,
    /// Leased client-side metadata caching (see [`crate::lease`]). Off by
    /// default: every existing experiment measures the server-side-only
    /// system; the client-cache experiments flip `enabled`.
    pub lease: LeaseConfig,
    /// Elastic namenode-pool serving (see [`crate::elastic`]). Off by
    /// default: every existing experiment runs the static pool; the
    /// elasticity experiments flip `enabled`.
    pub elastic: ElasticConfig,
}

/// Namenode pool autoscaling knobs (see [`crate::elastic`] for the
/// controller).
///
/// The controller watches the pool-mean composite overload signal (the same
/// worker-backlog + NDB-hint signal the admission gates use) and keeps it
/// inside the `[scale_down_threshold, scale_up_threshold]` band by
/// activating parked namenodes or draining serving ones. Spread the two
/// thresholds far apart and hold `cooldown` between actions — that is the
/// hysteresis that keeps a noisy signal from flapping the pool.
#[derive(Debug, Clone, Copy)]
pub struct ElasticConfig {
    /// Master switch. When off, all `nn_count` namenodes serve from t=0 and
    /// the wire protocol is exactly the static system.
    pub enabled: bool,
    /// Namenodes serving at t=0; indices at and above this park (boot idle,
    /// own no election row, shed every request with a redirect).
    pub initial_active: usize,
    /// Floor on the serving count: the controller never drains below this.
    pub min_active: usize,
    /// Cold-start cost: a parked namenode takes this long from `NnActivate`
    /// to serving its first request (process launch, NDB session setup).
    pub boot_delay: SimDuration,
    /// Cache-warm penalty: the first `warm_ops` admitted operations on a
    /// freshly activated namenode pay `warm_cost_pct` extra base cost (its
    /// inode-hint cache is empty, so early ops walk more of the path).
    pub warm_ops: u64,
    /// Extra base-cost percentage while warming (150 = 2.5× `op_base`).
    pub warm_cost_pct: u32,
    /// Pool-mean composite signal above which one namenode is activated.
    pub scale_up_threshold: SimDuration,
    /// Pool-mean composite signal below which one namenode is drained.
    pub scale_down_threshold: SimDuration,
    /// Controller evaluation period.
    pub eval_period: SimDuration,
    /// Minimum gap between scaling actions (hysteresis).
    pub cooldown: SimDuration,
    /// How long the controller waits for `NnDrainDone` before force-parking
    /// a draining namenode (covers a namenode crash mid-drain; the node is
    /// already out of the membership, so clients have moved on).
    pub drain_timeout: SimDuration,
    /// Minimum time a draining namenode lingers before parking, even when
    /// idle: the membership update removing it propagates to clients lazily
    /// (piggybacked on responses), so requests routed under the old epoch
    /// may still be in the air when the drain order arrives. Must be below
    /// `drain_timeout`.
    pub drain_grace: SimDuration,
}

impl Default for ElasticConfig {
    fn default() -> Self {
        ElasticConfig {
            enabled: false,
            initial_active: 1,
            min_active: 1,
            boot_delay: SimDuration::from_secs(2),
            warm_ops: 2_000,
            warm_cost_pct: 150,
            scale_up_threshold: SimDuration::from_millis(60),
            scale_down_threshold: SimDuration::from_millis(5),
            eval_period: SimDuration::from_millis(500),
            cooldown: SimDuration::from_secs(4),
            drain_timeout: SimDuration::from_secs(3),
            drain_grace: SimDuration::from_millis(200),
        }
    }
}

/// Client-side lease-cache knobs (see [`crate::lease`] for the protocol).
///
/// Leases are time-bounded: a client may serve a read locally only while
/// `now < expiry`, and a namenode that cannot reach a lease holder (crash,
/// partition) need only out-wait `ttl` before acknowledging the conflicting
/// mutation. `ttl` therefore bounds both staleness *and* mutation latency
/// under failures — the classic lease trade-off.
#[derive(Debug, Clone, Copy)]
pub struct LeaseConfig {
    /// Master switch. When off, namenodes grant nothing and clients cache
    /// nothing: the wire protocol and all behavior are exactly the
    /// pre-lease system.
    pub enabled: bool,
    /// Lease duration from grant (and from each successful renewal).
    pub ttl: SimDuration,
    /// How close to expiry an entry must be before the background refresh
    /// tick considers renewing it.
    pub refresh_margin: SimDuration,
    /// Client cache capacity (entries). Oldest-expiry entries are evicted
    /// first when full.
    pub max_entries: usize,
    /// Extra slack added to `ttl` when a revoke round waits out unreachable
    /// holders or namenodes (covers detection and delivery skew).
    pub revoke_margin: SimDuration,
}

impl Default for LeaseConfig {
    fn default() -> Self {
        LeaseConfig {
            enabled: false,
            ttl: SimDuration::from_secs(10),
            refresh_margin: SimDuration::from_secs(2),
            max_entries: 4096,
            revoke_margin: SimDuration::from_millis(200),
        }
    }
}

/// Namenode admission-control knobs (the cross-layer overload-control
/// subsystem). One [`simnet::Gate`] per priority class; the load signal is
/// the worker-lane queue delay plus a weighted share of the latest NDB
/// TC-queue-delay hint piggybacked on transaction replies.
///
/// Priority classes, highest to lowest:
/// - **interactive** — ordinary client ops (stat/create/read/...);
/// - **batch** — subtree-operation (STO) phase batches;
/// - **maintenance** — re-replication scans after datanode loss.
///
/// Lower classes get *lower* thresholds, so under pressure maintenance
/// yields first, then batches, and interactive traffic sheds only when the
/// namenode is truly saturated.
#[derive(Debug, Clone, Copy)]
pub struct AdmissionConfig {
    /// Master switch. When off, every request is admitted unconditionally
    /// (the pre-overload-control behavior) — but `sto_busy_retry_after`
    /// still applies, since honoring the server's contention hint is a
    /// correctness-of-backoff fix, not an overload policy.
    pub enabled: bool,
    /// Queue-delay threshold above which interactive ops shed.
    pub interactive_threshold: SimDuration,
    /// Queue-delay threshold above which STO batches defer.
    pub batch_threshold: SimDuration,
    /// Queue-delay threshold above which re-replication pumping pauses.
    pub maintenance_threshold: SimDuration,
    /// Trickle rate per class: requests/second still admitted above the
    /// threshold, so the gate keeps probing for recovery instead of
    /// flat-lining (see [`simnet::Gate`]).
    pub trickle_per_sec: u64,
    /// Floor on the `retry_after` hint returned with a shed.
    pub retry_floor: SimDuration,
    /// Weight applied to the NDB TC-queue-delay hint when folding it into
    /// the namenode's own load signal, in percent (100 = count NDB backlog
    /// at par with local worker backlog).
    pub ndb_signal_pct: u32,
    /// Retry-after hint attached when the STO lock manager rejects an op
    /// with `Busy` (`sto_locked` paths). Routed through
    /// [`RetryPolicy::delay_after_hint`] so colliding ops spread out behind
    /// the lock holder instead of hammering the generic 4–32 ms curve.
    pub sto_busy_retry_after: SimDuration,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig {
            enabled: false,
            interactive_threshold: SimDuration::from_millis(200),
            batch_threshold: SimDuration::from_millis(50),
            maintenance_threshold: SimDuration::from_millis(20),
            trickle_per_sec: 4,
            retry_floor: SimDuration::from_millis(100),
            ndb_signal_pct: 50,
            sto_busy_retry_after: SimDuration::from_millis(12),
        }
    }
}

impl FsConfig {
    /// Whether the schema's tables are registered Read Backup enabled.
    pub fn read_backup_tables(&self) -> bool {
        self.read_backup_override.unwrap_or(self.az_aware)
    }

    /// The paper's deployment tuples: `hopsfs(metadata_replication, az_count)`
    /// is vanilla HopsFS, non-AZ-aware, on `ndb_nodes` datanodes.
    ///
    /// # Panics
    ///
    /// Panics if `az_count` is not 1 or 3, or the datanode count is not a
    /// multiple of the replication factor.
    pub fn hopsfs(ndb_nodes: usize, metadata_replication: usize, az_count: usize, nn_count: usize) -> Self {
        let azs: Vec<AzId> = match az_count {
            1 => vec![AzId(1)], // us-west1-b, where the paper ran 1-AZ setups
            3 => vec![AzId(0), AzId(1), AzId(2)],
            _ => panic!("the paper deploys over 1 or 3 AZs"),
        };
        let ndb = ClusterConfig::vanilla(ndb_nodes, metadata_replication);
        FsConfig {
            ndb,
            azs,
            nn_count,
            az_aware: false,
            block_replication: 3,
            small_file_max: 128 * 1024,
            block_size: 128 << 20,
            placement: PlacementPolicy::Random,
            block_backend: BlockBackend::Datanodes,
            read_backup_override: None,
            validate_ancestors: false,
            nn_costs: NnCostModel::default(),
            election_period: SimDuration::from_secs(2),
            election_misses: 2,
            max_op_attempts: 8,
            op_retry: RetryPolicy::new(SimDuration::from_millis(4), SimDuration::from_millis(32))
                .with_jitter(0.0),
            dn_heartbeat_window: SimDuration::from_millis(1500),
            subtree_batch_size: 256,
            admission: AdmissionConfig::default(),
            lease: LeaseConfig::default(),
            elastic: ElasticConfig::default(),
        }
    }

    /// HopsFS-CL: AZ-aware at all three layers, always across 3 AZs.
    pub fn hopsfs_cl(ndb_nodes: usize, metadata_replication: usize, nn_count: usize) -> Self {
        let azs = vec![AzId(0), AzId(1), AzId(2)];
        let ndb = ClusterConfig::az_aware(ndb_nodes, metadata_replication, &azs);
        let mut c = Self::hopsfs(ndb_nodes, metadata_replication, 3, nn_count);
        c.ndb = ndb;
        c.az_aware = true;
        c.placement = PlacementPolicy::RackAwareAzAsRack;
        c
    }

    /// Applies a uniform scale-down factor to the CPU-heavy knobs (thread
    /// pools), for fast simulations; reported throughput should be scaled
    /// back up by the same factor.
    pub fn scaled_down(mut self, factor: usize) -> Self {
        self.ndb.threads = self.ndb.threads.scaled_down(factor);
        self.nn_costs = self.nn_costs.scaled_down(factor);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_tuples() {
        let h21 = FsConfig::hopsfs(12, 2, 1, 60);
        assert_eq!(h21.azs.len(), 1);
        assert!(!h21.az_aware);
        assert_eq!(h21.ndb.replication_factor, 2);

        let cl33 = FsConfig::hopsfs_cl(12, 3, 60);
        assert!(cl33.az_aware);
        assert_eq!(cl33.azs.len(), 3);
        assert_eq!(cl33.ndb.replication_factor, 3);
        assert!(cl33.ndb.datanodes.iter().all(|d| d.location_domain_id.is_some()));
        assert_eq!(cl33.placement, PlacementPolicy::RackAwareAzAsRack);
    }

    #[test]
    fn scaling_shrinks_pools() {
        let c = FsConfig::hopsfs(12, 2, 1, 4).scaled_down(4);
        assert_eq!(c.nn_costs.worker_threads, 8);
        assert_eq!(c.ndb.threads.ldm, 3);
    }

    #[test]
    #[should_panic(expected = "1 or 3")]
    fn rejects_two_azs() {
        let _ = FsConfig::hopsfs(12, 2, 2, 1);
    }
}
