//! The normalized metadata schema HopsFS stores in NDB, and the row codecs.
//!
//! Tables (primary keys chosen exactly like HopsFS so that transactions are
//! distribution-aware):
//!
//! | table        | partition key | suffix            | row                 |
//! |--------------|---------------|-------------------|---------------------|
//! | `inodes`     | parent inode  | entry name        | [`InodeRecord`]     |
//! | `blocks`     | file inode    | block index       | [`BlockRecord`]     |
//! | `replicas`   | file inode    | block id ∥ dn idx | [`ReplicaRecord`]   |
//! | `small_files`| file inode    | (empty)           | inline file bytes   |
//! | `dn_replicas`| datanode idx  | block id          | file inode (for re-replication) |
//! | `election`   | 0 (fully replicated) | namenode idx | [`NnRecord`]     |
//! | `sequences`  | 0 (fully replicated) | sequence name | next value       |
//! | `sto_locks`  | 0 (fully replicated) | subtree root id | [`StoRecord`]  |
//!
//! Partitioning inodes by **parent id** makes directory listings single-
//! partition scans, and blocks/replicas by **file inode** makes file reads
//! single-partition — the application-defined-partitioning design HopsFS
//! inherits from [Niazi et al., FAST'17].

use crate::types::{InodeAttrs, InodeId, Perm};
use bytes::Bytes;
use ndb::codec::{Dec, Enc};
use ndb::{RowKey, Schema, TableId, TableOptions};

/// Table ids of the HopsFS schema within the NDB schema.
#[derive(Debug, Clone, Copy)]
pub struct FsSchema {
    /// Directory entries / inode attributes.
    pub inodes: TableId,
    /// Block metadata per file.
    pub blocks: TableId,
    /// Replica locations per block.
    pub replicas: TableId,
    /// Inline data of small files (< 128 KB), stored with the metadata.
    pub small_files: TableId,
    /// Reverse index datanode → blocks (drives re-replication).
    pub dn_replicas: TableId,
    /// Leader-election rows, one per namenode.
    pub election: TableId,
    /// Id-allocation sequences.
    pub sequences: TableId,
    /// On-going subtree operations, one row per STO-locked subtree root.
    /// Fully replicated so orphan detection is a single-partition scan
    /// (the HopsFS "on-going subtree ops" table, FAST'17 §3.6).
    pub sto_locks: TableId,
}

impl FsSchema {
    /// Registers the HopsFS tables in `schema`.
    ///
    /// With `az_aware` (HopsFS-CL) every table is Read Backup enabled
    /// (§IV-A5: "in HopsFS-CL, we ensure that all the tables are Read Backup
    /// enabled"); the election and sequence tables are additionally fully
    /// replicated (small, hot, read-mostly).
    pub fn register(schema: &mut Schema, az_aware: bool) -> FsSchema {
        let plain = TableOptions { read_backup: az_aware, fully_replicated: false };
        let full = TableOptions { read_backup: az_aware, fully_replicated: true };
        FsSchema {
            inodes: schema.add_table("inodes", plain),
            blocks: schema.add_table("blocks", plain),
            replicas: schema.add_table("replicas", plain),
            small_files: schema.add_table("small_files", plain),
            dn_replicas: schema.add_table("dn_replicas", plain),
            election: schema.add_table("election", full),
            sequences: schema.add_table("sequences", full),
            sto_locks: schema.add_table("sto_locks", full),
        }
    }

    /// Row key of a directory entry.
    pub fn inode_key(parent: InodeId, name: &str) -> RowKey {
        RowKey::with_suffix(parent.0, name.as_bytes().to_vec())
    }

    /// Row key of a block row.
    pub fn block_key(file: InodeId, index: u64) -> RowKey {
        RowKey::with_u64(file.0, index)
    }

    /// Row key of a replica row.
    pub fn replica_key(file: InodeId, block: u64, dn_idx: u32) -> RowKey {
        let mut suffix = Vec::with_capacity(12);
        suffix.extend_from_slice(&block.to_le_bytes());
        suffix.extend_from_slice(&dn_idx.to_le_bytes());
        RowKey::with_suffix(file.0, suffix)
    }

    /// Row key of a small file's inline data.
    pub fn small_file_key(file: InodeId) -> RowKey {
        RowKey::simple(file.0)
    }

    /// Row key of the datanode→block reverse-index row.
    pub fn dn_replica_key(dn_idx: u32, block: u64) -> RowKey {
        RowKey::with_u64(dn_idx as u64, block)
    }

    /// Row key of a namenode's election row.
    pub fn election_key(nn_idx: u32) -> RowKey {
        RowKey::with_u64(0, nn_idx as u64)
    }

    /// Row key of a named id sequence.
    pub fn sequence_key(name: &str) -> RowKey {
        RowKey::with_suffix(0, name.as_bytes().to_vec())
    }

    /// Row key of a subtree operation's lock row.
    pub fn sto_key(root: InodeId) -> RowKey {
        RowKey::with_u64(0, root.0)
    }
}

/// The inode row: attributes of one file or directory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InodeRecord {
    /// Inode id (directory entries point at it; children key under it).
    pub id: u64,
    /// Directory flag.
    pub is_dir: bool,
    /// Permission bits.
    pub perm: u16,
    /// Owner id.
    pub owner: u32,
    /// Group id.
    pub group: u32,
    /// File size in bytes.
    pub size: u64,
    /// Modification time (virtual ns).
    pub mtime: u64,
    /// Block replication factor.
    pub replication: u8,
    /// Inline (small-file) data length; 0 when block-backed or directory.
    pub inline_len: u32,
    /// Number of blocks.
    pub block_count: u32,
    /// Subtree-operation lock flag: a recursive delete/rename is in flight
    /// on this directory; concurrent ops walking through it must back off.
    pub sto_locked: bool,
}

impl InodeRecord {
    /// A fresh directory record.
    pub fn dir(id: InodeId, now: u64) -> Self {
        InodeRecord {
            id: id.0,
            is_dir: true,
            perm: 0o755,
            owner: 0,
            group: 0,
            size: 0,
            mtime: now,
            replication: 0,
            inline_len: 0,
            block_count: 0,
            sto_locked: false,
        }
    }

    /// A fresh file record.
    pub fn file(id: InodeId, now: u64, replication: u8) -> Self {
        InodeRecord {
            id: id.0,
            is_dir: false,
            perm: 0o644,
            owner: 0,
            group: 0,
            size: 0,
            mtime: now,
            replication,
            inline_len: 0,
            block_count: 0,
            sto_locked: false,
        }
    }

    /// Encodes to a row payload.
    pub fn encode(&self) -> Bytes {
        let mut e = Enc::new();
        e.u64(self.id)
            .bool(self.is_dir)
            .u16(self.perm)
            .u32(self.owner)
            .u32(self.group)
            .u64(self.size)
            .u64(self.mtime)
            .u8(self.replication)
            .u32(self.inline_len)
            .u32(self.block_count)
            .bool(self.sto_locked);
        e.finish()
    }

    /// Decodes from a row payload.
    ///
    /// # Panics
    ///
    /// Panics on malformed rows (only this module produces them).
    pub fn decode(data: &[u8]) -> Self {
        let mut d = Dec::new(data);
        InodeRecord {
            id: d.u64(),
            is_dir: d.bool(),
            perm: d.u16(),
            owner: d.u32(),
            group: d.u32(),
            size: d.u64(),
            mtime: d.u64(),
            replication: d.u8(),
            inline_len: d.u32(),
            block_count: d.u32(),
            sto_locked: d.bool(),
        }
    }

    /// Converts to client-facing attributes.
    pub fn attrs(&self) -> InodeAttrs {
        InodeAttrs {
            id: InodeId(self.id),
            is_dir: self.is_dir,
            perm: Perm(self.perm),
            owner: self.owner,
            group: self.group,
            size: self.size,
            mtime: self.mtime,
            replication: self.replication,
            inline_len: self.inline_len,
        }
    }
}

/// The block row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockRecord {
    /// Globally unique block id.
    pub block_id: u64,
    /// Length in bytes.
    pub len: u64,
    /// Generation stamp.
    pub gen: u64,
}

impl BlockRecord {
    /// Encodes to a row payload.
    pub fn encode(&self) -> Bytes {
        let mut e = Enc::new();
        e.u64(self.block_id).u64(self.len).u64(self.gen);
        e.finish()
    }

    /// Decodes from a row payload.
    pub fn decode(data: &[u8]) -> Self {
        let mut d = Dec::new(data);
        BlockRecord { block_id: d.u64(), len: d.u64(), gen: d.u64() }
    }
}

/// The replica row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplicaRecord {
    /// Block id this replica belongs to.
    pub block_id: u64,
    /// Block-storage datanode index holding it.
    pub dn_idx: u32,
}

impl ReplicaRecord {
    /// Encodes to a row payload.
    pub fn encode(&self) -> Bytes {
        let mut e = Enc::new();
        e.u64(self.block_id).u32(self.dn_idx);
        e.finish()
    }

    /// Decodes from a row payload.
    pub fn decode(data: &[u8]) -> Self {
        let mut d = Dec::new(data);
        ReplicaRecord { block_id: d.u64(), dn_idx: d.u32() }
    }
}

/// A namenode's leader-election row (Niazi et al., "Leader election using
/// NewSQL database systems", extended with the paper's `locationDomainId`
/// reporting, §IV-B3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NnRecord {
    /// Namenode index.
    pub nn_idx: u32,
    /// Monotonic liveness counter, bumped every election round.
    pub counter: u64,
    /// The namenode's `locationDomainId` (255 = unset/vanilla).
    pub location_domain: u8,
    /// Simulation node id (so clients can address it).
    pub node_id: u32,
}

impl NnRecord {
    /// Encodes to a row payload.
    pub fn encode(&self) -> Bytes {
        let mut e = Enc::new();
        e.u32(self.nn_idx).u64(self.counter).u8(self.location_domain).u32(self.node_id);
        e.finish()
    }

    /// Decodes from a row payload.
    pub fn decode(data: &[u8]) -> Self {
        let mut d = Dec::new(data);
        NnRecord { nn_idx: d.u32(), counter: d.u64(), location_domain: d.u8(), node_id: d.u32() }
    }
}

/// An on-going subtree operation row. Written in the same small transaction
/// that sets the root inode's [`InodeRecord::sto_locked`] flag, and deleted
/// in the transaction that clears it. Carries the root's `(parent, name)`
/// entry key so a *different* namenode can find and rewrite the locked inode
/// row when cleaning up after the owner crashed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoRecord {
    /// Subtree root inode id.
    pub inode: u64,
    /// Parent directory of the subtree root.
    pub parent: u64,
    /// Entry name of the subtree root under `parent`.
    pub name: String,
    /// Namenode index that owns the operation.
    pub owner_nn: u32,
}

impl StoRecord {
    /// Encodes to a row payload.
    pub fn encode(&self) -> Bytes {
        let mut e = Enc::new();
        e.u64(self.inode).u64(self.parent).str(&self.name).u32(self.owner_nn);
        e.finish()
    }

    /// Decodes from a row payload.
    pub fn decode(data: &[u8]) -> Self {
        let mut d = Dec::new(data);
        StoRecord { inode: d.u64(), parent: d.u64(), name: d.str(), owner_nn: d.u32() }
    }
}

/// Encodes a sequence row (next available value).
pub fn encode_sequence(next: u64) -> Bytes {
    let mut e = Enc::new();
    e.u64(next);
    e.finish()
}

/// Decodes a sequence row.
pub fn decode_sequence(data: &[u8]) -> u64 {
    Dec::new(data).u64()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inode_record_round_trip() {
        let r = InodeRecord {
            id: 42,
            is_dir: false,
            perm: 0o640,
            owner: 7,
            group: 8,
            size: 1 << 30,
            mtime: 123456789,
            replication: 3,
            inline_len: 1000,
            block_count: 9,
            sto_locked: false,
        };
        assert_eq!(InodeRecord::decode(&r.encode()), r);
        let locked = InodeRecord { sto_locked: true, ..r };
        assert_eq!(InodeRecord::decode(&locked.encode()), locked);
    }

    #[test]
    fn sto_record_round_trip() {
        let s = StoRecord { inode: 77, parent: 3, name: "victim".into(), owner_nn: 4 };
        assert_eq!(StoRecord::decode(&s.encode()), s);
    }

    #[test]
    fn block_and_replica_round_trip() {
        let b = BlockRecord { block_id: 5, len: 128 << 20, gen: 2 };
        assert_eq!(BlockRecord::decode(&b.encode()), b);
        let r = ReplicaRecord { block_id: 5, dn_idx: 3 };
        assert_eq!(ReplicaRecord::decode(&r.encode()), r);
    }

    #[test]
    fn nn_record_round_trip() {
        let n = NnRecord { nn_idx: 2, counter: 99, location_domain: 1, node_id: 77 };
        assert_eq!(NnRecord::decode(&n.encode()), n);
    }

    #[test]
    fn sequence_round_trip() {
        assert_eq!(decode_sequence(&encode_sequence(12345)), 12345);
    }

    #[test]
    fn keys_partition_by_the_right_column() {
        // Directory entries partition by parent: a listing is one partition.
        let k1 = FsSchema::inode_key(InodeId(10), "a");
        let k2 = FsSchema::inode_key(InodeId(10), "b");
        assert_eq!(k1.pk, k2.pk);
        // Blocks and replicas partition by file inode.
        assert_eq!(FsSchema::block_key(InodeId(5), 0).pk, FsSchema::replica_key(InodeId(5), 9, 1).pk);
    }

    #[test]
    fn register_sets_read_backup_only_when_az_aware() {
        for &aware in &[true, false] {
            let mut s = Schema::new();
            let fs = FsSchema::register(&mut s, aware);
            assert_eq!(s.table(fs.inodes).options.read_backup, aware);
            assert!(s.table(fs.election).options.fully_replicated);
            assert!(s.table(fs.sequences).options.fully_replicated);
            assert!(s.table(fs.sto_locks).options.fully_replicated);
        }
    }

    #[test]
    fn attrs_conversion() {
        let r = InodeRecord::dir(InodeId(3), 9);
        let a = r.attrs();
        assert!(a.is_dir);
        assert_eq!(a.id, InodeId(3));
        assert_eq!(a.mtime, 9);
    }
}
