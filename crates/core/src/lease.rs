//! Leased client-side metadata caching with namenode push invalidation.
//!
//! The workload is ~95% reads over a skewed namespace, yet in base HopsFS
//! every read pays a full client→NN→NDB round trip. This module takes the
//! read hot path off the metadata layers entirely while keeping staleness
//! machine-checkably bounded:
//!
//! - **Grants.** A successful read (`stat`/`open`/`ls`) carries back a
//!   [`LeaseGrant`]: the resolved ancestor-id chain, a staleness *anchor*
//!   (the time of the op's first database read — every row the result was
//!   built from is at least this fresh) and an expiry of `anchor + ttl`.
//!   The granting namenode registers the client as a holder under **every**
//!   id in the chain, so an invalidation of any ancestor finds all holders
//!   below it.
//! - **Local serving.** The client caches the result keyed by
//!   `(path, kind)` — the chain gives each entry the same
//!   `(parent id, name)` identity the NN-side [`crate::HintCache`] uses —
//!   and serves repeat reads locally with zero NN round trips while
//!   `now < expiry`.
//! - **Push invalidation.** A conflicting mutation completes commit-then-
//!   revoke-then-ack: after its transaction commits, the originating
//!   namenode opens a *revoke round* ([`LeaseRevokeReq`] to every
//!   namenode), each namenode pushes [`LeaseInvalidate`] to its conflicting
//!   holders and replies [`LeaseRevokeAck`] once every pushed client
//!   acknowledged or its lease expired, and only then is the mutation
//!   acknowledged to its issuer. Recursive delete/rename rides the subtree
//!   operation (STO) protocol: because holders are registered under every
//!   chain id, invalidating the subtree *root* id reaches every holder
//!   below it in one message per holder.
//! - **Failure fences.** A restarted namenode lost its holder table, so it
//!   withholds revoke acks until `restart + ttl` (every lease it granted
//!   before crashing has expired by then). A dead namenode is waited out
//!   the same way: `detection + ttl` after it drops from the active set.
//!   A partitioned *client* is waited out per holder: the granting NN acks
//!   once the holder's lease expires. Staleness is therefore bounded by
//!   `ttl` in every failure mode, at the cost of mutation latency under
//!   failures — the classic lease trade-off.
//! - **Reordering guards.** Pushes can overtake in-flight grants on the
//!   size-dependent wire, so clients keep short-lived *tombstones*: a grant
//!   whose anchor does not postdate the conflicting commit is refused.
//!   Namenodes keep the mirror-image *fences* and refuse to grant from
//!   reads that may predate a known conflicting commit.
//!
//! Inode ids come from a durable global sequence and are never reused, so
//! id-based invalidation is also the *generation guard*: a lease granted on
//! id `X` can never validate a read of a same-named successor file, whose
//! chain ends in a fresh id `Y` (see the create-after-delete regression
//! tests in `crates/core/tests/fs.rs`).
//!
//! Everything here uses `BTreeMap`/`BTreeSet`: iteration order feeds
//! message emission and eviction, and same-seed replay must be
//! bit-identical.

use crate::types::FsOk;
use simnet::{SimDuration, SimTime};
use std::collections::{BTreeMap, BTreeSet};

/// Cache-entry kind index: `stat` results.
pub const KIND_STAT: u8 = 0;
/// Cache-entry kind index: `open` (block-location) results.
pub const KIND_OPEN: u8 = 1;
/// Cache-entry kind index: `ls` (listing) results.
pub const KIND_LIST: u8 = 2;

// ---------------------------------------------------------------------------
// Wire protocol
// ---------------------------------------------------------------------------

/// Lease piggybacked on a successful read response.
#[derive(Debug, Clone)]
pub struct LeaseGrant {
    /// Resolved ancestor-id chain, root-first, ending in the target id.
    pub ids: Vec<u64>,
    /// The target inode id (last element of `ids`).
    pub target: u64,
    /// For `ls` results: the listed directory's id (registered separately —
    /// a listing is invalidated by *membership* changes of this directory,
    /// not only by mutations of entries the chain covers).
    pub listing_dir: Option<u64>,
    /// Staleness anchor: the time of the op's first database read. Every
    /// row in the result is at least this fresh.
    pub anchor: SimTime,
    /// `anchor + ttl`; the client may serve locally while `now < expiry`.
    pub expiry: SimTime,
    /// Node id of the granting namenode (lease renewals go back to it).
    pub granted_by: u32,
}

/// Conflict summary piggybacked on a successful mutation response: which
/// ids the mutation made stale. The issuing client applies it to its own
/// cache (self-invalidation) and reports the ack to the [`LeaseMonitor`].
#[derive(Debug, Clone)]
pub struct MutationNotice {
    /// Ids whose entries (and everything cached beneath them, via chain
    /// membership) are now stale.
    pub targets: Vec<u64>,
    /// Directory ids whose *listings* are now stale (membership changed).
    pub listing_dirs: Vec<u64>,
    /// When the originating namenode learned of the commit. Upper bound on
    /// the commit point: any read anchored at or before this may be stale.
    pub commit_time: SimTime,
    /// When the originating namenode *issued* the commit. Lower bound on
    /// the commit point: a read anchored at or before this is definitely
    /// pre-mutation. The monitor flags on this bound so that fresh reads
    /// racing the commit are never miscounted as violations.
    pub commit_floor: SimTime,
    /// False for ambiguous idempotent-retry acks (the original attempt's
    /// commit time is unknown, so the monitor cannot soundly flag them);
    /// invalidation still runs, only the coherence bookkeeping is skipped.
    pub monitored: bool,
}

/// Origin namenode → every namenode: revoke leases conflicting with a
/// committed mutation. Resent each sweep tick until acked; processing is
/// idempotent (a namenode with no matching unexpired holders acks
/// immediately).
#[derive(Debug, Clone)]
pub struct LeaseRevokeReq {
    /// Round id, unique per originating namenode.
    pub round: u64,
    /// Originating namenode index (for the ack).
    pub origin_idx: u32,
    /// Ids to chain-invalidate.
    pub targets: Vec<u64>,
    /// Directory ids whose listings to invalidate.
    pub listing_dirs: Vec<u64>,
    /// Commit upper bound; becomes the fence/tombstone time.
    pub commit_time: SimTime,
}

/// Namenode → origin namenode: all conflicting holders of this namenode
/// have acknowledged the invalidation or their leases expired.
#[derive(Debug, Clone, Copy)]
pub struct LeaseRevokeAck {
    /// Round id from the request.
    pub round: u64,
    /// Acking namenode index.
    pub nn_idx: u32,
}

/// Namenode → client: drop conflicting cache entries now.
#[derive(Debug, Clone)]
pub struct LeaseInvalidate {
    /// Revoke-round id (echoed in the ack).
    pub round: u64,
    /// Index of the namenode that originated the revoke round. Round ids
    /// are only unique per origin, so pushes (and their acks) carry both.
    pub origin_idx: u32,
    /// Ids to chain-invalidate.
    pub targets: Vec<u64>,
    /// Directory ids whose listings to invalidate.
    pub listing_dirs: Vec<u64>,
    /// Commit upper bound; the client tombstones these ids until past it.
    pub commit_time: SimTime,
}

/// Client → namenode: conflicting entries dropped.
#[derive(Debug, Clone, Copy)]
pub struct LeaseInvalidateAck {
    /// Round id from the push.
    pub round: u64,
    /// Origin namenode index from the push.
    pub origin_idx: u32,
}

/// One entry a client asks to renew.
#[derive(Debug, Clone)]
pub struct RenewItem {
    /// Cache key path (echoed in the ack).
    pub path: String,
    /// Cache key kind (echoed in the ack).
    pub kind: u8,
    /// The entry's id chain (all must still be registered).
    pub ids: Vec<u64>,
    /// The entry's listing registration, if any.
    pub listing_dir: Option<u64>,
    /// The entry's staleness anchor (checked against fences).
    pub anchor: SimTime,
}

/// Client → granting namenode: extend these leases. Handled as
/// *maintenance-class* work behind the admission gate — cache refresh never
/// competes with interactive ops; a shed renewal is silently dropped and
/// the entry simply expires.
#[derive(Debug, Clone)]
pub struct LeaseRenew {
    /// Entries to renew.
    pub items: Vec<RenewItem>,
}

/// Namenode → client: which renewals were granted, with new expiries.
#[derive(Debug, Clone)]
pub struct LeaseRenewAck {
    /// `(path, kind, new expiry)` per renewed entry; refused entries are
    /// simply absent and will expire.
    pub renewed: Vec<(String, u8, SimTime)>,
}

// ---------------------------------------------------------------------------
// Client-side cache
// ---------------------------------------------------------------------------

/// One leased cache entry.
#[derive(Debug, Clone)]
pub struct CacheEntry {
    /// The cached read result.
    pub value: FsOk,
    /// Resolved ancestor-id chain, root-first, ending in the target.
    pub chain: Vec<u64>,
    /// Target inode id.
    pub target: u64,
    /// Listing registration (Some for `ls` entries).
    pub listing_dir: Option<u64>,
    /// Staleness anchor inherited from the grant (renewals keep it: the
    /// *data* is still only as fresh as its first read).
    pub anchor: SimTime,
    /// Serve-until bound.
    pub expiry: SimTime,
    /// Granting namenode's node id (renewal routing).
    pub granted_by: u32,
}

/// Client-side leased metadata cache: `(path, kind)` → [`CacheEntry`],
/// bounded by evicting the earliest-expiring entry, with tombstones
/// guarding against pushes overtaking in-flight grants.
#[derive(Debug, Default)]
pub struct LeaseCache {
    entries: BTreeMap<(String, u8), CacheEntry>,
    /// Eviction order: earliest expiry first.
    by_expiry: BTreeSet<(SimTime, String, u8)>,
    /// id → latest conflicting commit upper bound; grants anchored at or
    /// before it are refused.
    tombstones: BTreeMap<u64, SimTime>,
    listing_tombstones: BTreeMap<u64, SimTime>,
    cap: usize,
}

impl LeaseCache {
    /// A cache bounded to `cap` entries.
    pub fn new(cap: usize) -> Self {
        LeaseCache { cap: cap.max(1), ..LeaseCache::default() }
    }

    /// Live entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no entry is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Looks up a valid entry; lazily drops it if the lease expired.
    /// Returns `None` on miss or expiry.
    pub fn get(&mut self, path: &str, kind: u8, now: SimTime) -> Option<&CacheEntry> {
        let expired = match self.entries.get(&(path.to_string(), kind)) {
            Some(e) => now >= e.expiry,
            None => return None,
        };
        if expired {
            self.remove(path, kind);
            return None;
        }
        self.entries.get(&(path.to_string(), kind))
    }

    /// Installs a granted entry. Refused (returning `false`) when a
    /// tombstone shows a conflicting mutation may postdate the grant's
    /// anchor — the late-arriving grant would reintroduce stale data.
    pub fn insert(&mut self, path: &str, kind: u8, entry: CacheEntry) -> bool {
        let blocked = entry.chain.iter().any(|id| {
            self.tombstones.get(id).is_some_and(|&t| entry.anchor <= t)
        }) || entry.listing_dir.is_some_and(|d| {
            self.listing_tombstones.get(&d).is_some_and(|&t| entry.anchor <= t)
        });
        if blocked {
            return false;
        }
        self.remove(path, kind);
        while self.entries.len() >= self.cap {
            let victim = match self.by_expiry.iter().next() {
                Some((_, p, k)) => (p.clone(), *k),
                None => break,
            };
            self.remove(&victim.0, victim.1);
        }
        self.by_expiry.insert((entry.expiry, path.to_string(), kind));
        self.entries.insert((path.to_string(), kind), entry);
        true
    }

    /// Drops one entry.
    pub fn remove(&mut self, path: &str, kind: u8) {
        if let Some(e) = self.entries.remove(&(path.to_string(), kind)) {
            self.by_expiry.remove(&(e.expiry, path.to_string(), kind));
        }
    }

    /// Extends one entry's lease (renewal); the anchor is unchanged.
    pub fn extend(&mut self, path: &str, kind: u8, expiry: SimTime) {
        if let Some(e) = self.entries.get_mut(&(path.to_string(), kind)) {
            self.by_expiry.remove(&(e.expiry, path.to_string(), kind));
            e.expiry = expiry;
            self.by_expiry.insert((expiry, path.to_string(), kind));
        }
    }

    /// Applies an invalidation: drops every entry whose chain contains a
    /// target id and every listing of a listed directory, then tombstones
    /// the ids until past `commit_time`. Returns the number dropped.
    pub fn invalidate(
        &mut self,
        targets: &[u64],
        listing_dirs: &[u64],
        commit_time: SimTime,
    ) -> u64 {
        let doomed: Vec<(String, u8)> = self
            .entries
            .iter()
            .filter(|(key, e)| {
                e.chain.iter().any(|id| targets.contains(id))
                    || (key.1 == KIND_LIST
                        && e.listing_dir.is_some_and(|d| listing_dirs.contains(&d)))
            })
            .map(|(key, _)| key.clone())
            .collect();
        for (path, kind) in &doomed {
            self.remove(path, *kind);
        }
        for &id in targets {
            let t = self.tombstones.entry(id).or_insert(commit_time);
            *t = (*t).max(commit_time);
        }
        for &id in listing_dirs {
            let t = self.listing_tombstones.entry(id).or_insert(commit_time);
            *t = (*t).max(commit_time);
        }
        doomed.len() as u64
    }

    /// Entries expiring within `margin` that are still alive — the renewal
    /// candidates, earliest expiry first, at most `max`, grouped by
    /// granting namenode by the caller.
    pub fn renewal_candidates(
        &self,
        now: SimTime,
        margin: SimDuration,
        max: usize,
    ) -> Vec<(String, u8)> {
        self.by_expiry
            .iter()
            .filter(|(exp, _, _)| *exp > now && exp.saturating_since(now) <= margin)
            .take(max)
            .map(|(_, p, k)| (p.clone(), *k))
            .collect()
    }

    /// Borrow an entry without an expiry check (renewal bookkeeping).
    pub fn peek(&self, path: &str, kind: u8) -> Option<&CacheEntry> {
        self.entries.get(&(path.to_string(), kind))
    }

    /// Drops expired entries and stale tombstones. `horizon` is how long a
    /// tombstone can matter (`ttl` + revoke margin): any grant it would
    /// refuse has already expired by then.
    pub fn sweep(&mut self, now: SimTime, horizon: SimDuration) {
        while let Some((exp, p, k)) = self.by_expiry.iter().next().cloned() {
            if exp > now {
                break;
            }
            self.remove(&p, k);
        }
        self.tombstones.retain(|_, &mut t| now.saturating_since(t) <= horizon);
        self.listing_tombstones.retain(|_, &mut t| now.saturating_since(t) <= horizon);
    }

    /// Drops everything (client restart: registrations at namenodes will
    /// be acked-or-expired; the cache itself must not survive).
    pub fn clear(&mut self) {
        self.entries.clear();
        self.by_expiry.clear();
        self.tombstones.clear();
        self.listing_tombstones.clear();
    }
}

// ---------------------------------------------------------------------------
// Namenode-side lease table
// ---------------------------------------------------------------------------

/// Namenode-side record of lease holders, keyed by inode id. A grant
/// registers the client under every chain id, so subtree invalidation of a
/// root id finds every holder beneath it without walking anything.
#[derive(Debug, Default)]
pub struct LeaseTable {
    /// id → holder client node → lease expiry.
    holders: BTreeMap<u64, BTreeMap<u32, SimTime>>,
    /// listed directory id → holder client node → lease expiry.
    listing_holders: BTreeMap<u64, BTreeMap<u32, SimTime>>,
    /// id → latest known conflicting commit upper bound; reads anchored at
    /// or before a fence must not be granted.
    fences: BTreeMap<u64, SimTime>,
    listing_fences: BTreeMap<u64, SimTime>,
}

impl LeaseTable {
    /// Registers `client` as holder of every id in `ids` (and the listing,
    /// if any) until `expiry`.
    pub fn register(&mut self, ids: &[u64], listing_dir: Option<u64>, client: u32, expiry: SimTime) {
        for &id in ids {
            let slot = self.holders.entry(id).or_default().entry(client).or_insert(expiry);
            *slot = (*slot).max(expiry);
        }
        if let Some(d) = listing_dir {
            let slot = self.listing_holders.entry(d).or_default().entry(client).or_insert(expiry);
            *slot = (*slot).max(expiry);
        }
    }

    /// Whether a read anchored at `anchor` is safe to grant: no id in the
    /// chain (nor the listing) has a conflicting commit at or after it.
    pub fn grant_ok(&self, ids: &[u64], listing_dir: Option<u64>, anchor: SimTime) -> bool {
        ids.iter().all(|id| self.fences.get(id).is_none_or(|&f| anchor > f))
            && listing_dir
                .is_none_or(|d| self.listing_fences.get(&d).is_none_or(|&f| anchor > f))
    }

    /// Records a conflicting commit against these ids (future grants from
    /// possibly-stale reads are refused).
    pub fn apply_fences(&mut self, targets: &[u64], listing_dirs: &[u64], commit_time: SimTime) {
        for &id in targets {
            let f = self.fences.entry(id).or_insert(commit_time);
            *f = (*f).max(commit_time);
        }
        for &id in listing_dirs {
            let f = self.listing_fences.entry(id).or_insert(commit_time);
            *f = (*f).max(commit_time);
        }
    }

    /// Removes and returns the conflicting holders with unexpired leases:
    /// everyone registered under a target id, plus everyone holding a
    /// listing of a listed directory. The returned map carries each
    /// holder's latest lease expiry — the push round waits no longer than
    /// that for a missing ack.
    pub fn revoke_holders(
        &mut self,
        targets: &[u64],
        listing_dirs: &[u64],
        now: SimTime,
    ) -> BTreeMap<u32, SimTime> {
        let mut out: BTreeMap<u32, SimTime> = BTreeMap::new();
        for &id in targets {
            if let Some(hs) = self.holders.remove(&id) {
                for (client, exp) in hs {
                    if exp > now {
                        let slot = out.entry(client).or_insert(exp);
                        *slot = (*slot).max(exp);
                    }
                }
            }
        }
        for &id in listing_dirs {
            if let Some(hs) = self.listing_holders.remove(&id) {
                for (client, exp) in hs {
                    if exp > now {
                        let slot = out.entry(client).or_insert(exp);
                        *slot = (*slot).max(exp);
                    }
                }
            }
        }
        out
    }

    /// Whether `client` still holds every id in `ids` (and the listing)
    /// unexpired — the renewal validity check. Combined with the fence
    /// check on the entry's anchor by the caller.
    pub fn still_held(
        &self,
        ids: &[u64],
        listing_dir: Option<u64>,
        client: u32,
        now: SimTime,
    ) -> bool {
        ids.iter().all(|id| {
            self.holders
                .get(id)
                .and_then(|hs| hs.get(&client))
                .is_some_and(|&exp| exp > now)
        }) && listing_dir.is_none_or(|d| {
            self.listing_holders
                .get(&d)
                .and_then(|hs| hs.get(&client))
                .is_some_and(|&exp| exp > now)
        })
    }

    /// Extends `client`'s registration on every id in `ids` (renewal).
    pub fn extend(&mut self, ids: &[u64], listing_dir: Option<u64>, client: u32, expiry: SimTime) {
        self.register(ids, listing_dir, client, expiry);
    }

    /// Drops expired holder registrations and fences older than `horizon`
    /// (a fence only matters while a read anchored before it could still
    /// produce an unexpired grant).
    pub fn sweep(&mut self, now: SimTime, horizon: SimDuration) {
        self.holders.retain(|_, hs| {
            hs.retain(|_, &mut exp| exp > now);
            !hs.is_empty()
        });
        self.listing_holders.retain(|_, hs| {
            hs.retain(|_, &mut exp| exp > now);
            !hs.is_empty()
        });
        self.fences.retain(|_, &mut f| now.saturating_since(f) <= horizon);
        self.listing_fences.retain(|_, &mut f| now.saturating_since(f) <= horizon);
    }

    /// Number of ids with at least one registered holder.
    pub fn held_ids(&self) -> usize {
        self.holders.len()
    }
}

// ---------------------------------------------------------------------------
// Coherence monitor
// ---------------------------------------------------------------------------

/// Shared (per-experiment) observer for the `lease_coherence` invariant:
/// *no read is ever served from a cache entry whose lease outlived an acked
/// conflicting mutation.*
///
/// Mutating clients report each unambiguous mutation ack (`record_ack`);
/// every locally served read is checked (`check_serve`): serving at time
/// `s ≥ ack` from an entry anchored at or before the mutation's commit
/// floor — i.e. from data that provably predates the mutation — is a
/// violation. Entries granted after the commit floor are fresh reads of
/// their ids and never flagged.
#[derive(Debug, Default)]
pub struct LeaseMonitor {
    /// target id → (commit floor, ack time) per acked conflicting mutation.
    target_acks: BTreeMap<u64, Vec<(SimTime, SimTime)>>,
    /// listed dir id → (commit floor, ack time).
    listing_acks: BTreeMap<u64, Vec<(SimTime, SimTime)>>,
    /// Confirmed violations (must stay 0).
    pub violations: u64,
    /// Locally served reads checked.
    pub serves_checked: u64,
    /// Mutation acks recorded.
    pub acks_recorded: u64,
}

impl LeaseMonitor {
    /// Records an acked conflicting mutation observed at `ack_time`.
    pub fn record_ack(&mut self, notice: &MutationNotice, ack_time: SimTime) {
        if !notice.monitored {
            return;
        }
        self.acks_recorded += 1;
        for &id in &notice.targets {
            self.target_acks.entry(id).or_default().push((notice.commit_floor, ack_time));
        }
        for &id in &notice.listing_dirs {
            self.listing_acks.entry(id).or_default().push((notice.commit_floor, ack_time));
        }
    }

    /// Checks one locally served read; returns `true` (and counts) on a
    /// coherence violation.
    pub fn check_serve(&mut self, entry: &CacheEntry, kind: u8, now: SimTime) -> bool {
        self.serves_checked += 1;
        let stale = |acks: &BTreeMap<u64, Vec<(SimTime, SimTime)>>, id: u64| {
            acks.get(&id)
                .is_some_and(|v| v.iter().any(|&(floor, ack)| entry.anchor <= floor && ack <= now))
        };
        let hit = entry.chain.iter().any(|&id| stale(&self.target_acks, id))
            || (kind == KIND_LIST
                && entry.listing_dir.is_some_and(|d| stale(&self.listing_acks, d)));
        if hit {
            self.violations += 1;
        }
        hit
    }
}

/// Maps an [`crate::ops::OpKind`] to its cache-kind index; `None` for
/// mutations (they are never cached).
pub fn cache_kind(kind: crate::ops::OpKind) -> Option<u8> {
    match kind {
        crate::ops::OpKind::Stat => Some(KIND_STAT),
        crate::ops::OpKind::Open => Some(KIND_OPEN),
        crate::ops::OpKind::List => Some(KIND_LIST),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{InodeAttrs, InodeId, Perm};

    fn t(ms: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(ms)
    }

    fn attrs(id: u64) -> FsOk {
        FsOk::Attrs(InodeAttrs {
            id: InodeId(id),
            is_dir: false,
            perm: Perm::default(),
            owner: 0,
            group: 0,
            size: 0,
            mtime: 0,
            replication: 3,
            inline_len: 0,
        })
    }

    fn entry(chain: &[u64], anchor: SimTime, expiry: SimTime) -> CacheEntry {
        CacheEntry {
            value: attrs(*chain.last().unwrap()),
            chain: chain.to_vec(),
            target: *chain.last().unwrap(),
            listing_dir: None,
            anchor,
            expiry,
            granted_by: 0,
        }
    }

    #[test]
    fn serves_until_expiry_then_lazily_drops() {
        let mut c = LeaseCache::new(16);
        assert!(c.insert("/a/f", KIND_STAT, entry(&[1, 2, 3], t(0), t(100))));
        assert!(c.get("/a/f", KIND_STAT, t(50)).is_some());
        assert!(c.get("/a/f", KIND_STAT, t(100)).is_none());
        assert!(c.is_empty());
    }

    #[test]
    fn chain_invalidation_kills_subtree_in_one_call() {
        let mut c = LeaseCache::new(16);
        c.insert("/a/b/x", KIND_STAT, entry(&[1, 2, 5, 7], t(0), t(100)));
        c.insert("/a/b/y", KIND_OPEN, entry(&[1, 2, 5, 8], t(0), t(100)));
        c.insert("/a/c", KIND_STAT, entry(&[1, 2, 6], t(0), t(100)));
        // Invalidate subtree root id 5: both entries under it die, /a/c lives.
        assert_eq!(c.invalidate(&[5], &[], t(10)), 2);
        assert!(c.get("/a/b/x", KIND_STAT, t(11)).is_none());
        assert!(c.get("/a/c", KIND_STAT, t(11)).is_some());
    }

    #[test]
    fn listing_invalidation_spares_attr_entries() {
        let mut c = LeaseCache::new(16);
        let mut list = entry(&[1, 2], t(0), t(100));
        list.listing_dir = Some(2);
        c.insert("/a", KIND_LIST, list);
        c.insert("/a", KIND_STAT, entry(&[1, 2], t(0), t(100)));
        c.insert("/a/f", KIND_STAT, entry(&[1, 2, 9], t(0), t(100)));
        // A create in /a (dir id 2) kills the listing but not attrs of /a
        // or of existing children.
        assert_eq!(c.invalidate(&[], &[2], t(10)), 1);
        assert!(c.get("/a", KIND_LIST, t(11)).is_none());
        assert!(c.get("/a", KIND_STAT, t(11)).is_some());
        assert!(c.get("/a/f", KIND_STAT, t(11)).is_some());
    }

    #[test]
    fn tombstone_refuses_stale_inflight_grant_but_not_fresh() {
        let mut c = LeaseCache::new(16);
        c.invalidate(&[5], &[], t(50));
        // Grant anchored before the conflicting commit: refused.
        assert!(!c.insert("/a/b", KIND_STAT, entry(&[1, 5], t(40), t(140))));
        // Grant anchored after it: fresh read, accepted.
        assert!(c.insert("/a/b", KIND_STAT, entry(&[1, 5], t(60), t(160))));
    }

    #[test]
    fn eviction_prefers_earliest_expiry() {
        let mut c = LeaseCache::new(2);
        c.insert("/a", KIND_STAT, entry(&[1, 2], t(0), t(100)));
        c.insert("/b", KIND_STAT, entry(&[1, 3], t(0), t(300)));
        c.insert("/c", KIND_STAT, entry(&[1, 4], t(0), t(200)));
        assert_eq!(c.len(), 2);
        assert!(c.get("/a", KIND_STAT, t(1)).is_none(), "earliest expiry evicted");
        assert!(c.get("/b", KIND_STAT, t(1)).is_some());
        assert!(c.get("/c", KIND_STAT, t(1)).is_some());
    }

    #[test]
    fn table_registers_chain_and_revokes_by_root() {
        let mut tab = LeaseTable::default();
        tab.register(&[1, 2, 5, 7], None, 100, t(100));
        tab.register(&[1, 2, 5, 8], None, 101, t(120));
        tab.register(&[1, 3], None, 102, t(100));
        // Revoking subtree root 5 finds both holders below it, not client 102.
        let holders = tab.revoke_holders(&[5], &[], t(0));
        assert_eq!(holders.keys().copied().collect::<Vec<_>>(), vec![100, 101]);
        assert_eq!(holders[&101], t(120));
        // Expired holders are not returned.
        let holders = tab.revoke_holders(&[3], &[], t(200));
        assert!(holders.is_empty());
    }

    #[test]
    fn fences_refuse_possibly_stale_grants() {
        let mut tab = LeaseTable::default();
        tab.apply_fences(&[5], &[2], t(50));
        assert!(!tab.grant_ok(&[1, 5], None, t(50)), "anchor at fence: refused");
        assert!(tab.grant_ok(&[1, 5], None, t(51)), "anchor after fence: ok");
        assert!(!tab.grant_ok(&[1], Some(2), t(40)), "listing fence applies");
        assert!(tab.grant_ok(&[1], Some(2), t(60)));
    }

    #[test]
    fn renewal_requires_all_ids_held() {
        let mut tab = LeaseTable::default();
        tab.register(&[1, 2, 7], None, 100, t(100));
        assert!(tab.still_held(&[1, 2, 7], None, 100, t(50)));
        assert!(!tab.still_held(&[1, 2, 7], None, 100, t(100)), "expired");
        assert!(!tab.still_held(&[1, 2, 9], None, 100, t(50)), "unheld id");
        // Revocation of an ancestor drops the registration mid-chain.
        tab.revoke_holders(&[2], &[], t(0));
        assert!(!tab.still_held(&[1, 2, 7], None, 100, t(50)));
    }

    #[test]
    fn monitor_flags_pre_commit_serve_after_ack_only() {
        let mut m = LeaseMonitor::default();
        let notice = MutationNotice {
            targets: vec![7],
            listing_dirs: vec![2],
            commit_time: t(52),
            commit_floor: t(50),
            monitored: true,
        };
        m.record_ack(&notice, t(60));
        // Entry anchored before the commit floor, served after the ack.
        assert!(m.check_serve(&entry(&[1, 2, 7], t(40), t(140)), KIND_STAT, t(70)));
        // Same entry served *before* the ack: legal (mutation not yet acked).
        assert!(!m.check_serve(&entry(&[1, 2, 7], t(40), t(140)), KIND_STAT, t(55)));
        // Entry anchored after the floor: fresh read, never flagged.
        assert!(!m.check_serve(&entry(&[1, 2, 7], t(51), t(151)), KIND_STAT, t(70)));
        // Unrelated chain: never flagged.
        assert!(!m.check_serve(&entry(&[1, 3, 9], t(40), t(140)), KIND_STAT, t(70)));
        assert_eq!(m.violations, 1);
    }

    #[test]
    fn sweep_prunes_expired_state() {
        let mut c = LeaseCache::new(16);
        c.insert("/a", KIND_STAT, entry(&[1, 2], t(0), t(100)));
        c.invalidate(&[9], &[], t(10));
        c.sweep(t(200), SimDuration::from_millis(50));
        assert!(c.is_empty());
        // Tombstone pruned: an old-anchor grant would now be expired anyway.
        assert!(c.insert("/x", KIND_STAT, entry(&[1, 9], t(5), t(205))));

        let mut tab = LeaseTable::default();
        tab.register(&[1, 2], None, 100, t(100));
        tab.apply_fences(&[5], &[], t(10));
        tab.sweep(t(200), SimDuration::from_millis(50));
        assert_eq!(tab.held_ids(), 0);
        assert!(tab.grant_ok(&[5], None, t(5)));
    }
}
