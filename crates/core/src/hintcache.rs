//! Segmented (two-generation) inode-hint cache for the namenode.
//!
//! The hint cache maps `(parent inode, child name)` to `(child inode,
//! is_dir)` so path resolution can skip NDB round trips for warm ancestors
//! (validated read-committed at lock time, per the HopsFS protocol).
//!
//! Eviction is generational, not wholesale: entries are inserted into a
//! *young* generation; when young fills to half the capacity, it is demoted
//! wholesale to *old* (dropping the previous old generation) and a fresh
//! young generation starts. A lookup that hits the old generation promotes
//! the entry back into young. The effect is scan-resistant second-chance
//! eviction at HashMap cost: any entry referenced at least once per
//! generation turn — e.g. the ancestor chain of a hot directory, touched on
//! every operation under it — survives cap pressure indefinitely, while
//! one-shot entries age out after two turns. The previous implementation
//! (`cache.clear()` at capacity) dropped the entire working set, forcing
//! every in-flight client back to full-depth resolution at once.
//!
//! Memory stays bounded by `cap` live entries (two half-`cap` generations);
//! determinism is untouched because no operation iterates a `HashMap`.

use std::borrow::Borrow;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};

type Key = (u64, String);
type Hint = (u64, bool);

/// Borrowed view of a cache key, so `(u64, &str)` can probe a
/// `HashMap<(u64, String), _>` without allocating an owned `String` per
/// lookup. The probe runs once per path component per operation — the
/// hottest loop in the namenode — and previously cloned every component
/// name on every hit *and* miss.
trait KeyView {
    fn parent(&self) -> u64;
    fn name(&self) -> &str;
}

impl KeyView for (u64, String) {
    fn parent(&self) -> u64 {
        self.0
    }
    fn name(&self) -> &str {
        &self.1
    }
}

impl KeyView for (u64, &str) {
    fn parent(&self) -> u64 {
        self.0
    }
    fn name(&self) -> &str {
        self.1
    }
}

impl<'a> Borrow<dyn KeyView + 'a> for (u64, String) {
    fn borrow(&self) -> &(dyn KeyView + 'a) {
        self
    }
}

// Must hash exactly like the derived `(u64, String)` implementation (field
// order and types), or borrowed probes would miss owned entries.
impl Hash for dyn KeyView + '_ {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.parent().hash(state);
        self.name().hash(state);
    }
}

impl PartialEq for dyn KeyView + '_ {
    fn eq(&self, other: &Self) -> bool {
        self.parent() == other.parent() && self.name() == other.name()
    }
}

impl Eq for dyn KeyView + '_ {}

/// Two-generation inode-hint cache. See the module docs for the policy.
#[derive(Debug)]
pub struct HintCache {
    /// Per-generation capacity: a generation turn happens when `young`
    /// reaches `cap / 2`.
    half: usize,
    young: HashMap<Key, Hint>,
    old: HashMap<Key, Hint>,
}

impl HintCache {
    /// Creates a cache bounded to `cap` entries across both generations.
    pub fn new(cap: usize) -> Self {
        assert!(cap >= 2, "HintCache cap must hold both generations");
        HintCache { half: cap / 2, young: HashMap::new(), old: HashMap::new() }
    }

    /// Looks up a hint; a hit in the old generation promotes the entry to
    /// young (second chance).
    pub fn get(&mut self, parent: u64, name: &str) -> Option<Hint> {
        let key: &dyn KeyView = &(parent, name);
        if let Some(&hint) = self.young.get(key) {
            return Some(hint);
        }
        let hint = self.old.remove(key)?;
        // The only allocation left: promotion needs an owned key to insert.
        self.insert_young((parent, name.to_string()), hint);
        Some(hint)
    }

    /// Looks up a hint without promoting it (no second chance, no state
    /// change). For introspection — staleness tests and invariant checks
    /// that must not perturb the generational state they are observing.
    pub fn peek(&self, parent: u64, name: &str) -> Option<(u64, bool)> {
        let key: &dyn KeyView = &(parent, name);
        self.young.get(key).or_else(|| self.old.get(key)).copied()
    }

    /// Inserts or refreshes a hint (always lands in the young generation).
    pub fn put(&mut self, parent: u64, name: &str, id: u64, is_dir: bool) {
        self.old.remove(&(parent, name) as &dyn KeyView);
        self.insert_young((parent, name.to_string()), (id, is_dir));
    }

    /// Drops a hint from both generations (mutation invalidation).
    pub fn remove(&mut self, parent: u64, name: &str) {
        let key: &dyn KeyView = &(parent, name);
        self.young.remove(key);
        self.old.remove(key);
    }

    /// Drops everything (stale-chain fallback: resolution observed the
    /// namespace moving under a cached ancestor).
    pub fn clear(&mut self) {
        self.young.clear();
        self.old.clear();
    }

    /// Drops every hint keyed under `root` or any cached descendant of it
    /// (subtree invalidation after a recursive delete or a directory
    /// rename). Dropping only the root's own `(parent, name)` pair would
    /// leave hints for deeper entries stale.
    ///
    /// The descendant closure is computed from the cached entries by
    /// fixpoint: each pass removes entries whose parent is already known
    /// doomed and adds their directory child ids to the doomed set. Removal
    /// is order-independent, so iterating the `HashMap`s here cannot leak
    /// iteration order into simulation state.
    pub fn remove_subtree(&mut self, root: u64) {
        let mut doomed = std::collections::BTreeSet::new();
        doomed.insert(root);
        loop {
            let mut grew = false;
            for gen in [&mut self.young, &mut self.old] {
                gen.retain(|(parent, _), &mut (id, is_dir)| {
                    // An entry dies if it sits under a doomed directory or
                    // points at one (the subtree root's own entry).
                    if doomed.contains(parent) || doomed.contains(&id) {
                        if is_dir {
                            grew |= doomed.insert(id);
                        }
                        false
                    } else {
                        true
                    }
                });
            }
            if !grew {
                return;
            }
        }
    }

    /// Live entries across both generations.
    pub fn len(&self) -> usize {
        self.young.len() + self.old.len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn insert_young(&mut self, key: Key, hint: Hint) {
        if self.young.len() >= self.half && !self.young.contains_key(&key) {
            // Generation turn: young becomes old, previous old ages out.
            self.old = std::mem::take(&mut self.young);
        }
        self.young.insert(key, hint);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_and_miss() {
        let mut c = HintCache::new(8);
        c.put(1, "a", 10, true);
        assert_eq!(c.get(1, "a"), Some((10, true)));
        assert_eq!(c.get(1, "b"), None);
        assert_eq!(c.get(2, "a"), None);
    }

    #[test]
    fn remove_drops_both_generations() {
        let mut c = HintCache::new(4);
        c.put(1, "a", 10, true);
        // Turn the generation so "a" sits in old.
        c.put(1, "b", 11, true);
        c.put(1, "c", 12, true);
        c.remove(1, "a");
        assert_eq!(c.get(1, "a"), None);
        c.put(1, "d", 13, true);
        c.remove(1, "d");
        assert_eq!(c.get(1, "d"), None);
    }

    #[test]
    fn put_refreshes_stale_old_entry() {
        let mut c = HintCache::new(4);
        c.put(1, "a", 10, true);
        c.put(1, "b", 11, true); // turn: a,b -> old
        c.put(1, "a", 99, false); // re-put must shadow the old-generation value
        assert_eq!(c.get(1, "a"), Some((99, false)));
    }

    #[test]
    fn bounded_by_cap_under_churn() {
        let mut c = HintCache::new(64);
        for i in 0..10_000u64 {
            c.put(i, "x", i, true);
            assert!(c.len() <= 64, "cache grew past cap: {}", c.len());
        }
    }

    /// Subtree invalidation must drop cached descendants transitively — in
    /// both generations — while leaving unrelated entries alone.
    #[test]
    fn remove_subtree_drops_descendants_transitively() {
        let mut c = HintCache::new(64);
        // /a (id 10) -> /a/b (11) -> /a/b/c (12) -> /a/b/c/f (13, file)
        c.put(1, "a", 10, true);
        c.put(10, "b", 11, true);
        c.put(11, "c", 12, true);
        c.put(12, "f", 13, false);
        // Unrelated sibling /z (20) and its child.
        c.put(1, "z", 20, true);
        c.put(20, "w", 21, false);
        // Turn the generation so part of the chain sits in `old`.
        for i in 0..32u64 {
            c.put(5_000 + i, "pad", i, false);
        }
        c.remove_subtree(10);
        assert_eq!(c.get(1, "a"), None);
        assert_eq!(c.get(10, "b"), None);
        assert_eq!(c.get(11, "c"), None);
        assert_eq!(c.get(12, "f"), None);
        assert_eq!(c.get(1, "z"), Some((20, true)));
        assert_eq!(c.get(20, "w"), Some((21, false)));
    }

    /// The regression the segmented design exists for: a hot ancestor chain
    /// (re-resolved on every op, as `/user/alice/project` is while clients
    /// work under it) must survive arbitrary cap pressure from one-shot
    /// entries. The old `clear()`-at-cap policy dropped it on every
    /// overflow.
    #[test]
    fn hot_ancestor_chain_survives_cap_pressure() {
        let cap = 64;
        let mut c = HintCache::new(cap);
        let chain: Vec<(u64, String, u64)> =
            (0..4).map(|d| (d, format!("seg{d}"), d + 1)).collect();
        for (parent, name, id) in &chain {
            c.put(*parent, name, *id, true);
        }
        // 100× cap of cold, never-reused entries, with the chain re-walked
        // (as resolution would) between insertions.
        for i in 0..(cap as u64 * 100) {
            c.put(1_000_000 + i, "cold", i, false);
            for (parent, name, id) in &chain {
                assert_eq!(
                    c.get(*parent, name),
                    Some((*id, true)),
                    "hot ancestor {parent}/{name} evicted by cold churn at {i}"
                );
            }
            assert!(c.len() <= cap);
        }
    }
}
