//! Open-loop load generation with adaptive concurrency.
//!
//! The closed-loop [`crate::client::FsClientActor`] self-throttles: a slow
//! server slows the client down, so offered load collapses to match capacity
//! and overload never materializes. Real front-ends are open-loop — arrivals
//! come from the outside world at their own rate, independent of completions
//! (§"strike back in the Cloud" motivation: bursty, multi-tenant clouds).
//!
//! [`OpenLoopClientActor`] models that: operations *arrive* on a Poisson
//! process at a configured rate whether or not earlier ones finished. An
//! AIMD concurrency window ([`OpenLoopClientActor::cwnd`]) decides how many
//! may be in flight at once; arrivals beyond the window wait in a bounded
//! queue and are **dropped** (counted, never silently) when it overflows.
//! The window grows additively on good completions and halves when the
//! server sheds (`Overloaded`), when an op times out, or when observed
//! latency blows past the target — the client-side half of the cross-layer
//! overload-control loop.

use crate::client::{ClientStats, OpSource};
use crate::ops::{ActiveNns, FsOp, FsRequest, FsResponse, GetActiveNns};
use crate::types::{FsError, FsResult};
use crate::view::FsView;
use rand::Rng;
use simnet::{
    poisson_interarrival, Actor, BoundedQueue, Ctx, NodeId, Payload, RateCurve, RetryPolicy,
    SimDuration, SimTime,
};
use std::any::Any;
use std::sync::Mutex;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Ceiling on the AIMD window.
const CWND_MAX: f64 = 256.0;
/// Multiplicative-decrease factor.
const MD_FACTOR: f64 = 0.5;
/// Minimum spacing between multiplicative decreases: one decrease per
/// congestion *event*, not per congested reply.
const MD_HOLDOFF: SimDuration = SimDuration::from_millis(100);

#[derive(Debug, Clone, Copy)]
struct Arrival;
#[derive(Debug, Clone, Copy)]
struct OlTick;
#[derive(Debug, Clone, Copy)]
struct OlRetry {
    req_id: u64,
    attempt: u32,
}

#[derive(Debug)]
struct Inflight {
    op: FsOp,
    started: SimTime,
    sent_at: SimTime,
    attempt: u32,
    idempotent_retry: bool,
    span: simnet::SpanId,
}

/// An open-loop client session: Poisson arrivals, AIMD admission window,
/// bounded arrival queue. Construct via
/// [`crate::deploy::FsCluster::add_open_loop_client`].
pub struct OpenLoopClientActor {
    view: Arc<FsView>,
    source: Box<dyn OpSource>,
    stats: Arc<Mutex<ClientStats>>,
    /// Offered load: mean operation arrivals per second.
    pub rate_per_sec: f64,
    /// Time-varying offered load. When set, arrivals follow this curve (a
    /// non-homogeneous Poisson process) and `rate_per_sec` is ignored.
    pub curve: Option<RateCurve>,
    /// Namenodes currently serving (see [`crate::elastic`]); kept fresh via
    /// the membership-epoch piggyback on responses. Empty = use the static
    /// deployment list.
    members: Vec<NodeId>,
    membership_epoch: u64,
    awaiting_members: bool,
    cwnd: f64,
    last_decrease: SimTime,
    inflight: BTreeMap<u64, Inflight>,
    queue: BoundedQueue<FsOp>,
    next_req: u64,
    /// Per-attempt timeout before the op is retried elsewhere.
    pub op_timeout: SimDuration,
    /// Total attempts per op (sheds and timeouts both consume budget).
    pub max_attempts: u32,
    /// Backoff policy; `Overloaded` replies route their server hint through
    /// [`RetryPolicy::delay_after_hint`].
    pub retry: RetryPolicy,
    /// Completions slower than this count as congestion for AIMD.
    pub latency_target: SimDuration,
    /// Arrivals dropped because the bounded queue was full (client-side
    /// shedding — the open-loop analogue of a full accept queue).
    pub dropped_arrivals: u64,
    /// Arrivals offered so far (dispatched + queued + dropped).
    pub offered: u64,
    /// True once the source is exhausted.
    pub done: bool,
    /// Whether the AIMD window is active. When `false` the client is the
    /// pre-overload-control baseline: every arrival dispatches immediately
    /// (no window, no queue, no drops), and only the per-attempt timeout
    /// retry loop remains — the configuration that collapses under
    /// sustained overload.
    pub adaptive: bool,
}

impl OpenLoopClientActor {
    /// Creates an open-loop session offering `rate_per_sec` ops/s, holding
    /// at most `queue_cap` arrivals beyond the in-flight window.
    pub fn new(
        view: Arc<FsView>,
        source: Box<dyn OpSource>,
        stats: Arc<Mutex<ClientStats>>,
        rate_per_sec: f64,
        queue_cap: usize,
    ) -> Self {
        assert!(rate_per_sec > 0.0, "offered rate must be positive");
        // Elastic pool: only the initial members serve at t=0; the list
        // follows the controller's membership epochs from there.
        let members: Vec<NodeId> = if view.config.elastic.enabled {
            let n = view.config.elastic.initial_active.clamp(1, view.nn_ids.len());
            view.nn_ids[..n].to_vec()
        } else {
            Vec::new()
        };
        OpenLoopClientActor {
            view,
            source,
            stats,
            rate_per_sec,
            curve: None,
            members,
            membership_epoch: 0,
            awaiting_members: false,
            cwnd: 4.0,
            last_decrease: SimTime::ZERO,
            inflight: BTreeMap::new(),
            queue: BoundedQueue::new(queue_cap),
            next_req: 0,
            op_timeout: SimDuration::from_secs(4),
            max_attempts: 6,
            retry: RetryPolicy::new(SimDuration::from_millis(50), SimDuration::from_millis(800)),
            latency_target: SimDuration::from_millis(500),
            dropped_arrivals: 0,
            offered: 0,
            done: false,
            adaptive: true,
        }
    }

    /// Replaces the constant arrival rate with a time-varying curve.
    pub fn with_rate_curve(mut self, curve: RateCurve) -> Self {
        self.curve = Some(curve);
        self
    }

    /// Current AIMD window (fractional; `floor` is the in-flight cap).
    pub fn cwnd(&self) -> f64 {
        self.cwnd
    }

    fn next_gap(&self, ctx: &mut Ctx<'_>) -> SimDuration {
        let now = ctx.now();
        match &self.curve {
            Some(curve) => curve.next_arrival(ctx.rng(), now),
            None => poisson_interarrival(ctx.rng(), self.rate_per_sec),
        }
    }

    /// Whether nothing is in flight or queued (the session drained).
    pub fn idle(&self) -> bool {
        self.inflight.is_empty() && self.queue.is_empty()
    }

    fn window(&self) -> usize {
        if !self.adaptive {
            return usize::MAX;
        }
        (self.cwnd as usize).max(1)
    }

    fn decrease(&mut self, now: SimTime) {
        if !self.adaptive || now.saturating_since(self.last_decrease) < MD_HOLDOFF {
            return;
        }
        self.last_decrease = now;
        self.cwnd = (self.cwnd * MD_FACTOR).max(1.0);
    }

    fn increase(&mut self) {
        if !self.adaptive {
            return;
        }
        // +1 window per window of good completions (classic AIMD).
        self.cwnd = (self.cwnd + 1.0 / self.cwnd).min(CWND_MAX);
    }

    fn pick_nn(&self, ctx: &mut Ctx<'_>) -> Option<NodeId> {
        let pool: &[NodeId] =
            if self.members.is_empty() { &self.view.nn_ids } else { &self.members };
        let alive: Vec<NodeId> = pool.iter().copied().filter(|&nn| ctx.is_alive(nn)).collect();
        let alive = if alive.is_empty() {
            // Every member looks dead (e.g. mid-reconfiguration crash):
            // fall back to the full deployment rather than stalling.
            self.view.nn_ids.iter().copied().filter(|&nn| ctx.is_alive(nn)).collect()
        } else {
            alive
        };
        if alive.is_empty() {
            return None;
        }
        let i = ctx.rng().gen_range(0..alive.len());
        Some(alive[i])
    }

    /// Refreshes the member list after a membership-epoch bump.
    fn fetch_members(&mut self, ctx: &mut Ctx<'_>) {
        self.awaiting_members = true;
        let pool: &[NodeId] =
            if self.members.is_empty() { &self.view.nn_ids } else { &self.members };
        let n = pool.len();
        let pick = pool[ctx.rng().gen_range(0..n)];
        ctx.send_sized(pick, 48, GetActiveNns);
    }

    fn on_arrival(&mut self, ctx: &mut Ctx<'_>) {
        if self.done {
            return;
        }
        let now = ctx.now();
        let op = {
            let rng = ctx.rng();
            self.source.next_op(rng, now)
        };
        let op = match op {
            Some(op) => op,
            None => {
                self.done = true;
                return;
            }
        };
        // Schedule the next arrival *before* handling this one: offered
        // load never depends on how handling goes.
        let gap = self.next_gap(ctx);
        ctx.schedule(gap, Arrival);
        self.offered += 1;
        if self.inflight.len() < self.window() {
            self.dispatch(ctx, op);
        } else if let Err(op) = self.queue.push(op) {
            // Queue full: drop at the door, visibly.
            self.dropped_arrivals += 1;
            let layer = ctx.layer();
            ctx.metrics().inc(layer, "openloop_dropped", 1);
            self.source.on_result(&op, &Err(FsError::Overloaded {
                retry_after: SimDuration::ZERO,
            }));
        }
    }

    fn dispatch(&mut self, ctx: &mut Ctx<'_>, op: FsOp) {
        self.next_req += 1;
        let req_id = self.next_req;
        let now = ctx.now();
        ctx.set_span(simnet::SpanId::NONE);
        let span = ctx.span_start(op.kind().name(), "op");
        self.inflight.insert(
            req_id,
            Inflight {
                op,
                started: now,
                sent_at: now,
                attempt: 1,
                idempotent_retry: false,
                span,
            },
        );
        self.send(ctx, req_id);
    }

    fn send(&mut self, ctx: &mut Ctx<'_>, req_id: u64) {
        let nn = match self.pick_nn(ctx) {
            Some(nn) => nn,
            None => return, // everyone dead; the tick sweep will time us out
        };
        let p = self.inflight.get_mut(&req_id).expect("inflight op");
        p.sent_at = ctx.now();
        let req = FsRequest {
            req_id,
            op: p.op.clone(),
            idempotent_retry: p.idempotent_retry,
            span: p.span,
        };
        ctx.set_span(req.span);
        ctx.send_sized(nn, 256, req);
    }

    fn complete(&mut self, ctx: &mut Ctx<'_>, req_id: u64, result: FsResult) {
        let p = self.inflight.remove(&req_id).expect("inflight op");
        ctx.span_end(p.span);
        let now = ctx.now();
        let latency = now.saturating_since(p.started);
        if result.is_ok() && latency <= self.latency_target {
            self.increase();
        } else if result.is_ok() {
            // Late success: the pipe is full even though nothing failed.
            self.decrease(now);
        }
        self.stats.lock().unwrap().record(p.op.kind(), &result, latency);
        self.source.on_result(&p.op, &result);
        self.pump(ctx);
    }

    /// Fills freed window slots from the arrival queue.
    fn pump(&mut self, ctx: &mut Ctx<'_>) {
        while self.inflight.len() < self.window() {
            match self.queue.pop() {
                Some(op) => self.dispatch(ctx, op),
                None => break,
            }
        }
    }

    fn on_response(&mut self, ctx: &mut Ctx<'_>, resp: FsResponse) {
        if let Err(FsError::Overloaded { .. }) = &resp.result {
            self.stats.lock().unwrap().overloaded_responses += 1;
        }
        // Membership-epoch piggyback (see `crate::elastic`): a newer epoch
        // invalidates the member list — refresh it from any namenode.
        if resp.membership_epoch > self.membership_epoch {
            self.membership_epoch = resp.membership_epoch;
            if !self.awaiting_members {
                self.fetch_members(ctx);
            }
        }
        if !self.inflight.contains_key(&resp.req_id) {
            return; // stale (timed-out attempt answered late)
        }
        if let Err(FsError::Overloaded { retry_after }) = resp.result {
            let now = ctx.now();
            // A redirect is misrouting (the namenode left the pool), not
            // congestion: re-pick without charging the AIMD window.
            if !resp.redirect {
                self.decrease(now);
            }
            let me = u64::from(ctx.me().0);
            let (attempt, give_up, d, span) = {
                let p = self.inflight.get_mut(&resp.req_id).expect("inflight op");
                p.attempt += 1;
                let give_up = p.attempt > self.max_attempts;
                let d = self
                    .retry
                    .delay_after_hint(retry_after, p.attempt.saturating_sub(2), resp.req_id ^ (me << 32))
                    .unwrap_or(retry_after);
                // Mask the op timeout until the resend fires.
                p.sent_at = now + d;
                (p.attempt, give_up, d, p.span)
            };
            if give_up {
                self.complete(ctx, resp.req_id, Err(FsError::Overloaded { retry_after }));
                return;
            }
            let layer = ctx.layer();
            ctx.metrics().inc(layer, "overload_backoff", 1);
            ctx.metrics().record_hist(layer, "retry_backoff_ns", d.as_nanos());
            ctx.span_at("overload_backoff", "retry", span, now, now + d);
            ctx.schedule(d, OlRetry { req_id: resp.req_id, attempt });
            return;
        }
        self.complete(ctx, resp.req_id, resp.result);
    }

    fn on_tick(&mut self, ctx: &mut Ctx<'_>) {
        let now = ctx.now();
        let timeout = self.op_timeout;
        // BTreeMap: expiry processing order is the same every run.
        let expired: Vec<u64> = self
            .inflight
            .iter()
            .filter(|(_, p)| now.saturating_since(p.sent_at) > timeout)
            .map(|(&id, _)| id)
            .collect();
        let me = u64::from(ctx.me().0);
        for req_id in expired {
            self.decrease(now);
            let (give_up, d, attempt, span) = {
                let p = self.inflight.get_mut(&req_id).expect("expired op");
                p.attempt += 1;
                p.idempotent_retry = true;
                let give_up = p.attempt > self.max_attempts;
                let d = self
                    .retry
                    .delay(p.attempt.saturating_sub(2), req_id ^ (me << 32))
                    .unwrap_or(self.retry.cap);
                p.sent_at = now + d;
                (give_up, d, p.attempt, p.span)
            };
            if give_up {
                self.complete(ctx, req_id, Err(FsError::Unavailable));
                continue;
            }
            let layer = ctx.layer();
            ctx.metrics().inc(layer, "op_retries", 1);
            ctx.metrics().record_hist(layer, "retry_backoff_ns", d.as_nanos());
            ctx.span_at("backoff", "retry", span, now, now + d);
            ctx.schedule(d, OlRetry { req_id, attempt });
        }
        let layer = ctx.layer();
        ctx.metrics().set_gauge(layer, "cwnd", self.cwnd as u64);
        ctx.metrics().set_gauge(layer, "arrival_queue", self.queue.len() as u64);
        if !(self.done && self.idle()) {
            ctx.schedule(SimDuration::from_millis(250), OlTick);
        }
    }

    fn on_retry_now(&mut self, ctx: &mut Ctx<'_>, m: OlRetry) {
        match self.inflight.get(&m.req_id) {
            Some(p) if p.attempt == m.attempt => {}
            _ => return, // answered or superseded while backing off
        }
        self.send(ctx, m.req_id);
    }
}

impl Actor for OpenLoopClientActor {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        let gap = self.next_gap(ctx);
        ctx.schedule(gap, Arrival);
        ctx.schedule(SimDuration::from_millis(250), OlTick);
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_>, _from: NodeId, msg: Box<dyn Payload>) {
        let any = msg.into_any();
        let any = match any.downcast::<FsResponse>() {
            Ok(m) => return self.on_response(ctx, *m),
            Err(m) => m,
        };
        let any = match any.downcast::<ActiveNns>() {
            Ok(m) => {
                self.awaiting_members = false;
                if m.membership_epoch >= self.membership_epoch {
                    self.membership_epoch = m.membership_epoch;
                    self.members = m.nns.iter().map(|n| NodeId(n.node_id)).collect();
                }
                return;
            }
            Err(m) => m,
        };
        let any = match any.downcast::<Arrival>() {
            Ok(_) => return self.on_arrival(ctx),
            Err(m) => m,
        };
        let any = match any.downcast::<OlTick>() {
            Ok(_) => return self.on_tick(ctx),
            Err(m) => m,
        };
        match any.downcast::<OlRetry>() {
            Ok(m) => self.on_retry_now(ctx, *m),
            Err(m) => debug_assert!(false, "open-loop client got unknown message {m:?}"),
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}
