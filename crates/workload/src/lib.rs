//! # workload — benchmark workloads for the HopsFS-CL reproduction
//!
//! - [`namespace`]: deterministic hierarchical namespace generation with
//!   Zipf file popularity, loadable into both HopsFS and CephFS clusters;
//! - [`spotify`]: the read-dominated Spotify-trace operation mix the paper
//!   evaluates with (§V-B1), reproduced from its published characterization;
//! - [`micro`]: the single-operation micro-benchmarks of Figures 7 and 9;
//! - [`openloop`]: the interactive mix the overload experiments offer from
//!   open-loop (Poisson-arrival) clients.
//!
//! All sources implement [`hopsfs::OpSource`], so the same session drives a
//! HopsFS client or a CephFS client unchanged.

#![warn(missing_docs)]

pub mod micro;
pub mod namespace;
pub mod openloop;
pub mod spotify;

pub use micro::{MicroOp, MicroSource};
pub use namespace::{Namespace, NamespaceSpec};
pub use openloop::OverloadSource;
// Time-varying open-loop arrival rates (diurnal + spike profiles) live in
// `simnet::flow` next to `poisson_interarrival`; re-exported here because
// workload authors are their main consumer.
pub use simnet::RateCurve;
pub use spotify::{Mix, SpotifySource};
