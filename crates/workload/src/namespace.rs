//! Benchmark namespace generation and bulk loading.
//!
//! Generates a Spotify-like hierarchical namespace (`/user/u<i>/d<j>/f<k>`)
//! with a Zipf popularity distribution over files, and loads it identically
//! into a HopsFS cluster and a CephFS cluster so comparisons run on the same
//! tree.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Shape of the generated namespace.
#[derive(Debug, Clone)]
pub struct NamespaceSpec {
    /// Number of user directories under `/user`.
    pub users: usize,
    /// Directories per user.
    pub dirs_per_user: usize,
    /// Files per directory.
    pub files_per_dir: usize,
    /// File size in bytes (0 = empty files, as in the paper's experiments).
    pub file_size: u64,
    /// Zipf skew of file popularity (0 = uniform).
    pub zipf_s: f64,
}

impl Default for NamespaceSpec {
    fn default() -> Self {
        NamespaceSpec { users: 100, dirs_per_user: 4, files_per_dir: 12, file_size: 0, zipf_s: 1.05 }
    }
}

/// A generated namespace with its popularity model.
#[derive(Debug)]
pub struct Namespace {
    /// All directories, depth order (parents before children).
    pub dirs: Vec<String>,
    /// All files.
    pub files: Vec<String>,
    /// Cumulative Zipf distribution over `files`.
    cdf: Vec<f64>,
}

impl Namespace {
    /// Generates the namespace deterministically from the spec.
    pub fn generate(spec: &NamespaceSpec) -> Namespace {
        let mut dirs = vec!["/user".to_string()];
        let mut files = Vec::with_capacity(spec.users * spec.dirs_per_user * spec.files_per_dir);
        for u in 0..spec.users {
            let user = format!("/user/u{u}");
            dirs.push(user.clone());
            for d in 0..spec.dirs_per_user {
                let dir = format!("{user}/d{d}");
                dirs.push(dir.clone());
                for f in 0..spec.files_per_dir {
                    files.push(format!("{dir}/f{f}"));
                }
            }
        }
        // Zipf CDF over files. Popularity ranks are assigned by a
        // deterministic shuffle so hot files scatter across directories —
        // otherwise every top-ranked file would share one directory (and
        // hence one metadata partition), a hotspot real traces don't have.
        let mut rank_order: Vec<usize> = (0..files.len()).collect();
        rank_order.shuffle(&mut StdRng::seed_from_u64(0x5eed_cafe));
        let files: Vec<String> = rank_order.into_iter().map(|i| files[i].clone()).collect();
        let n = files.len().max(1);
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for rank in 1..=n {
            acc += 1.0 / (rank as f64).powf(spec.zipf_s);
            cdf.push(acc);
        }
        let total = acc.max(f64::MIN_POSITIVE);
        for v in &mut cdf {
            *v /= total;
        }
        Namespace { dirs, files, cdf }
    }

    /// Samples a file path by popularity.
    ///
    /// # Panics
    ///
    /// Panics if the namespace has no files.
    pub fn sample_file(&self, rng: &mut StdRng) -> &str {
        assert!(!self.files.is_empty(), "namespace has no files");
        let u: f64 = rng.gen();
        let idx = self.cdf.partition_point(|&c| c < u).min(self.files.len() - 1);
        &self.files[idx]
    }

    /// Samples a directory uniformly.
    ///
    /// # Panics
    ///
    /// Panics if the namespace has no directories.
    pub fn sample_dir(&self, rng: &mut StdRng) -> &str {
        assert!(!self.dirs.is_empty(), "namespace has no directories");
        &self.dirs[rng.gen_range(0..self.dirs.len())]
    }

    /// Loads the namespace into a HopsFS cluster (bulk, before the sim runs).
    pub fn load_hopsfs(
        &self,
        sim: &mut simnet::Simulation,
        cluster: &mut hopsfs::FsCluster,
        file_size: u64,
    ) {
        for d in &self.dirs {
            cluster.bulk_mkdir_p(sim, d);
        }
        for f in &self.files {
            cluster.bulk_add_file(sim, f, file_size);
        }
    }

    /// Loads the namespace into a CephFS cluster.
    pub fn load_ceph(&self, cluster: &mut cephsim::CephCluster, file_size: u64) {
        for d in &self.dirs {
            cluster.bulk_mkdir_p(d);
        }
        for f in &self.files {
            cluster.bulk_add_file(f, file_size);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn small() -> Namespace {
        Namespace::generate(&NamespaceSpec {
            users: 5,
            dirs_per_user: 2,
            files_per_dir: 3,
            file_size: 0,
            zipf_s: 1.0,
        })
    }

    #[test]
    fn generation_counts() {
        let ns = small();
        assert_eq!(ns.dirs.len(), 1 + 5 + 5 * 2);
        assert_eq!(ns.files.len(), 5 * 2 * 3);
    }

    #[test]
    fn parents_precede_children() {
        let ns = small();
        for (i, d) in ns.dirs.iter().enumerate() {
            if let Some(parent) = d.rfind('/').filter(|&x| x > 0).map(|x| &d[..x]) {
                let pos = ns.dirs.iter().position(|x| x == parent).expect("parent exists");
                assert!(pos < i, "{parent} after {d}");
            }
        }
    }

    #[test]
    fn zipf_sampling_is_skewed() {
        let ns = small();
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = std::collections::HashMap::new();
        for _ in 0..10_000 {
            *counts.entry(ns.sample_file(&mut rng).to_string()).or_insert(0u32) += 1;
        }
        let first = counts.get(&ns.files[0]).copied().unwrap_or(0);
        let last = counts.get(&ns.files[ns.files.len() - 1]).copied().unwrap_or(0);
        assert!(first > last * 3, "rank-1 should dominate: first={first} last={last}");
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let ns = small();
        let seq = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            (0..20).map(|_| ns.sample_file(&mut rng).to_string()).collect::<Vec<_>>()
        };
        assert_eq!(seq(7), seq(7));
        assert_ne!(seq(7), seq(8));
    }
}
