//! The Spotify-trace workload mix.
//!
//! The paper benchmarks with "a real-world industrial workload from
//! Spotify's Hadoop cluster" (the trace itself is proprietary). This
//! generator reproduces the *published characterization* of that trace — a
//! strongly read-dominated operation mix over a hierarchical namespace with
//! skewed file popularity (HopsFS, FAST'17) — with the weights below
//! (~93 % read operations):
//!
//! | op | weight |
//! |----|--------|
//! | readFile (`getBlockLocations`) | 45.00 % |
//! | stat (`getFileInfo`)           | 30.00 % |
//! | ls (`getListing`)              | 15.00 % |
//! | createFile                     |  3.00 % |
//! | delete                         |  2.75 % |
//! | setPermission/chown            |  2.00 % |
//! | rename                         |  1.25 % |
//! | mkdir                          |  1.00 % |
//!
//! Mutations run in a per-session private directory (as the HopsFS
//! benchmarking tool does per client thread) so sessions do not trample each
//! other, while reads share the global namespace.

use crate::namespace::Namespace;
use hopsfs::client::OpSource;
use hopsfs::types::FsResult;
use hopsfs::{FsOp, FsPath};
use rand::rngs::StdRng;
use rand::Rng;
use simnet::SimTime;
use std::collections::VecDeque;
use std::sync::Arc;

/// Operation weights (parts per 10 000).
#[derive(Debug, Clone, Copy)]
pub struct Mix {
    /// readFile weight.
    pub open: u32,
    /// stat weight.
    pub stat: u32,
    /// ls weight.
    pub list: u32,
    /// createFile weight.
    pub create: u32,
    /// delete weight.
    pub delete: u32,
    /// setPermission weight.
    pub set_perm: u32,
    /// rename weight.
    pub rename: u32,
    /// mkdir weight.
    pub mkdir: u32,
}

impl Mix {
    /// The Spotify mix described in the module docs.
    pub const SPOTIFY: Mix = Mix {
        open: 4500,
        stat: 3000,
        list: 1500,
        create: 300,
        delete: 275,
        set_perm: 200,
        rename: 125,
        mkdir: 100,
    };

    /// A skewed read-heavy variant for the client-cache experiments
    /// (`fig_client_cache`): metadata reads dominate at 97%, with just
    /// enough mutation traffic left to keep lease invalidation honest.
    /// Relative read weights shift toward `stat` (the cheapest op to serve
    /// locally and the most frequent in the Spotify trace's hot tail).
    pub const READ_HEAVY: Mix = Mix {
        open: 3500,
        stat: 4500,
        list: 1700,
        create: 100,
        delete: 80,
        set_perm: 70,
        rename: 30,
        mkdir: 20,
    };

    /// Sum of weights.
    pub fn total(&self) -> u32 {
        self.open + self.stat + self.list + self.create + self.delete + self.set_perm + self.rename + self.mkdir
    }

    /// Fraction of read operations.
    pub fn read_fraction(&self) -> f64 {
        f64::from(self.open + self.stat + self.list) / f64::from(self.total())
    }
}

/// A Spotify-mix session source.
pub struct SpotifySource {
    ns: Arc<Namespace>,
    mix: Mix,
    /// This session's private mutation directory (pre-created by
    /// [`SpotifySource::private_dir_for`] at bulk-load time).
    private_dir: String,
    created: VecDeque<String>,
    /// Queued subtree-burst operations, drained before sampling the mix.
    burst: VecDeque<FsOp>,
    seq: u64,
    /// Probability that a delete pick expands into a *subtree burst*: build
    /// a small directory tree under the private dir, then remove it with a
    /// recursive delete (half the time via a directory rename first). Keeps
    /// the recursive namenode paths (the subtree operations protocol) hot
    /// under trace-shaped load without distorting the published op mix.
    pub subtree_burst: f64,
    /// Stop after this many issued ops (`None` = run forever).
    pub max_ops: Option<u64>,
    issued: u64,
}

impl SpotifySource {
    /// Creates a session with id `session_id` over the shared namespace.
    pub fn new(ns: Arc<Namespace>, mix: Mix, session_id: u64) -> Self {
        SpotifySource {
            ns,
            mix,
            private_dir: Self::private_dir_for(session_id),
            created: VecDeque::new(),
            burst: VecDeque::new(),
            seq: 0,
            subtree_burst: 1.0 / 16.0,
            max_ops: None,
            issued: 0,
        }
    }

    /// The private directory a session mutates under; pre-create it when
    /// bulk-loading.
    pub fn private_dir_for(session_id: u64) -> String {
        format!("/load/s{session_id}")
    }

    fn path(&self, s: &str) -> FsPath {
        FsPath::parse(s).expect("generated paths are valid")
    }

    /// Queues a subtree burst: grow `t{n}` (two levels, two files), then
    /// remove it — directly, or after renaming it to `u{n}` first.
    fn queue_subtree_burst(&mut self, rng: &mut StdRng) {
        self.seq += 1;
        let n = self.seq;
        let root = format!("{}/t{n}", self.private_dir);
        self.burst.push_back(FsOp::Mkdir { path: self.path(&root) });
        self.burst.push_back(FsOp::Mkdir { path: self.path(&format!("{root}/sub")) });
        self.burst.push_back(FsOp::Create { path: self.path(&format!("{root}/a")), size: 0 });
        self.burst.push_back(FsOp::Create { path: self.path(&format!("{root}/sub/b")), size: 0 });
        if rng.gen_bool(0.5) {
            let moved = format!("{}/u{n}", self.private_dir);
            self.burst.push_back(FsOp::Rename { src: self.path(&root), dst: self.path(&moved) });
            self.burst.push_back(FsOp::Delete { path: self.path(&moved), recursive: true });
        } else {
            self.burst.push_back(FsOp::Delete { path: self.path(&root), recursive: true });
        }
    }
}

impl OpSource for SpotifySource {
    fn next_op(&mut self, rng: &mut StdRng, _now: SimTime) -> Option<FsOp> {
        if let Some(max) = self.max_ops {
            if self.issued >= max {
                return None;
            }
        }
        self.issued += 1;
        if let Some(op) = self.burst.pop_front() {
            return Some(op);
        }
        let m = self.mix;
        let mut pick = rng.gen_range(0..m.total());
        let mut take = |w: u32| {
            if pick < w {
                true
            } else {
                pick -= w;
                false
            }
        };
        let op = if take(m.open) {
            FsOp::Open { path: self.path(self.ns.sample_file(rng)) }
        } else if take(m.stat) {
            FsOp::Stat { path: self.path(self.ns.sample_file(rng)) }
        } else if take(m.list) {
            FsOp::List { path: self.path(self.ns.sample_dir(rng)) }
        } else if take(m.create) {
            self.seq += 1;
            FsOp::Create { path: self.path(&format!("{}/f{}", self.private_dir, self.seq)), size: 0 }
        } else if take(m.delete) {
            if self.subtree_burst > 0.0 && rng.gen_bool(self.subtree_burst) {
                self.queue_subtree_burst(rng);
                self.burst.pop_front().expect("burst queued")
            } else {
                match self.created.pop_front() {
                    Some(p) => FsOp::Delete { path: self.path(&p), recursive: false },
                    // Nothing created yet: substitute a read (keeps the loop hot).
                    None => FsOp::Stat { path: self.path(self.ns.sample_file(rng)) },
                }
            }
        } else if take(m.set_perm) {
            // Permission changes target uniformly random files (chmod storms
            // on one hot file are not a trace behaviour) or the session's
            // own files.
            match self.created.front() {
                Some(p) if rng.gen_bool(0.5) => {
                    let p = p.clone();
                    FsOp::SetPerm { path: self.path(&p), perm: 0o640 }
                }
                _ => {
                    let idx = rng.gen_range(0..self.ns.files.len());
                    FsOp::SetPerm { path: self.path(&self.ns.files[idx].clone()), perm: 0o640 }
                }
            }
        } else if take(m.rename) {
            match self.created.pop_front() {
                Some(p) => {
                    self.seq += 1;
                    let dst = format!("{}/r{}", self.private_dir, self.seq);
                    FsOp::Rename { src: self.path(&p), dst: self.path(&dst) }
                }
                None => FsOp::Open { path: self.path(self.ns.sample_file(rng)) },
            }
        } else {
            self.seq += 1;
            FsOp::Mkdir { path: self.path(&format!("{}/d{}", self.private_dir, self.seq)) }
        };
        Some(op)
    }

    fn on_result(&mut self, op: &FsOp, result: &FsResult) {
        if result.is_ok() {
            if let FsOp::Create { path, .. } | FsOp::Rename { dst: path, .. } = op {
                // Only individual files directly under the private dir feed
                // the delete/rename/chmod recycling queue (`f{n}` creates,
                // `r{n}` rename targets). Subtree-burst paths (`t{n}`,
                // `u{n}` and everything beneath) are consumed by their own
                // recursive delete — recycling them would make later
                // singleton ops target already-removed files.
                let p = path.to_string();
                if let Some(name) = p.strip_prefix(&format!("{}/", self.private_dir)) {
                    if !name.contains('/') && (name.starts_with('f') || name.starts_with('r')) {
                        self.created.push_back(p);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::namespace::NamespaceSpec;
    use hopsfs::OpKind;
    use rand::SeedableRng;

    fn source() -> SpotifySource {
        let ns = Arc::new(Namespace::generate(&NamespaceSpec::default()));
        SpotifySource::new(ns, Mix::SPOTIFY, 7)
    }

    #[test]
    fn mix_is_read_heavy() {
        assert!((Mix::SPOTIFY.read_fraction() - 0.90).abs() < 0.05);
        assert_eq!(Mix::SPOTIFY.total(), 10_000);
    }

    #[test]
    fn empirical_mix_matches_weights() {
        let mut s = source();
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = std::collections::HashMap::new();
        for _ in 0..20_000 {
            let op = s.next_op(&mut rng, SimTime::ZERO).unwrap();
            *counts.entry(op.kind()).or_insert(0u32) += 1;
            // Feed creates back so deletes/renames have targets.
            if matches!(op.kind(), OpKind::Create) {
                s.on_result(&op, &Ok(hopsfs::FsOk::Done));
            }
        }
        let frac = |k: OpKind| f64::from(counts.get(&k).copied().unwrap_or(0)) / 20_000.0;
        assert!((frac(OpKind::Open) - 0.45).abs() < 0.02, "open {}", frac(OpKind::Open));
        assert!((frac(OpKind::Stat) - 0.30).abs() < 0.03, "stat {}", frac(OpKind::Stat));
        assert!((frac(OpKind::List) - 0.15).abs() < 0.01, "list {}", frac(OpKind::List));
        assert!(frac(OpKind::Create) > 0.02 && frac(OpKind::Create) < 0.04);
    }

    #[test]
    fn mutations_stay_in_private_dir() {
        let mut s = source();
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..5_000 {
            let op = s.next_op(&mut rng, SimTime::ZERO).unwrap();
            if op.kind().is_mutation() && op.kind() != OpKind::SetPerm {
                assert!(
                    op.path().to_string().starts_with("/load/s7"),
                    "mutation escaped private dir: {op:?}"
                );
            }
            if matches!(op.kind(), OpKind::Create) {
                s.on_result(&op, &Ok(hopsfs::FsOk::Done));
            }
        }
    }

    /// The seeded subtree mix emits recursive deletes (and rename-then-
    /// delete sequences) confined to the private dir, and every burst root
    /// it grows is eventually removed by a recursive delete.
    #[test]
    fn subtree_bursts_emit_recursive_deletes_and_balance() {
        let mut s = source();
        s.subtree_burst = 1.0; // every delete pick bursts
        let mut rng = StdRng::seed_from_u64(4);
        let mut grown = std::collections::HashSet::new();
        let mut recursive_deletes = 0u32;
        for _ in 0..20_000 {
            let op = s.next_op(&mut rng, SimTime::ZERO).unwrap();
            match &op {
                FsOp::Mkdir { path } => {
                    let p = path.to_string();
                    if p.starts_with("/load/s7/t") && !p.contains("/sub") {
                        grown.insert(p);
                    }
                }
                FsOp::Rename { src, dst } if grown.remove(&src.to_string()) => {
                    grown.insert(dst.to_string());
                }
                FsOp::Delete { path, recursive: true } => {
                    recursive_deletes += 1;
                    assert!(
                        grown.remove(&path.to_string()),
                        "recursive delete of a root never grown: {path}"
                    );
                }
                _ => {}
            }
            s.on_result(&op, &Ok(hopsfs::FsOk::Done));
        }
        assert!(recursive_deletes > 100, "bursts never fired: {recursive_deletes}");
        assert!(grown.len() <= 1, "burst roots left behind: {grown:?}");
    }

    /// Burst-internal creates must not leak into the singleton-delete
    /// recycling queue: after a burst's recursive delete, no later
    /// non-recursive op may target a path under a removed burst root.
    #[test]
    fn burst_paths_do_not_recycle_into_singleton_ops() {
        let mut s = source();
        s.subtree_burst = 1.0;
        let mut rng = StdRng::seed_from_u64(5);
        let mut removed_roots: Vec<String> = Vec::new();
        for _ in 0..20_000 {
            let op = s.next_op(&mut rng, SimTime::ZERO).unwrap();
            match &op {
                FsOp::Delete { path, recursive: true } => {
                    removed_roots.push(format!("{path}/"));
                }
                FsOp::Delete { path, recursive: false }
                | FsOp::SetPerm { path, .. }
                | FsOp::Rename { src: path, .. } => {
                    let p = path.to_string();
                    assert!(
                        !removed_roots.iter().any(|r| p.starts_with(r.as_str())),
                        "singleton op targets removed subtree: {op:?}"
                    );
                }
                _ => {}
            }
            s.on_result(&op, &Ok(hopsfs::FsOk::Done));
        }
    }

    #[test]
    fn max_ops_terminates_session() {
        let mut s = source();
        s.max_ops = Some(5);
        let mut rng = StdRng::seed_from_u64(3);
        let mut n = 0;
        while s.next_op(&mut rng, SimTime::ZERO).is_some() {
            n += 1;
        }
        assert_eq!(n, 5);
    }
}
