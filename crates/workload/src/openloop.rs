//! The overload-experiment operation mix: an unbounded stream of cheap
//! metadata operations for open-loop clients ([`hopsfs::OpenLoopClientActor`]).
//!
//! The mix is interactive-shaped — mostly stats/creates with occasional
//! mkdirs and deletes inside a session-private directory — so offered load
//! translates directly into namenode worker demand without subtree
//! contention between sessions. The stream is infinite by default; cap it
//! with [`OverloadSource::max_ops`] when the harness needs the session to
//! drain (e.g. run-to-quiescence chaos tests).

use crate::namespace::Namespace;
use hopsfs::client::OpSource;
use hopsfs::{FsOp, FsPath};
use rand::rngs::StdRng;
use rand::Rng;
use simnet::SimTime;
use std::sync::Arc;

/// Open-loop overload mix: 50% stat, 25% create, 15% open, 10% mkdir.
pub struct OverloadSource {
    ns: Arc<Namespace>,
    private_dir: String,
    seq: u64,
    issued: u64,
    /// Stop after this many ops (`None` = infinite stream).
    pub max_ops: Option<u64>,
}

impl OverloadSource {
    /// Creates a session; pre-create its private directory
    /// ([`OverloadSource::private_dir_for`]) at bulk-load time.
    pub fn new(ns: Arc<Namespace>, session_id: u64) -> Self {
        OverloadSource {
            ns,
            private_dir: Self::private_dir_for(session_id),
            seq: 0,
            issued: 0,
            max_ops: None,
        }
    }

    /// The session's private directory (pre-create at bulk load).
    pub fn private_dir_for(session_id: u64) -> String {
        format!("/ol/s{session_id}")
    }
}

impl OpSource for OverloadSource {
    fn next_op(&mut self, rng: &mut StdRng, _now: SimTime) -> Option<FsOp> {
        if let Some(max) = self.max_ops {
            if self.issued >= max {
                return None;
            }
        }
        self.issued += 1;
        let p = |s: &str| FsPath::parse(s).expect("generated paths are valid");
        let roll: u32 = rng.gen_range(0..100);
        let op = if roll < 50 {
            FsOp::Stat { path: p(self.ns.sample_file(rng)) }
        } else if roll < 75 {
            self.seq += 1;
            FsOp::Create { path: p(&format!("{}/f{}", self.private_dir, self.seq)), size: 0 }
        } else if roll < 90 {
            FsOp::Open { path: p(self.ns.sample_file(rng)) }
        } else {
            self.seq += 1;
            FsOp::Mkdir { path: p(&format!("{}/d{}", self.private_dir, self.seq)) }
        };
        Some(op)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::namespace::NamespaceSpec;
    use rand::SeedableRng;

    #[test]
    fn stream_is_deterministic_per_seed_and_infinite() {
        let ns = Arc::new(Namespace::generate(&NamespaceSpec::default()));
        let run = |seed: u64| -> Vec<String> {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut s = OverloadSource::new(Arc::clone(&ns), 3);
            (0..200)
                .map(|_| format!("{:?}", s.next_op(&mut rng, SimTime::ZERO).expect("infinite")))
                .collect()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn max_ops_caps_the_stream() {
        let ns = Arc::new(Namespace::generate(&NamespaceSpec::default()));
        let mut rng = StdRng::seed_from_u64(1);
        let mut s = OverloadSource::new(ns, 0);
        s.max_ops = Some(5);
        let mut n = 0;
        while s.next_op(&mut rng, SimTime::ZERO).is_some() {
            n += 1;
        }
        assert_eq!(n, 5);
    }
}
