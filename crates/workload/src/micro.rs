//! Single-operation micro-benchmarks (the paper's Figure 7 and Figure 9
//! workloads): mkdir, createFile, readFile, deleteFile.

use crate::namespace::Namespace;
use hopsfs::client::OpSource;
use hopsfs::{FsOp, FsPath};
use rand::rngs::StdRng;
use simnet::SimTime;
use std::rc::Rc;

/// Which single operation the session repeats.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MicroOp {
    /// `mkdir` of fresh directories.
    Mkdir,
    /// `createFile` of fresh empty files.
    Create,
    /// `readFile` (open) of existing files.
    Read,
    /// `deleteFile` of pre-created files.
    Delete,
}

impl MicroOp {
    /// All micro-benchmarks in the paper's Figure 7 order.
    pub const ALL: [MicroOp; 4] = [MicroOp::Mkdir, MicroOp::Create, MicroOp::Delete, MicroOp::Read];

    /// Figure label.
    pub fn name(self) -> &'static str {
        match self {
            MicroOp::Mkdir => "mkdir",
            MicroOp::Create => "createFile",
            MicroOp::Read => "readFile",
            MicroOp::Delete => "deleteFile",
        }
    }
}

/// A micro-benchmark session.
pub struct MicroSource {
    op: MicroOp,
    ns: Rc<Namespace>,
    private_dir: String,
    seq: u64,
    /// For `Delete`: number of pre-created files available (created at bulk
    /// load under the private dir as `p0..p{n-1}`); the session ends when
    /// they run out.
    pub precreated: u64,
    /// Stop after this many ops (`None` = until exhausted/forever).
    pub max_ops: Option<u64>,
    issued: u64,
}

impl MicroSource {
    /// Creates a session. For `Delete`, pre-create `precreated` files named
    /// `{private_dir}/p{i}` at bulk-load time (see
    /// [`MicroSource::precreate_paths`]).
    pub fn new(op: MicroOp, ns: Rc<Namespace>, session_id: u64, precreated: u64) -> Self {
        MicroSource {
            op,
            ns,
            private_dir: Self::private_dir_for(session_id),
            seq: 0,
            precreated,
            max_ops: None,
            issued: 0,
        }
    }

    /// The session's private directory (pre-create at bulk load).
    pub fn private_dir_for(session_id: u64) -> String {
        format!("/micro/s{session_id}")
    }

    /// Paths to pre-create for a `Delete` session.
    pub fn precreate_paths(session_id: u64, n: u64) -> impl Iterator<Item = String> {
        let dir = Self::private_dir_for(session_id);
        (0..n).map(move |i| format!("{dir}/p{i}"))
    }
}

impl OpSource for MicroSource {
    fn next_op(&mut self, rng: &mut StdRng, _now: SimTime) -> Option<FsOp> {
        if let Some(max) = self.max_ops {
            if self.issued >= max {
                return None;
            }
        }
        self.issued += 1;
        let p = |s: &str| FsPath::parse(s).expect("generated paths are valid");
        let op = match self.op {
            MicroOp::Mkdir => {
                self.seq += 1;
                FsOp::Mkdir { path: p(&format!("{}/d{}", self.private_dir, self.seq)) }
            }
            MicroOp::Create => {
                self.seq += 1;
                FsOp::Create { path: p(&format!("{}/f{}", self.private_dir, self.seq)), size: 0 }
            }
            MicroOp::Read => FsOp::Open { path: p(self.ns.sample_file(rng)) },
            MicroOp::Delete => {
                if self.seq >= self.precreated {
                    return None;
                }
                let path = format!("{}/p{}", self.private_dir, self.seq);
                self.seq += 1;
                FsOp::Delete { path: p(&path), recursive: false }
            }
        };
        Some(op)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::namespace::NamespaceSpec;
    use hopsfs::OpKind;
    use rand::SeedableRng;

    fn ns() -> Rc<Namespace> {
        Rc::new(Namespace::generate(&NamespaceSpec::default()))
    }

    #[test]
    fn each_micro_op_emits_its_kind() {
        let mut rng = StdRng::seed_from_u64(1);
        for (op, kind) in [
            (MicroOp::Mkdir, OpKind::Mkdir),
            (MicroOp::Create, OpKind::Create),
            (MicroOp::Read, OpKind::Open),
        ] {
            let mut s = MicroSource::new(op, ns(), 1, 0);
            for _ in 0..10 {
                assert_eq!(s.next_op(&mut rng, SimTime::ZERO).unwrap().kind(), kind);
            }
        }
    }

    #[test]
    fn create_paths_are_unique() {
        let mut s = MicroSource::new(MicroOp::Create, ns(), 2, 0);
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..100 {
            let op = s.next_op(&mut rng, SimTime::ZERO).unwrap();
            assert!(seen.insert(op.path().to_string()), "duplicate create path");
        }
    }

    #[test]
    fn delete_consumes_precreated_then_ends() {
        let mut s = MicroSource::new(MicroOp::Delete, ns(), 3, 4);
        let mut rng = StdRng::seed_from_u64(1);
        let expected: Vec<String> = MicroSource::precreate_paths(3, 4).collect();
        for want in &expected {
            let op = s.next_op(&mut rng, SimTime::ZERO).unwrap();
            assert_eq!(&op.path().to_string(), want);
        }
        assert!(s.next_op(&mut rng, SimTime::ZERO).is_none());
    }
}
