//! Single-operation micro-benchmarks (the paper's Figure 7 and Figure 9
//! workloads): mkdir, createFile, readFile, deleteFile.

use crate::namespace::Namespace;
use hopsfs::client::OpSource;
use hopsfs::{FsOp, FsPath};
use rand::rngs::StdRng;
use simnet::SimTime;
use std::sync::Arc;

/// Which single operation the session repeats.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MicroOp {
    /// `mkdir` of fresh directories.
    Mkdir,
    /// `createFile` of fresh empty files.
    Create,
    /// `readFile` (open) of existing files.
    Read,
    /// `deleteFile` of pre-created files.
    Delete,
    /// Subtree micro-op: repeatedly grow a small directory tree, rename it,
    /// and remove it with a recursive delete — exercising the subtree
    /// operations protocol (lock, batched transactions, closing rename or
    /// delete). Not part of [`MicroOp::ALL`] (it is not one of the paper's
    /// Figure 7 single-call benchmarks); select it explicitly.
    Subtree,
}

impl MicroOp {
    /// All micro-benchmarks in the paper's Figure 7 order.
    pub const ALL: [MicroOp; 4] = [MicroOp::Mkdir, MicroOp::Create, MicroOp::Delete, MicroOp::Read];

    /// Figure label.
    pub fn name(self) -> &'static str {
        match self {
            MicroOp::Mkdir => "mkdir",
            MicroOp::Create => "createFile",
            MicroOp::Read => "readFile",
            MicroOp::Delete => "deleteFile",
            MicroOp::Subtree => "subtreeOps",
        }
    }
}

/// A micro-benchmark session.
pub struct MicroSource {
    op: MicroOp,
    ns: Arc<Namespace>,
    private_dir: String,
    /// Queued ops of the current `Subtree` round.
    round: std::collections::VecDeque<FsOp>,
    seq: u64,
    /// For `Delete`: number of pre-created files available (created at bulk
    /// load under the private dir as `p0..p{n-1}`); the session ends when
    /// they run out.
    pub precreated: u64,
    /// Stop after this many ops (`None` = until exhausted/forever).
    pub max_ops: Option<u64>,
    issued: u64,
}

impl MicroSource {
    /// Creates a session. For `Delete`, pre-create `precreated` files named
    /// `{private_dir}/p{i}` at bulk-load time (see
    /// [`MicroSource::precreate_paths`]).
    pub fn new(op: MicroOp, ns: Arc<Namespace>, session_id: u64, precreated: u64) -> Self {
        MicroSource {
            op,
            ns,
            private_dir: Self::private_dir_for(session_id),
            round: std::collections::VecDeque::new(),
            seq: 0,
            precreated,
            max_ops: None,
            issued: 0,
        }
    }

    /// The session's private directory (pre-create at bulk load).
    pub fn private_dir_for(session_id: u64) -> String {
        format!("/micro/s{session_id}")
    }

    /// Paths to pre-create for a `Delete` session.
    pub fn precreate_paths(session_id: u64, n: u64) -> impl Iterator<Item = String> {
        let dir = Self::private_dir_for(session_id);
        (0..n).map(move |i| format!("{dir}/p{i}"))
    }
}

impl OpSource for MicroSource {
    fn next_op(&mut self, rng: &mut StdRng, _now: SimTime) -> Option<FsOp> {
        if let Some(max) = self.max_ops {
            if self.issued >= max {
                return None;
            }
        }
        self.issued += 1;
        let p = |s: &str| FsPath::parse(s).expect("generated paths are valid");
        let op = match self.op {
            MicroOp::Mkdir => {
                self.seq += 1;
                FsOp::Mkdir { path: p(&format!("{}/d{}", self.private_dir, self.seq)) }
            }
            MicroOp::Create => {
                self.seq += 1;
                FsOp::Create { path: p(&format!("{}/f{}", self.private_dir, self.seq)), size: 0 }
            }
            MicroOp::Read => FsOp::Open { path: p(self.ns.sample_file(rng)) },
            MicroOp::Delete => {
                if self.seq >= self.precreated {
                    return None;
                }
                let path = format!("{}/p{}", self.private_dir, self.seq);
                self.seq += 1;
                FsOp::Delete { path: p(&path), recursive: false }
            }
            MicroOp::Subtree => {
                // One round = grow a two-level tree, rename it, recursively
                // delete it. Each call emits the round's next op.
                if self.round.is_empty() {
                    self.seq += 1;
                    let (d, n) = (&self.private_dir, self.seq);
                    self.round.extend([
                        FsOp::Mkdir { path: p(&format!("{d}/t{n}")) },
                        FsOp::Mkdir { path: p(&format!("{d}/t{n}/s")) },
                        FsOp::Create { path: p(&format!("{d}/t{n}/a")), size: 0 },
                        FsOp::Create { path: p(&format!("{d}/t{n}/s/b")), size: 0 },
                        FsOp::Rename { src: p(&format!("{d}/t{n}")), dst: p(&format!("{d}/m{n}")) },
                        FsOp::Delete { path: p(&format!("{d}/m{n}")), recursive: true },
                    ]);
                }
                self.round.pop_front().expect("round queued")
            }
        };
        Some(op)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::namespace::NamespaceSpec;
    use hopsfs::OpKind;
    use rand::SeedableRng;

    fn ns() -> Arc<Namespace> {
        Arc::new(Namespace::generate(&NamespaceSpec::default()))
    }

    #[test]
    fn each_micro_op_emits_its_kind() {
        let mut rng = StdRng::seed_from_u64(1);
        for (op, kind) in [
            (MicroOp::Mkdir, OpKind::Mkdir),
            (MicroOp::Create, OpKind::Create),
            (MicroOp::Read, OpKind::Open),
        ] {
            let mut s = MicroSource::new(op, ns(), 1, 0);
            for _ in 0..10 {
                assert_eq!(s.next_op(&mut rng, SimTime::ZERO).unwrap().kind(), kind);
            }
        }
    }

    #[test]
    fn create_paths_are_unique() {
        let mut s = MicroSource::new(MicroOp::Create, ns(), 2, 0);
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..100 {
            let op = s.next_op(&mut rng, SimTime::ZERO).unwrap();
            assert!(seen.insert(op.path().to_string()), "duplicate create path");
        }
    }

    /// A `Subtree` round is self-contained: everything it grows is under
    /// one fresh root, the root is renamed once, and the renamed root is
    /// removed by exactly one recursive delete.
    #[test]
    fn subtree_rounds_are_self_contained() {
        let mut s = MicroSource::new(MicroOp::Subtree, ns(), 4, 0);
        let mut rng = StdRng::seed_from_u64(1);
        for round in 1..=5u64 {
            let ops: Vec<FsOp> = (0..6).map(|_| s.next_op(&mut rng, SimTime::ZERO).unwrap()).collect();
            let root = format!("/micro/s4/t{round}");
            let moved = format!("/micro/s4/m{round}");
            assert!(ops[..4].iter().all(|o| o.path().to_string().starts_with(&root)));
            assert!(
                matches!(&ops[4], FsOp::Rename { src, dst }
                    if src.to_string() == root && dst.to_string() == moved),
                "round {round}: {:?}",
                ops[4]
            );
            assert!(
                matches!(&ops[5], FsOp::Delete { path, recursive: true }
                    if path.to_string() == moved),
                "round {round}: {:?}",
                ops[5]
            );
        }
    }

    #[test]
    fn delete_consumes_precreated_then_ends() {
        let mut s = MicroSource::new(MicroOp::Delete, ns(), 3, 4);
        let mut rng = StdRng::seed_from_u64(1);
        let expected: Vec<String> = MicroSource::precreate_paths(3, 4).collect();
        for want in &expected {
            let op = s.next_op(&mut rng, SimTime::ZERO).unwrap();
            assert_eq!(&op.path().to_string(), want);
        }
        assert!(s.next_op(&mut rng, SimTime::ZERO).is_none());
    }
}
