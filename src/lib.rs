//! Convenience facade over the HopsFS-CL reproduction workspace.
//!
//! Re-exports the member crates so examples and integration tests can use a
//! single dependency.

pub use cephsim;
pub use hopsfs;
pub use ndb;
pub use simnet;
pub use workload;
