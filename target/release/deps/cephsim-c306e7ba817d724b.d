/root/repo/target/release/deps/cephsim-c306e7ba817d724b.d: crates/cephsim/src/lib.rs crates/cephsim/src/client.rs crates/cephsim/src/config.rs crates/cephsim/src/deploy.rs crates/cephsim/src/mds.rs crates/cephsim/src/mon.rs crates/cephsim/src/namespace.rs crates/cephsim/src/osd.rs

/root/repo/target/release/deps/libcephsim-c306e7ba817d724b.rlib: crates/cephsim/src/lib.rs crates/cephsim/src/client.rs crates/cephsim/src/config.rs crates/cephsim/src/deploy.rs crates/cephsim/src/mds.rs crates/cephsim/src/mon.rs crates/cephsim/src/namespace.rs crates/cephsim/src/osd.rs

/root/repo/target/release/deps/libcephsim-c306e7ba817d724b.rmeta: crates/cephsim/src/lib.rs crates/cephsim/src/client.rs crates/cephsim/src/config.rs crates/cephsim/src/deploy.rs crates/cephsim/src/mds.rs crates/cephsim/src/mon.rs crates/cephsim/src/namespace.rs crates/cephsim/src/osd.rs

crates/cephsim/src/lib.rs:
crates/cephsim/src/client.rs:
crates/cephsim/src/config.rs:
crates/cephsim/src/deploy.rs:
crates/cephsim/src/mds.rs:
crates/cephsim/src/mon.rs:
crates/cephsim/src/namespace.rs:
crates/cephsim/src/osd.rs:
