/root/repo/target/release/deps/bench-8709ab51c91e888d.d: crates/bench/src/lib.rs crates/bench/src/harness.rs crates/bench/src/report.rs crates/bench/src/setup.rs crates/bench/src/sweep.rs

/root/repo/target/release/deps/libbench-8709ab51c91e888d.rlib: crates/bench/src/lib.rs crates/bench/src/harness.rs crates/bench/src/report.rs crates/bench/src/setup.rs crates/bench/src/sweep.rs

/root/repo/target/release/deps/libbench-8709ab51c91e888d.rmeta: crates/bench/src/lib.rs crates/bench/src/harness.rs crates/bench/src/report.rs crates/bench/src/setup.rs crates/bench/src/sweep.rs

crates/bench/src/lib.rs:
crates/bench/src/harness.rs:
crates/bench/src/report.rs:
crates/bench/src/setup.rs:
crates/bench/src/sweep.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
