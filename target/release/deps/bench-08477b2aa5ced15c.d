/root/repo/target/release/deps/bench-08477b2aa5ced15c.d: crates/bench/src/lib.rs crates/bench/src/harness.rs crates/bench/src/report.rs crates/bench/src/setup.rs crates/bench/src/sweep.rs

/root/repo/target/release/deps/libbench-08477b2aa5ced15c.rlib: crates/bench/src/lib.rs crates/bench/src/harness.rs crates/bench/src/report.rs crates/bench/src/setup.rs crates/bench/src/sweep.rs

/root/repo/target/release/deps/libbench-08477b2aa5ced15c.rmeta: crates/bench/src/lib.rs crates/bench/src/harness.rs crates/bench/src/report.rs crates/bench/src/setup.rs crates/bench/src/sweep.rs

crates/bench/src/lib.rs:
crates/bench/src/harness.rs:
crates/bench/src/report.rs:
crates/bench/src/setup.rs:
crates/bench/src/sweep.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
