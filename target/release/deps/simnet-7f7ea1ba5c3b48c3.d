/root/repo/target/release/deps/simnet-7f7ea1ba5c3b48c3.d: crates/simnet/src/lib.rs crates/simnet/src/cpu.rs crates/simnet/src/metrics.rs crates/simnet/src/nemesis.rs crates/simnet/src/retry.rs crates/simnet/src/sim.rs crates/simnet/src/time.rs crates/simnet/src/topology.rs

/root/repo/target/release/deps/libsimnet-7f7ea1ba5c3b48c3.rlib: crates/simnet/src/lib.rs crates/simnet/src/cpu.rs crates/simnet/src/metrics.rs crates/simnet/src/nemesis.rs crates/simnet/src/retry.rs crates/simnet/src/sim.rs crates/simnet/src/time.rs crates/simnet/src/topology.rs

/root/repo/target/release/deps/libsimnet-7f7ea1ba5c3b48c3.rmeta: crates/simnet/src/lib.rs crates/simnet/src/cpu.rs crates/simnet/src/metrics.rs crates/simnet/src/nemesis.rs crates/simnet/src/retry.rs crates/simnet/src/sim.rs crates/simnet/src/time.rs crates/simnet/src/topology.rs

crates/simnet/src/lib.rs:
crates/simnet/src/cpu.rs:
crates/simnet/src/metrics.rs:
crates/simnet/src/nemesis.rs:
crates/simnet/src/retry.rs:
crates/simnet/src/sim.rs:
crates/simnet/src/time.rs:
crates/simnet/src/topology.rs:
