/root/repo/target/release/deps/hopsfs_cl-99bd806f5a7f9b98.d: src/lib.rs

/root/repo/target/release/deps/libhopsfs_cl-99bd806f5a7f9b98.rlib: src/lib.rs

/root/repo/target/release/deps/libhopsfs_cl-99bd806f5a7f9b98.rmeta: src/lib.rs

src/lib.rs:
