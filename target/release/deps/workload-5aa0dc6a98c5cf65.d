/root/repo/target/release/deps/workload-5aa0dc6a98c5cf65.d: crates/workload/src/lib.rs crates/workload/src/micro.rs crates/workload/src/namespace.rs crates/workload/src/spotify.rs

/root/repo/target/release/deps/libworkload-5aa0dc6a98c5cf65.rlib: crates/workload/src/lib.rs crates/workload/src/micro.rs crates/workload/src/namespace.rs crates/workload/src/spotify.rs

/root/repo/target/release/deps/libworkload-5aa0dc6a98c5cf65.rmeta: crates/workload/src/lib.rs crates/workload/src/micro.rs crates/workload/src/namespace.rs crates/workload/src/spotify.rs

crates/workload/src/lib.rs:
crates/workload/src/micro.rs:
crates/workload/src/namespace.rs:
crates/workload/src/spotify.rs:
