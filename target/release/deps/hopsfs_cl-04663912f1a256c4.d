/root/repo/target/release/deps/hopsfs_cl-04663912f1a256c4.d: src/lib.rs

/root/repo/target/release/deps/libhopsfs_cl-04663912f1a256c4.rlib: src/lib.rs

/root/repo/target/release/deps/libhopsfs_cl-04663912f1a256c4.rmeta: src/lib.rs

src/lib.rs:
