/root/repo/target/release/deps/workload-b69bec096e74dfef.d: crates/workload/src/lib.rs crates/workload/src/micro.rs crates/workload/src/namespace.rs crates/workload/src/spotify.rs

/root/repo/target/release/deps/libworkload-b69bec096e74dfef.rlib: crates/workload/src/lib.rs crates/workload/src/micro.rs crates/workload/src/namespace.rs crates/workload/src/spotify.rs

/root/repo/target/release/deps/libworkload-b69bec096e74dfef.rmeta: crates/workload/src/lib.rs crates/workload/src/micro.rs crates/workload/src/namespace.rs crates/workload/src/spotify.rs

crates/workload/src/lib.rs:
crates/workload/src/micro.rs:
crates/workload/src/namespace.rs:
crates/workload/src/spotify.rs:
