/root/repo/target/release/deps/simnet-867ae82a195520a6.d: crates/simnet/src/lib.rs crates/simnet/src/cpu.rs crates/simnet/src/metrics.rs crates/simnet/src/nemesis.rs crates/simnet/src/retry.rs crates/simnet/src/sim.rs crates/simnet/src/time.rs crates/simnet/src/topology.rs

/root/repo/target/release/deps/libsimnet-867ae82a195520a6.rlib: crates/simnet/src/lib.rs crates/simnet/src/cpu.rs crates/simnet/src/metrics.rs crates/simnet/src/nemesis.rs crates/simnet/src/retry.rs crates/simnet/src/sim.rs crates/simnet/src/time.rs crates/simnet/src/topology.rs

/root/repo/target/release/deps/libsimnet-867ae82a195520a6.rmeta: crates/simnet/src/lib.rs crates/simnet/src/cpu.rs crates/simnet/src/metrics.rs crates/simnet/src/nemesis.rs crates/simnet/src/retry.rs crates/simnet/src/sim.rs crates/simnet/src/time.rs crates/simnet/src/topology.rs

crates/simnet/src/lib.rs:
crates/simnet/src/cpu.rs:
crates/simnet/src/metrics.rs:
crates/simnet/src/nemesis.rs:
crates/simnet/src/retry.rs:
crates/simnet/src/sim.rs:
crates/simnet/src/time.rs:
crates/simnet/src/topology.rs:
