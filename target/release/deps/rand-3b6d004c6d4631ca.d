/root/repo/target/release/deps/rand-3b6d004c6d4631ca.d: vendor/rand/src/lib.rs

/root/repo/target/release/deps/librand-3b6d004c6d4631ca.rlib: vendor/rand/src/lib.rs

/root/repo/target/release/deps/librand-3b6d004c6d4631ca.rmeta: vendor/rand/src/lib.rs

vendor/rand/src/lib.rs:
