/root/repo/target/release/deps/failures_drill-ed927ffaa86f1079.d: crates/bench/benches/failures_drill.rs

/root/repo/target/release/deps/failures_drill-ed927ffaa86f1079: crates/bench/benches/failures_drill.rs

crates/bench/benches/failures_drill.rs:
