/root/repo/target/release/deps/ndb-c29e0bd752bdfcb2.d: crates/ndb/src/lib.rs crates/ndb/src/client.rs crates/ndb/src/codec.rs crates/ndb/src/config.rs crates/ndb/src/datanode.rs crates/ndb/src/deploy.rs crates/ndb/src/locks.rs crates/ndb/src/messages.rs crates/ndb/src/mgmt.rs crates/ndb/src/partition.rs crates/ndb/src/routing.rs crates/ndb/src/schema.rs crates/ndb/src/testkit.rs crates/ndb/src/view.rs

/root/repo/target/release/deps/libndb-c29e0bd752bdfcb2.rlib: crates/ndb/src/lib.rs crates/ndb/src/client.rs crates/ndb/src/codec.rs crates/ndb/src/config.rs crates/ndb/src/datanode.rs crates/ndb/src/deploy.rs crates/ndb/src/locks.rs crates/ndb/src/messages.rs crates/ndb/src/mgmt.rs crates/ndb/src/partition.rs crates/ndb/src/routing.rs crates/ndb/src/schema.rs crates/ndb/src/testkit.rs crates/ndb/src/view.rs

/root/repo/target/release/deps/libndb-c29e0bd752bdfcb2.rmeta: crates/ndb/src/lib.rs crates/ndb/src/client.rs crates/ndb/src/codec.rs crates/ndb/src/config.rs crates/ndb/src/datanode.rs crates/ndb/src/deploy.rs crates/ndb/src/locks.rs crates/ndb/src/messages.rs crates/ndb/src/mgmt.rs crates/ndb/src/partition.rs crates/ndb/src/routing.rs crates/ndb/src/schema.rs crates/ndb/src/testkit.rs crates/ndb/src/view.rs

crates/ndb/src/lib.rs:
crates/ndb/src/client.rs:
crates/ndb/src/codec.rs:
crates/ndb/src/config.rs:
crates/ndb/src/datanode.rs:
crates/ndb/src/deploy.rs:
crates/ndb/src/locks.rs:
crates/ndb/src/messages.rs:
crates/ndb/src/mgmt.rs:
crates/ndb/src/partition.rs:
crates/ndb/src/routing.rs:
crates/ndb/src/schema.rs:
crates/ndb/src/testkit.rs:
crates/ndb/src/view.rs:
