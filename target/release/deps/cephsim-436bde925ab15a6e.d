/root/repo/target/release/deps/cephsim-436bde925ab15a6e.d: crates/cephsim/src/lib.rs crates/cephsim/src/client.rs crates/cephsim/src/config.rs crates/cephsim/src/deploy.rs crates/cephsim/src/mds.rs crates/cephsim/src/mon.rs crates/cephsim/src/namespace.rs crates/cephsim/src/osd.rs

/root/repo/target/release/deps/libcephsim-436bde925ab15a6e.rlib: crates/cephsim/src/lib.rs crates/cephsim/src/client.rs crates/cephsim/src/config.rs crates/cephsim/src/deploy.rs crates/cephsim/src/mds.rs crates/cephsim/src/mon.rs crates/cephsim/src/namespace.rs crates/cephsim/src/osd.rs

/root/repo/target/release/deps/libcephsim-436bde925ab15a6e.rmeta: crates/cephsim/src/lib.rs crates/cephsim/src/client.rs crates/cephsim/src/config.rs crates/cephsim/src/deploy.rs crates/cephsim/src/mds.rs crates/cephsim/src/mon.rs crates/cephsim/src/namespace.rs crates/cephsim/src/osd.rs

crates/cephsim/src/lib.rs:
crates/cephsim/src/client.rs:
crates/cephsim/src/config.rs:
crates/cephsim/src/deploy.rs:
crates/cephsim/src/mds.rs:
crates/cephsim/src/mon.rs:
crates/cephsim/src/namespace.rs:
crates/cephsim/src/osd.rs:
