/root/repo/target/release/examples/nemesis_demo-cc62b99b68cd3098.d: examples/nemesis_demo.rs

/root/repo/target/release/examples/nemesis_demo-cc62b99b68cd3098: examples/nemesis_demo.rs

examples/nemesis_demo.rs:
