/root/repo/target/release/examples/quickstart-702b06ab133c8c90.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-702b06ab133c8c90: examples/quickstart.rs

examples/quickstart.rs:
