/root/repo/target/release/examples/az_failure_drill-66173110e8ace03b.d: examples/az_failure_drill.rs

/root/repo/target/release/examples/az_failure_drill-66173110e8ace03b: examples/az_failure_drill.rs

examples/az_failure_drill.rs:
