/root/repo/target/debug/examples/spotify_benchmark-cc4a3eaf2af38607.d: examples/spotify_benchmark.rs

/root/repo/target/debug/examples/spotify_benchmark-cc4a3eaf2af38607: examples/spotify_benchmark.rs

examples/spotify_benchmark.rs:
