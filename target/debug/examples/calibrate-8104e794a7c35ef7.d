/root/repo/target/debug/examples/calibrate-8104e794a7c35ef7.d: crates/bench/examples/calibrate.rs Cargo.toml

/root/repo/target/debug/examples/libcalibrate-8104e794a7c35ef7.rmeta: crates/bench/examples/calibrate.rs Cargo.toml

crates/bench/examples/calibrate.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
