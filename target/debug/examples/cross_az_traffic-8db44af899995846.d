/root/repo/target/debug/examples/cross_az_traffic-8db44af899995846.d: examples/cross_az_traffic.rs Cargo.toml

/root/repo/target/debug/examples/libcross_az_traffic-8db44af899995846.rmeta: examples/cross_az_traffic.rs Cargo.toml

examples/cross_az_traffic.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
