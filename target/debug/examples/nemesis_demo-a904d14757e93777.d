/root/repo/target/debug/examples/nemesis_demo-a904d14757e93777.d: examples/nemesis_demo.rs Cargo.toml

/root/repo/target/debug/examples/libnemesis_demo-a904d14757e93777.rmeta: examples/nemesis_demo.rs Cargo.toml

examples/nemesis_demo.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
