/root/repo/target/debug/examples/az_failure_drill-63a0f595ddbd2f97.d: examples/az_failure_drill.rs

/root/repo/target/debug/examples/az_failure_drill-63a0f595ddbd2f97: examples/az_failure_drill.rs

examples/az_failure_drill.rs:
