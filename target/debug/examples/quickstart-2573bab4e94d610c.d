/root/repo/target/debug/examples/quickstart-2573bab4e94d610c.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-2573bab4e94d610c: examples/quickstart.rs

examples/quickstart.rs:
