/root/repo/target/debug/examples/quickstart-14f1dcbc13bca73e.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-14f1dcbc13bca73e: examples/quickstart.rs

examples/quickstart.rs:
