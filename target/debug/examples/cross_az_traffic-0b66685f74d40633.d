/root/repo/target/debug/examples/cross_az_traffic-0b66685f74d40633.d: examples/cross_az_traffic.rs

/root/repo/target/debug/examples/cross_az_traffic-0b66685f74d40633: examples/cross_az_traffic.rs

examples/cross_az_traffic.rs:
