/root/repo/target/debug/examples/cross_az_traffic-47c3d33aadb82e19.d: examples/cross_az_traffic.rs

/root/repo/target/debug/examples/cross_az_traffic-47c3d33aadb82e19: examples/cross_az_traffic.rs

examples/cross_az_traffic.rs:
