/root/repo/target/debug/examples/spotify_benchmark-49d11fdbf4b30786.d: examples/spotify_benchmark.rs

/root/repo/target/debug/examples/spotify_benchmark-49d11fdbf4b30786: examples/spotify_benchmark.rs

examples/spotify_benchmark.rs:
