/root/repo/target/debug/examples/ndb_tour-24e51eff53745271.d: examples/ndb_tour.rs

/root/repo/target/debug/examples/ndb_tour-24e51eff53745271: examples/ndb_tour.rs

examples/ndb_tour.rs:
