/root/repo/target/debug/examples/nemesis_demo-3e8690772f8335bb.d: examples/nemesis_demo.rs

/root/repo/target/debug/examples/nemesis_demo-3e8690772f8335bb: examples/nemesis_demo.rs

examples/nemesis_demo.rs:
