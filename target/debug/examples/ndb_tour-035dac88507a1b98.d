/root/repo/target/debug/examples/ndb_tour-035dac88507a1b98.d: examples/ndb_tour.rs Cargo.toml

/root/repo/target/debug/examples/libndb_tour-035dac88507a1b98.rmeta: examples/ndb_tour.rs Cargo.toml

examples/ndb_tour.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
