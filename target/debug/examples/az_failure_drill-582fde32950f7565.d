/root/repo/target/debug/examples/az_failure_drill-582fde32950f7565.d: examples/az_failure_drill.rs

/root/repo/target/debug/examples/az_failure_drill-582fde32950f7565: examples/az_failure_drill.rs

examples/az_failure_drill.rs:
