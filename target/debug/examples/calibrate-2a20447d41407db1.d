/root/repo/target/debug/examples/calibrate-2a20447d41407db1.d: crates/bench/examples/calibrate.rs

/root/repo/target/debug/examples/calibrate-2a20447d41407db1: crates/bench/examples/calibrate.rs

crates/bench/examples/calibrate.rs:
