/root/repo/target/debug/examples/nemesis_demo-782c582245b2ecf6.d: examples/nemesis_demo.rs

/root/repo/target/debug/examples/nemesis_demo-782c582245b2ecf6: examples/nemesis_demo.rs

examples/nemesis_demo.rs:
