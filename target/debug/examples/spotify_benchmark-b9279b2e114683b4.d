/root/repo/target/debug/examples/spotify_benchmark-b9279b2e114683b4.d: examples/spotify_benchmark.rs Cargo.toml

/root/repo/target/debug/examples/libspotify_benchmark-b9279b2e114683b4.rmeta: examples/spotify_benchmark.rs Cargo.toml

examples/spotify_benchmark.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
