/root/repo/target/debug/examples/ndb_tour-b1fb0772f6440168.d: examples/ndb_tour.rs

/root/repo/target/debug/examples/ndb_tour-b1fb0772f6440168: examples/ndb_tour.rs

examples/ndb_tour.rs:
