/root/repo/target/debug/examples/az_failure_drill-8341b51333482c6a.d: examples/az_failure_drill.rs Cargo.toml

/root/repo/target/debug/examples/libaz_failure_drill-8341b51333482c6a.rmeta: examples/az_failure_drill.rs Cargo.toml

examples/az_failure_drill.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
