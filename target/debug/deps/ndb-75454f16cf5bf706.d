/root/repo/target/debug/deps/ndb-75454f16cf5bf706.d: crates/ndb/src/lib.rs crates/ndb/src/client.rs crates/ndb/src/codec.rs crates/ndb/src/config.rs crates/ndb/src/datanode.rs crates/ndb/src/deploy.rs crates/ndb/src/locks.rs crates/ndb/src/messages.rs crates/ndb/src/mgmt.rs crates/ndb/src/partition.rs crates/ndb/src/routing.rs crates/ndb/src/schema.rs crates/ndb/src/testkit.rs crates/ndb/src/view.rs

/root/repo/target/debug/deps/ndb-75454f16cf5bf706: crates/ndb/src/lib.rs crates/ndb/src/client.rs crates/ndb/src/codec.rs crates/ndb/src/config.rs crates/ndb/src/datanode.rs crates/ndb/src/deploy.rs crates/ndb/src/locks.rs crates/ndb/src/messages.rs crates/ndb/src/mgmt.rs crates/ndb/src/partition.rs crates/ndb/src/routing.rs crates/ndb/src/schema.rs crates/ndb/src/testkit.rs crates/ndb/src/view.rs

crates/ndb/src/lib.rs:
crates/ndb/src/client.rs:
crates/ndb/src/codec.rs:
crates/ndb/src/config.rs:
crates/ndb/src/datanode.rs:
crates/ndb/src/deploy.rs:
crates/ndb/src/locks.rs:
crates/ndb/src/messages.rs:
crates/ndb/src/mgmt.rs:
crates/ndb/src/partition.rs:
crates/ndb/src/routing.rs:
crates/ndb/src/schema.rs:
crates/ndb/src/testkit.rs:
crates/ndb/src/view.rs:
