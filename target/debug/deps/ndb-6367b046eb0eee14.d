/root/repo/target/debug/deps/ndb-6367b046eb0eee14.d: crates/ndb/src/lib.rs crates/ndb/src/client.rs crates/ndb/src/codec.rs crates/ndb/src/config.rs crates/ndb/src/datanode.rs crates/ndb/src/deploy.rs crates/ndb/src/locks.rs crates/ndb/src/messages.rs crates/ndb/src/mgmt.rs crates/ndb/src/partition.rs crates/ndb/src/routing.rs crates/ndb/src/schema.rs crates/ndb/src/testkit.rs crates/ndb/src/view.rs Cargo.toml

/root/repo/target/debug/deps/libndb-6367b046eb0eee14.rmeta: crates/ndb/src/lib.rs crates/ndb/src/client.rs crates/ndb/src/codec.rs crates/ndb/src/config.rs crates/ndb/src/datanode.rs crates/ndb/src/deploy.rs crates/ndb/src/locks.rs crates/ndb/src/messages.rs crates/ndb/src/mgmt.rs crates/ndb/src/partition.rs crates/ndb/src/routing.rs crates/ndb/src/schema.rs crates/ndb/src/testkit.rs crates/ndb/src/view.rs Cargo.toml

crates/ndb/src/lib.rs:
crates/ndb/src/client.rs:
crates/ndb/src/codec.rs:
crates/ndb/src/config.rs:
crates/ndb/src/datanode.rs:
crates/ndb/src/deploy.rs:
crates/ndb/src/locks.rs:
crates/ndb/src/messages.rs:
crates/ndb/src/mgmt.rs:
crates/ndb/src/partition.rs:
crates/ndb/src/routing.rs:
crates/ndb/src/schema.rs:
crates/ndb/src/testkit.rs:
crates/ndb/src/view.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
