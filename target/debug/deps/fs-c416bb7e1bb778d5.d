/root/repo/target/debug/deps/fs-c416bb7e1bb778d5.d: crates/core/tests/fs.rs

/root/repo/target/debug/deps/fs-c416bb7e1bb778d5: crates/core/tests/fs.rs

crates/core/tests/fs.rs:
