/root/repo/target/debug/deps/fig5_throughput-9ee4510b24a3ca1a.d: crates/bench/benches/fig5_throughput.rs Cargo.toml

/root/repo/target/debug/deps/libfig5_throughput-9ee4510b24a3ca1a.rmeta: crates/bench/benches/fig5_throughput.rs Cargo.toml

crates/bench/benches/fig5_throughput.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
