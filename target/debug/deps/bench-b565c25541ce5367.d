/root/repo/target/debug/deps/bench-b565c25541ce5367.d: crates/bench/src/lib.rs crates/bench/src/harness.rs crates/bench/src/report.rs crates/bench/src/setup.rs crates/bench/src/sweep.rs

/root/repo/target/debug/deps/libbench-b565c25541ce5367.rlib: crates/bench/src/lib.rs crates/bench/src/harness.rs crates/bench/src/report.rs crates/bench/src/setup.rs crates/bench/src/sweep.rs

/root/repo/target/debug/deps/libbench-b565c25541ce5367.rmeta: crates/bench/src/lib.rs crates/bench/src/harness.rs crates/bench/src/report.rs crates/bench/src/setup.rs crates/bench/src/sweep.rs

crates/bench/src/lib.rs:
crates/bench/src/harness.rs:
crates/bench/src/report.rs:
crates/bench/src/setup.rs:
crates/bench/src/sweep.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
