/root/repo/target/debug/deps/fs-79cec175c13ec13d.d: crates/core/tests/fs.rs Cargo.toml

/root/repo/target/debug/deps/libfs-79cec175c13ec13d.rmeta: crates/core/tests/fs.rs Cargo.toml

crates/core/tests/fs.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
