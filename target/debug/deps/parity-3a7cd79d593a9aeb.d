/root/repo/target/debug/deps/parity-3a7cd79d593a9aeb.d: tests/parity.rs Cargo.toml

/root/repo/target/debug/deps/libparity-3a7cd79d593a9aeb.rmeta: tests/parity.rs Cargo.toml

tests/parity.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
