/root/repo/target/debug/deps/ablation_az_awareness-d6bd3c1a2fd86afd.d: crates/bench/benches/ablation_az_awareness.rs Cargo.toml

/root/repo/target/debug/deps/libablation_az_awareness-d6bd3c1a2fd86afd.rmeta: crates/bench/benches/ablation_az_awareness.rs Cargo.toml

crates/bench/benches/ablation_az_awareness.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
