/root/repo/target/debug/deps/cloud_blocks-3a7d0de3cff0445f.d: crates/core/tests/cloud_blocks.rs

/root/repo/target/debug/deps/cloud_blocks-3a7d0de3cff0445f: crates/core/tests/cloud_blocks.rs

crates/core/tests/cloud_blocks.rs:
