/root/repo/target/debug/deps/bandwidth-8bb9670f0ba73952.d: crates/simnet/tests/bandwidth.rs

/root/repo/target/debug/deps/bandwidth-8bb9670f0ba73952: crates/simnet/tests/bandwidth.rs

crates/simnet/tests/bandwidth.rs:
