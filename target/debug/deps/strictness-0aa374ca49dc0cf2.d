/root/repo/target/debug/deps/strictness-0aa374ca49dc0cf2.d: crates/core/tests/strictness.rs Cargo.toml

/root/repo/target/debug/deps/libstrictness-0aa374ca49dc0cf2.rmeta: crates/core/tests/strictness.rs Cargo.toml

crates/core/tests/strictness.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
