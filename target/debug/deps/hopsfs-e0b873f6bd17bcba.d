/root/repo/target/debug/deps/hopsfs-e0b873f6bd17bcba.d: crates/core/src/lib.rs crates/core/src/block.rs crates/core/src/chaos.rs crates/core/src/client.rs crates/core/src/cloudstore.rs crates/core/src/config.rs crates/core/src/deploy.rs crates/core/src/meta.rs crates/core/src/namenode.rs crates/core/src/ops.rs crates/core/src/path.rs crates/core/src/placement.rs crates/core/src/testkit.rs crates/core/src/types.rs crates/core/src/view.rs Cargo.toml

/root/repo/target/debug/deps/libhopsfs-e0b873f6bd17bcba.rmeta: crates/core/src/lib.rs crates/core/src/block.rs crates/core/src/chaos.rs crates/core/src/client.rs crates/core/src/cloudstore.rs crates/core/src/config.rs crates/core/src/deploy.rs crates/core/src/meta.rs crates/core/src/namenode.rs crates/core/src/ops.rs crates/core/src/path.rs crates/core/src/placement.rs crates/core/src/testkit.rs crates/core/src/types.rs crates/core/src/view.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/block.rs:
crates/core/src/chaos.rs:
crates/core/src/client.rs:
crates/core/src/cloudstore.rs:
crates/core/src/config.rs:
crates/core/src/deploy.rs:
crates/core/src/meta.rs:
crates/core/src/namenode.rs:
crates/core/src/ops.rs:
crates/core/src/path.rs:
crates/core/src/placement.rs:
crates/core/src/testkit.rs:
crates/core/src/types.rs:
crates/core/src/view.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
