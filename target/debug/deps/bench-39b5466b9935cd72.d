/root/repo/target/debug/deps/bench-39b5466b9935cd72.d: crates/bench/src/lib.rs crates/bench/src/harness.rs crates/bench/src/report.rs crates/bench/src/setup.rs crates/bench/src/sweep.rs

/root/repo/target/debug/deps/libbench-39b5466b9935cd72.rlib: crates/bench/src/lib.rs crates/bench/src/harness.rs crates/bench/src/report.rs crates/bench/src/setup.rs crates/bench/src/sweep.rs

/root/repo/target/debug/deps/libbench-39b5466b9935cd72.rmeta: crates/bench/src/lib.rs crates/bench/src/harness.rs crates/bench/src/report.rs crates/bench/src/setup.rs crates/bench/src/sweep.rs

crates/bench/src/lib.rs:
crates/bench/src/harness.rs:
crates/bench/src/report.rs:
crates/bench/src/setup.rs:
crates/bench/src/sweep.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
