/root/repo/target/debug/deps/parity-b4a1b21b0a5a9268.d: tests/parity.rs

/root/repo/target/debug/deps/parity-b4a1b21b0a5a9268: tests/parity.rs

tests/parity.rs:
