/root/repo/target/debug/deps/hopsfs-3e2b7d5ed4d5fc43.d: crates/core/src/lib.rs crates/core/src/block.rs crates/core/src/chaos.rs crates/core/src/client.rs crates/core/src/cloudstore.rs crates/core/src/config.rs crates/core/src/deploy.rs crates/core/src/meta.rs crates/core/src/namenode.rs crates/core/src/ops.rs crates/core/src/path.rs crates/core/src/placement.rs crates/core/src/testkit.rs crates/core/src/types.rs crates/core/src/view.rs

/root/repo/target/debug/deps/hopsfs-3e2b7d5ed4d5fc43: crates/core/src/lib.rs crates/core/src/block.rs crates/core/src/chaos.rs crates/core/src/client.rs crates/core/src/cloudstore.rs crates/core/src/config.rs crates/core/src/deploy.rs crates/core/src/meta.rs crates/core/src/namenode.rs crates/core/src/ops.rs crates/core/src/path.rs crates/core/src/placement.rs crates/core/src/testkit.rs crates/core/src/types.rs crates/core/src/view.rs

crates/core/src/lib.rs:
crates/core/src/block.rs:
crates/core/src/chaos.rs:
crates/core/src/client.rs:
crates/core/src/cloudstore.rs:
crates/core/src/config.rs:
crates/core/src/deploy.rs:
crates/core/src/meta.rs:
crates/core/src/namenode.rs:
crates/core/src/ops.rs:
crates/core/src/path.rs:
crates/core/src/placement.rs:
crates/core/src/testkit.rs:
crates/core/src/types.rs:
crates/core/src/view.rs:
