/root/repo/target/debug/deps/prop-2001b9d3de43b3a0.d: crates/simnet/tests/prop.rs Cargo.toml

/root/repo/target/debug/deps/libprop-2001b9d3de43b3a0.rmeta: crates/simnet/tests/prop.rs Cargo.toml

crates/simnet/tests/prop.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
