/root/repo/target/debug/deps/selection-566715c53be58596.d: crates/core/tests/selection.rs Cargo.toml

/root/repo/target/debug/deps/libselection-566715c53be58596.rmeta: crates/core/tests/selection.rs Cargo.toml

crates/core/tests/selection.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
