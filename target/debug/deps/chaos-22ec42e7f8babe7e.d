/root/repo/target/debug/deps/chaos-22ec42e7f8babe7e.d: tests/chaos.rs

/root/repo/target/debug/deps/chaos-22ec42e7f8babe7e: tests/chaos.rs

tests/chaos.rs:
