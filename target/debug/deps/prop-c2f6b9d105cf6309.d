/root/repo/target/debug/deps/prop-c2f6b9d105cf6309.d: crates/simnet/tests/prop.rs

/root/repo/target/debug/deps/prop-c2f6b9d105cf6309: crates/simnet/tests/prop.rs

crates/simnet/tests/prop.rs:
