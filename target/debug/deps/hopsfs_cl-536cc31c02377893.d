/root/repo/target/debug/deps/hopsfs_cl-536cc31c02377893.d: src/lib.rs

/root/repo/target/debug/deps/libhopsfs_cl-536cc31c02377893.rlib: src/lib.rs

/root/repo/target/debug/deps/libhopsfs_cl-536cc31c02377893.rmeta: src/lib.rs

src/lib.rs:
