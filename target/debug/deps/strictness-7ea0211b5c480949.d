/root/repo/target/debug/deps/strictness-7ea0211b5c480949.d: crates/core/tests/strictness.rs

/root/repo/target/debug/deps/strictness-7ea0211b5c480949: crates/core/tests/strictness.rs

crates/core/tests/strictness.rs:
