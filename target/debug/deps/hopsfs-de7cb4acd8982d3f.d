/root/repo/target/debug/deps/hopsfs-de7cb4acd8982d3f.d: crates/core/src/lib.rs crates/core/src/block.rs crates/core/src/chaos.rs crates/core/src/client.rs crates/core/src/cloudstore.rs crates/core/src/config.rs crates/core/src/deploy.rs crates/core/src/meta.rs crates/core/src/namenode.rs crates/core/src/ops.rs crates/core/src/path.rs crates/core/src/placement.rs crates/core/src/testkit.rs crates/core/src/types.rs crates/core/src/view.rs

/root/repo/target/debug/deps/libhopsfs-de7cb4acd8982d3f.rlib: crates/core/src/lib.rs crates/core/src/block.rs crates/core/src/chaos.rs crates/core/src/client.rs crates/core/src/cloudstore.rs crates/core/src/config.rs crates/core/src/deploy.rs crates/core/src/meta.rs crates/core/src/namenode.rs crates/core/src/ops.rs crates/core/src/path.rs crates/core/src/placement.rs crates/core/src/testkit.rs crates/core/src/types.rs crates/core/src/view.rs

/root/repo/target/debug/deps/libhopsfs-de7cb4acd8982d3f.rmeta: crates/core/src/lib.rs crates/core/src/block.rs crates/core/src/chaos.rs crates/core/src/client.rs crates/core/src/cloudstore.rs crates/core/src/config.rs crates/core/src/deploy.rs crates/core/src/meta.rs crates/core/src/namenode.rs crates/core/src/ops.rs crates/core/src/path.rs crates/core/src/placement.rs crates/core/src/testkit.rs crates/core/src/types.rs crates/core/src/view.rs

crates/core/src/lib.rs:
crates/core/src/block.rs:
crates/core/src/chaos.rs:
crates/core/src/client.rs:
crates/core/src/cloudstore.rs:
crates/core/src/config.rs:
crates/core/src/deploy.rs:
crates/core/src/meta.rs:
crates/core/src/namenode.rs:
crates/core/src/ops.rs:
crates/core/src/path.rs:
crates/core/src/placement.rs:
crates/core/src/testkit.rs:
crates/core/src/types.rs:
crates/core/src/view.rs:
