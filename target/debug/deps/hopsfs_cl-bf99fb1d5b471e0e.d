/root/repo/target/debug/deps/hopsfs_cl-bf99fb1d5b471e0e.d: src/lib.rs

/root/repo/target/debug/deps/hopsfs_cl-bf99fb1d5b471e0e: src/lib.rs

src/lib.rs:
