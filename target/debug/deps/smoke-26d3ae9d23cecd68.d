/root/repo/target/debug/deps/smoke-26d3ae9d23cecd68.d: crates/bench/tests/smoke.rs Cargo.toml

/root/repo/target/debug/deps/libsmoke-26d3ae9d23cecd68.rmeta: crates/bench/tests/smoke.rs Cargo.toml

crates/bench/tests/smoke.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
