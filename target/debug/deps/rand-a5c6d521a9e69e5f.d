/root/repo/target/debug/deps/rand-a5c6d521a9e69e5f.d: vendor/rand/src/lib.rs

/root/repo/target/debug/deps/librand-a5c6d521a9e69e5f.rlib: vendor/rand/src/lib.rs

/root/repo/target/debug/deps/librand-a5c6d521a9e69e5f.rmeta: vendor/rand/src/lib.rs

vendor/rand/src/lib.rs:
