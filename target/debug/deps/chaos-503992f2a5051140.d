/root/repo/target/debug/deps/chaos-503992f2a5051140.d: tests/chaos.rs Cargo.toml

/root/repo/target/debug/deps/libchaos-503992f2a5051140.rmeta: tests/chaos.rs Cargo.toml

tests/chaos.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
