/root/repo/target/debug/deps/prop-5f910bd97df41061.d: crates/ndb/tests/prop.rs Cargo.toml

/root/repo/target/debug/deps/libprop-5f910bd97df41061.rmeta: crates/ndb/tests/prop.rs Cargo.toml

crates/ndb/tests/prop.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
