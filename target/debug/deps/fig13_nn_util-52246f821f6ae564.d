/root/repo/target/debug/deps/fig13_nn_util-52246f821f6ae564.d: crates/bench/benches/fig13_nn_util.rs Cargo.toml

/root/repo/target/debug/deps/libfig13_nn_util-52246f821f6ae564.rmeta: crates/bench/benches/fig13_nn_util.rs Cargo.toml

crates/bench/benches/fig13_nn_util.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
