/root/repo/target/debug/deps/bandwidth-f972c9b6eb4de046.d: crates/simnet/tests/bandwidth.rs

/root/repo/target/debug/deps/bandwidth-f972c9b6eb4de046: crates/simnet/tests/bandwidth.rs

crates/simnet/tests/bandwidth.rs:
