/root/repo/target/debug/deps/protocol-0d3d30831ce7746a.d: crates/ndb/tests/protocol.rs

/root/repo/target/debug/deps/protocol-0d3d30831ce7746a: crates/ndb/tests/protocol.rs

crates/ndb/tests/protocol.rs:
