/root/repo/target/debug/deps/workload-f2f53dc4ccc71301.d: crates/workload/src/lib.rs crates/workload/src/micro.rs crates/workload/src/namespace.rs crates/workload/src/spotify.rs

/root/repo/target/debug/deps/libworkload-f2f53dc4ccc71301.rlib: crates/workload/src/lib.rs crates/workload/src/micro.rs crates/workload/src/namespace.rs crates/workload/src/spotify.rs

/root/repo/target/debug/deps/libworkload-f2f53dc4ccc71301.rmeta: crates/workload/src/lib.rs crates/workload/src/micro.rs crates/workload/src/namespace.rs crates/workload/src/spotify.rs

crates/workload/src/lib.rs:
crates/workload/src/micro.rs:
crates/workload/src/namespace.rs:
crates/workload/src/spotify.rs:
