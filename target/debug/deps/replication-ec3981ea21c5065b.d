/root/repo/target/debug/deps/replication-ec3981ea21c5065b.d: crates/cephsim/tests/replication.rs Cargo.toml

/root/repo/target/debug/deps/libreplication-ec3981ea21c5065b.rmeta: crates/cephsim/tests/replication.rs Cargo.toml

crates/cephsim/tests/replication.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
