/root/repo/target/debug/deps/bench-a4a29a834c50ee66.d: crates/bench/src/lib.rs crates/bench/src/harness.rs crates/bench/src/report.rs crates/bench/src/setup.rs crates/bench/src/sweep.rs

/root/repo/target/debug/deps/bench-a4a29a834c50ee66: crates/bench/src/lib.rs crates/bench/src/harness.rs crates/bench/src/report.rs crates/bench/src/setup.rs crates/bench/src/sweep.rs

crates/bench/src/lib.rs:
crates/bench/src/harness.rs:
crates/bench/src/report.rs:
crates/bench/src/setup.rs:
crates/bench/src/sweep.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
