/root/repo/target/debug/deps/workload-04c248b68a71d9d9.d: crates/workload/src/lib.rs crates/workload/src/micro.rs crates/workload/src/namespace.rs crates/workload/src/spotify.rs Cargo.toml

/root/repo/target/debug/deps/libworkload-04c248b68a71d9d9.rmeta: crates/workload/src/lib.rs crates/workload/src/micro.rs crates/workload/src/namespace.rs crates/workload/src/spotify.rs Cargo.toml

crates/workload/src/lib.rs:
crates/workload/src/micro.rs:
crates/workload/src/namespace.rs:
crates/workload/src/spotify.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
