/root/repo/target/debug/deps/hopsfs_cl-dd0311b1094bb615.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libhopsfs_cl-dd0311b1094bb615.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
