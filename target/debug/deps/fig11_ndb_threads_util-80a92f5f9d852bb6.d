/root/repo/target/debug/deps/fig11_ndb_threads_util-80a92f5f9d852bb6.d: crates/bench/benches/fig11_ndb_threads_util.rs Cargo.toml

/root/repo/target/debug/deps/libfig11_ndb_threads_util-80a92f5f9d852bb6.rmeta: crates/bench/benches/fig11_ndb_threads_util.rs Cargo.toml

crates/bench/benches/fig11_ndb_threads_util.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
