/root/repo/target/debug/deps/bench-65a823cb330efa87.d: crates/bench/src/lib.rs crates/bench/src/harness.rs crates/bench/src/report.rs crates/bench/src/setup.rs crates/bench/src/sweep.rs Cargo.toml

/root/repo/target/debug/deps/libbench-65a823cb330efa87.rmeta: crates/bench/src/lib.rs crates/bench/src/harness.rs crates/bench/src/report.rs crates/bench/src/setup.rs crates/bench/src/sweep.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/harness.rs:
crates/bench/src/report.rs:
crates/bench/src/setup.rs:
crates/bench/src/sweep.rs:
Cargo.toml:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
