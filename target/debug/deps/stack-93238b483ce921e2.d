/root/repo/target/debug/deps/stack-93238b483ce921e2.d: tests/stack.rs

/root/repo/target/debug/deps/stack-93238b483ce921e2: tests/stack.rs

tests/stack.rs:
