/root/repo/target/debug/deps/protocol_fidelity-59df1b54c8c72134.d: crates/ndb/tests/protocol_fidelity.rs

/root/repo/target/debug/deps/protocol_fidelity-59df1b54c8c72134: crates/ndb/tests/protocol_fidelity.rs

crates/ndb/tests/protocol_fidelity.rs:
