/root/repo/target/debug/deps/fig9_latency_pct-8488d823233f25f6.d: crates/bench/benches/fig9_latency_pct.rs Cargo.toml

/root/repo/target/debug/deps/libfig9_latency_pct-8488d823233f25f6.rmeta: crates/bench/benches/fig9_latency_pct.rs Cargo.toml

crates/bench/benches/fig9_latency_pct.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
