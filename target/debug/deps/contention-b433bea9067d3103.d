/root/repo/target/debug/deps/contention-b433bea9067d3103.d: crates/ndb/tests/contention.rs Cargo.toml

/root/repo/target/debug/deps/libcontention-b433bea9067d3103.rmeta: crates/ndb/tests/contention.rs Cargo.toml

crates/ndb/tests/contention.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
