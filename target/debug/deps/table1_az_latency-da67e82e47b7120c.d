/root/repo/target/debug/deps/table1_az_latency-da67e82e47b7120c.d: crates/bench/benches/table1_az_latency.rs Cargo.toml

/root/repo/target/debug/deps/libtable1_az_latency-da67e82e47b7120c.rmeta: crates/bench/benches/table1_az_latency.rs Cargo.toml

crates/bench/benches/table1_az_latency.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
