/root/repo/target/debug/deps/chaos-5b145a8cdfb1ffe0.d: tests/chaos.rs

/root/repo/target/debug/deps/chaos-5b145a8cdfb1ffe0: tests/chaos.rs

tests/chaos.rs:
