/root/repo/target/debug/deps/fig10_cpu_util-dc93f15afd6c04a4.d: crates/bench/benches/fig10_cpu_util.rs Cargo.toml

/root/repo/target/debug/deps/libfig10_cpu_util-dc93f15afd6c04a4.rmeta: crates/bench/benches/fig10_cpu_util.rs Cargo.toml

crates/bench/benches/fig10_cpu_util.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
