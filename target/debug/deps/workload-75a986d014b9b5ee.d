/root/repo/target/debug/deps/workload-75a986d014b9b5ee.d: crates/workload/src/lib.rs crates/workload/src/micro.rs crates/workload/src/namespace.rs crates/workload/src/spotify.rs Cargo.toml

/root/repo/target/debug/deps/libworkload-75a986d014b9b5ee.rmeta: crates/workload/src/lib.rs crates/workload/src/micro.rs crates/workload/src/namespace.rs crates/workload/src/spotify.rs Cargo.toml

crates/workload/src/lib.rs:
crates/workload/src/micro.rs:
crates/workload/src/namespace.rs:
crates/workload/src/spotify.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
