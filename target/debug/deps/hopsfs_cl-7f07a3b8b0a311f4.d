/root/repo/target/debug/deps/hopsfs_cl-7f07a3b8b0a311f4.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libhopsfs_cl-7f07a3b8b0a311f4.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
