/root/repo/target/debug/deps/stack-a06212b862f97af9.d: tests/stack.rs Cargo.toml

/root/repo/target/debug/deps/libstack-a06212b862f97af9.rmeta: tests/stack.rs Cargo.toml

tests/stack.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
