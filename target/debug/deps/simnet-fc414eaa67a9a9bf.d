/root/repo/target/debug/deps/simnet-fc414eaa67a9a9bf.d: crates/simnet/src/lib.rs crates/simnet/src/cpu.rs crates/simnet/src/metrics.rs crates/simnet/src/nemesis.rs crates/simnet/src/retry.rs crates/simnet/src/sim.rs crates/simnet/src/time.rs crates/simnet/src/topology.rs Cargo.toml

/root/repo/target/debug/deps/libsimnet-fc414eaa67a9a9bf.rmeta: crates/simnet/src/lib.rs crates/simnet/src/cpu.rs crates/simnet/src/metrics.rs crates/simnet/src/nemesis.rs crates/simnet/src/retry.rs crates/simnet/src/sim.rs crates/simnet/src/time.rs crates/simnet/src/topology.rs Cargo.toml

crates/simnet/src/lib.rs:
crates/simnet/src/cpu.rs:
crates/simnet/src/metrics.rs:
crates/simnet/src/nemesis.rs:
crates/simnet/src/retry.rs:
crates/simnet/src/sim.rs:
crates/simnet/src/time.rs:
crates/simnet/src/topology.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
