/root/repo/target/debug/deps/prop-9296b588ea882cd2.d: crates/core/tests/prop.rs

/root/repo/target/debug/deps/prop-9296b588ea882cd2: crates/core/tests/prop.rs

crates/core/tests/prop.rs:
