/root/repo/target/debug/deps/hopsfs_cl-244830f690165fe4.d: src/lib.rs

/root/repo/target/debug/deps/hopsfs_cl-244830f690165fe4: src/lib.rs

src/lib.rs:
