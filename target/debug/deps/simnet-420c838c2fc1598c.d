/root/repo/target/debug/deps/simnet-420c838c2fc1598c.d: crates/simnet/src/lib.rs crates/simnet/src/cpu.rs crates/simnet/src/metrics.rs crates/simnet/src/nemesis.rs crates/simnet/src/retry.rs crates/simnet/src/sim.rs crates/simnet/src/time.rs crates/simnet/src/topology.rs Cargo.toml

/root/repo/target/debug/deps/libsimnet-420c838c2fc1598c.rmeta: crates/simnet/src/lib.rs crates/simnet/src/cpu.rs crates/simnet/src/metrics.rs crates/simnet/src/nemesis.rs crates/simnet/src/retry.rs crates/simnet/src/sim.rs crates/simnet/src/time.rs crates/simnet/src/topology.rs Cargo.toml

crates/simnet/src/lib.rs:
crates/simnet/src/cpu.rs:
crates/simnet/src/metrics.rs:
crates/simnet/src/nemesis.rs:
crates/simnet/src/retry.rs:
crates/simnet/src/sim.rs:
crates/simnet/src/time.rs:
crates/simnet/src/topology.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
