/root/repo/target/debug/deps/fig7_micro_ops-cb46508a7cadba24.d: crates/bench/benches/fig7_micro_ops.rs Cargo.toml

/root/repo/target/debug/deps/libfig7_micro_ops-cb46508a7cadba24.rmeta: crates/bench/benches/fig7_micro_ops.rs Cargo.toml

crates/bench/benches/fig7_micro_ops.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
