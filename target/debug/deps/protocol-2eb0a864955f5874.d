/root/repo/target/debug/deps/protocol-2eb0a864955f5874.d: crates/ndb/tests/protocol.rs Cargo.toml

/root/repo/target/debug/deps/libprotocol-2eb0a864955f5874.rmeta: crates/ndb/tests/protocol.rs Cargo.toml

crates/ndb/tests/protocol.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
