/root/repo/target/debug/deps/cloud_blocks-6e4de560be9099c0.d: crates/core/tests/cloud_blocks.rs Cargo.toml

/root/repo/target/debug/deps/libcloud_blocks-6e4de560be9099c0.rmeta: crates/core/tests/cloud_blocks.rs Cargo.toml

crates/core/tests/cloud_blocks.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
