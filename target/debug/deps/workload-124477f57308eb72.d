/root/repo/target/debug/deps/workload-124477f57308eb72.d: crates/workload/src/lib.rs crates/workload/src/micro.rs crates/workload/src/namespace.rs crates/workload/src/spotify.rs

/root/repo/target/debug/deps/libworkload-124477f57308eb72.rlib: crates/workload/src/lib.rs crates/workload/src/micro.rs crates/workload/src/namespace.rs crates/workload/src/spotify.rs

/root/repo/target/debug/deps/libworkload-124477f57308eb72.rmeta: crates/workload/src/lib.rs crates/workload/src/micro.rs crates/workload/src/namespace.rs crates/workload/src/spotify.rs

crates/workload/src/lib.rs:
crates/workload/src/micro.rs:
crates/workload/src/namespace.rs:
crates/workload/src/spotify.rs:
