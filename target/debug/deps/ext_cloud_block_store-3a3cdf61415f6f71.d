/root/repo/target/debug/deps/ext_cloud_block_store-3a3cdf61415f6f71.d: crates/bench/benches/ext_cloud_block_store.rs Cargo.toml

/root/repo/target/debug/deps/libext_cloud_block_store-3a3cdf61415f6f71.rmeta: crates/bench/benches/ext_cloud_block_store.rs Cargo.toml

crates/bench/benches/ext_cloud_block_store.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
