/root/repo/target/debug/deps/fig12_storage_util-f5bcd5a352620080.d: crates/bench/benches/fig12_storage_util.rs Cargo.toml

/root/repo/target/debug/deps/libfig12_storage_util-f5bcd5a352620080.rmeta: crates/bench/benches/fig12_storage_util.rs Cargo.toml

crates/bench/benches/fig12_storage_util.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
