/root/repo/target/debug/deps/rand-89cc3c30330ce925.d: vendor/rand/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/librand-89cc3c30330ce925.rmeta: vendor/rand/src/lib.rs Cargo.toml

vendor/rand/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
