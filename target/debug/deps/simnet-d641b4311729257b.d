/root/repo/target/debug/deps/simnet-d641b4311729257b.d: crates/simnet/src/lib.rs crates/simnet/src/cpu.rs crates/simnet/src/metrics.rs crates/simnet/src/nemesis.rs crates/simnet/src/retry.rs crates/simnet/src/sim.rs crates/simnet/src/time.rs crates/simnet/src/topology.rs

/root/repo/target/debug/deps/libsimnet-d641b4311729257b.rlib: crates/simnet/src/lib.rs crates/simnet/src/cpu.rs crates/simnet/src/metrics.rs crates/simnet/src/nemesis.rs crates/simnet/src/retry.rs crates/simnet/src/sim.rs crates/simnet/src/time.rs crates/simnet/src/topology.rs

/root/repo/target/debug/deps/libsimnet-d641b4311729257b.rmeta: crates/simnet/src/lib.rs crates/simnet/src/cpu.rs crates/simnet/src/metrics.rs crates/simnet/src/nemesis.rs crates/simnet/src/retry.rs crates/simnet/src/sim.rs crates/simnet/src/time.rs crates/simnet/src/topology.rs

crates/simnet/src/lib.rs:
crates/simnet/src/cpu.rs:
crates/simnet/src/metrics.rs:
crates/simnet/src/nemesis.rs:
crates/simnet/src/retry.rs:
crates/simnet/src/sim.rs:
crates/simnet/src/time.rs:
crates/simnet/src/topology.rs:
