/root/repo/target/debug/deps/fig14_az_local_reads-8f6db99ad9d60278.d: crates/bench/benches/fig14_az_local_reads.rs Cargo.toml

/root/repo/target/debug/deps/libfig14_az_local_reads-8f6db99ad9d60278.rmeta: crates/bench/benches/fig14_az_local_reads.rs Cargo.toml

crates/bench/benches/fig14_az_local_reads.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
