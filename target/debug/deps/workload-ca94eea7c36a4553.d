/root/repo/target/debug/deps/workload-ca94eea7c36a4553.d: crates/workload/src/lib.rs crates/workload/src/micro.rs crates/workload/src/namespace.rs crates/workload/src/spotify.rs Cargo.toml

/root/repo/target/debug/deps/libworkload-ca94eea7c36a4553.rmeta: crates/workload/src/lib.rs crates/workload/src/micro.rs crates/workload/src/namespace.rs crates/workload/src/spotify.rs Cargo.toml

crates/workload/src/lib.rs:
crates/workload/src/micro.rs:
crates/workload/src/namespace.rs:
crates/workload/src/spotify.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
