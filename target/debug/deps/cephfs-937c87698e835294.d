/root/repo/target/debug/deps/cephfs-937c87698e835294.d: crates/cephsim/tests/cephfs.rs Cargo.toml

/root/repo/target/debug/deps/libcephfs-937c87698e835294.rmeta: crates/cephsim/tests/cephfs.rs Cargo.toml

crates/cephsim/tests/cephfs.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
