/root/repo/target/debug/deps/failures_drill-a75c480aa4440565.d: crates/bench/benches/failures_drill.rs Cargo.toml

/root/repo/target/debug/deps/libfailures_drill-a75c480aa4440565.rmeta: crates/bench/benches/failures_drill.rs Cargo.toml

crates/bench/benches/failures_drill.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
