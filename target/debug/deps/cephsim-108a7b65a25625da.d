/root/repo/target/debug/deps/cephsim-108a7b65a25625da.d: crates/cephsim/src/lib.rs crates/cephsim/src/client.rs crates/cephsim/src/config.rs crates/cephsim/src/deploy.rs crates/cephsim/src/mds.rs crates/cephsim/src/mon.rs crates/cephsim/src/namespace.rs crates/cephsim/src/osd.rs Cargo.toml

/root/repo/target/debug/deps/libcephsim-108a7b65a25625da.rmeta: crates/cephsim/src/lib.rs crates/cephsim/src/client.rs crates/cephsim/src/config.rs crates/cephsim/src/deploy.rs crates/cephsim/src/mds.rs crates/cephsim/src/mon.rs crates/cephsim/src/namespace.rs crates/cephsim/src/osd.rs Cargo.toml

crates/cephsim/src/lib.rs:
crates/cephsim/src/client.rs:
crates/cephsim/src/config.rs:
crates/cephsim/src/deploy.rs:
crates/cephsim/src/mds.rs:
crates/cephsim/src/mon.rs:
crates/cephsim/src/namespace.rs:
crates/cephsim/src/osd.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
