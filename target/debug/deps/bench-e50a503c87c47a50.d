/root/repo/target/debug/deps/bench-e50a503c87c47a50.d: crates/bench/src/lib.rs crates/bench/src/harness.rs crates/bench/src/report.rs crates/bench/src/setup.rs crates/bench/src/sweep.rs Cargo.toml

/root/repo/target/debug/deps/libbench-e50a503c87c47a50.rmeta: crates/bench/src/lib.rs crates/bench/src/harness.rs crates/bench/src/report.rs crates/bench/src/setup.rs crates/bench/src/sweep.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/harness.rs:
crates/bench/src/report.rs:
crates/bench/src/setup.rs:
crates/bench/src/sweep.rs:
Cargo.toml:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
