/root/repo/target/debug/deps/replication-4c13784e272c6b67.d: crates/cephsim/tests/replication.rs

/root/repo/target/debug/deps/replication-4c13784e272c6b67: crates/cephsim/tests/replication.rs

crates/cephsim/tests/replication.rs:
