/root/repo/target/debug/deps/parity-37ec8260823655e8.d: tests/parity.rs

/root/repo/target/debug/deps/parity-37ec8260823655e8: tests/parity.rs

tests/parity.rs:
