/root/repo/target/debug/deps/contention-d204c433ab1bf17f.d: crates/ndb/tests/contention.rs

/root/repo/target/debug/deps/contention-d204c433ab1bf17f: crates/ndb/tests/contention.rs

crates/ndb/tests/contention.rs:
