/root/repo/target/debug/deps/selection-daad7c0adc61edce.d: crates/core/tests/selection.rs

/root/repo/target/debug/deps/selection-daad7c0adc61edce: crates/core/tests/selection.rs

crates/core/tests/selection.rs:
