/root/repo/target/debug/deps/micro_structures-9a8da484c46597c3.d: crates/bench/benches/micro_structures.rs Cargo.toml

/root/repo/target/debug/deps/libmicro_structures-9a8da484c46597c3.rmeta: crates/bench/benches/micro_structures.rs Cargo.toml

crates/bench/benches/micro_structures.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
