/root/repo/target/debug/deps/cephfs-5901d56751fef2cb.d: crates/cephsim/tests/cephfs.rs

/root/repo/target/debug/deps/cephfs-5901d56751fef2cb: crates/cephsim/tests/cephfs.rs

crates/cephsim/tests/cephfs.rs:
