/root/repo/target/debug/deps/protocol_fidelity-0cd36b1a8069df66.d: crates/ndb/tests/protocol_fidelity.rs Cargo.toml

/root/repo/target/debug/deps/libprotocol_fidelity-0cd36b1a8069df66.rmeta: crates/ndb/tests/protocol_fidelity.rs Cargo.toml

crates/ndb/tests/protocol_fidelity.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
