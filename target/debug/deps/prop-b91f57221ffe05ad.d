/root/repo/target/debug/deps/prop-b91f57221ffe05ad.d: crates/simnet/tests/prop.rs

/root/repo/target/debug/deps/prop-b91f57221ffe05ad: crates/simnet/tests/prop.rs

crates/simnet/tests/prop.rs:
