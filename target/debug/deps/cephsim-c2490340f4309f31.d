/root/repo/target/debug/deps/cephsim-c2490340f4309f31.d: crates/cephsim/src/lib.rs crates/cephsim/src/client.rs crates/cephsim/src/config.rs crates/cephsim/src/deploy.rs crates/cephsim/src/mds.rs crates/cephsim/src/mon.rs crates/cephsim/src/namespace.rs crates/cephsim/src/osd.rs

/root/repo/target/debug/deps/cephsim-c2490340f4309f31: crates/cephsim/src/lib.rs crates/cephsim/src/client.rs crates/cephsim/src/config.rs crates/cephsim/src/deploy.rs crates/cephsim/src/mds.rs crates/cephsim/src/mon.rs crates/cephsim/src/namespace.rs crates/cephsim/src/osd.rs

crates/cephsim/src/lib.rs:
crates/cephsim/src/client.rs:
crates/cephsim/src/config.rs:
crates/cephsim/src/deploy.rs:
crates/cephsim/src/mds.rs:
crates/cephsim/src/mon.rs:
crates/cephsim/src/namespace.rs:
crates/cephsim/src/osd.rs:
