/root/repo/target/debug/deps/fig6_per_mds-7dcffe6e26609e42.d: crates/bench/benches/fig6_per_mds.rs Cargo.toml

/root/repo/target/debug/deps/libfig6_per_mds-7dcffe6e26609e42.rmeta: crates/bench/benches/fig6_per_mds.rs Cargo.toml

crates/bench/benches/fig6_per_mds.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
