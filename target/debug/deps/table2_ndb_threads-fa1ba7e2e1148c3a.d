/root/repo/target/debug/deps/table2_ndb_threads-fa1ba7e2e1148c3a.d: crates/bench/benches/table2_ndb_threads.rs Cargo.toml

/root/repo/target/debug/deps/libtable2_ndb_threads-fa1ba7e2e1148c3a.rmeta: crates/bench/benches/table2_ndb_threads.rs Cargo.toml

crates/bench/benches/table2_ndb_threads.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
