/root/repo/target/debug/deps/prop-1bc0da4618795ce8.d: crates/ndb/tests/prop.rs

/root/repo/target/debug/deps/prop-1bc0da4618795ce8: crates/ndb/tests/prop.rs

crates/ndb/tests/prop.rs:
