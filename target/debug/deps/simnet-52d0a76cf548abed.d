/root/repo/target/debug/deps/simnet-52d0a76cf548abed.d: crates/simnet/src/lib.rs crates/simnet/src/cpu.rs crates/simnet/src/metrics.rs crates/simnet/src/nemesis.rs crates/simnet/src/retry.rs crates/simnet/src/sim.rs crates/simnet/src/time.rs crates/simnet/src/topology.rs

/root/repo/target/debug/deps/simnet-52d0a76cf548abed: crates/simnet/src/lib.rs crates/simnet/src/cpu.rs crates/simnet/src/metrics.rs crates/simnet/src/nemesis.rs crates/simnet/src/retry.rs crates/simnet/src/sim.rs crates/simnet/src/time.rs crates/simnet/src/topology.rs

crates/simnet/src/lib.rs:
crates/simnet/src/cpu.rs:
crates/simnet/src/metrics.rs:
crates/simnet/src/nemesis.rs:
crates/simnet/src/retry.rs:
crates/simnet/src/sim.rs:
crates/simnet/src/time.rs:
crates/simnet/src/topology.rs:
