/root/repo/target/debug/deps/bandwidth-42d7f32e6230fb4a.d: crates/simnet/tests/bandwidth.rs Cargo.toml

/root/repo/target/debug/deps/libbandwidth-42d7f32e6230fb4a.rmeta: crates/simnet/tests/bandwidth.rs Cargo.toml

crates/simnet/tests/bandwidth.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
