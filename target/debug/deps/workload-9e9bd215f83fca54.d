/root/repo/target/debug/deps/workload-9e9bd215f83fca54.d: crates/workload/src/lib.rs crates/workload/src/micro.rs crates/workload/src/namespace.rs crates/workload/src/spotify.rs

/root/repo/target/debug/deps/workload-9e9bd215f83fca54: crates/workload/src/lib.rs crates/workload/src/micro.rs crates/workload/src/namespace.rs crates/workload/src/spotify.rs

crates/workload/src/lib.rs:
crates/workload/src/micro.rs:
crates/workload/src/namespace.rs:
crates/workload/src/spotify.rs:
