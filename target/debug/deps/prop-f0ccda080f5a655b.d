/root/repo/target/debug/deps/prop-f0ccda080f5a655b.d: crates/core/tests/prop.rs Cargo.toml

/root/repo/target/debug/deps/libprop-f0ccda080f5a655b.rmeta: crates/core/tests/prop.rs Cargo.toml

crates/core/tests/prop.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
