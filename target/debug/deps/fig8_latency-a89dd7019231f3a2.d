/root/repo/target/debug/deps/fig8_latency-a89dd7019231f3a2.d: crates/bench/benches/fig8_latency.rs Cargo.toml

/root/repo/target/debug/deps/libfig8_latency-a89dd7019231f3a2.rmeta: crates/bench/benches/fig8_latency.rs Cargo.toml

crates/bench/benches/fig8_latency.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
