/root/repo/target/debug/deps/cephsim-facce43864de558a.d: crates/cephsim/src/lib.rs crates/cephsim/src/client.rs crates/cephsim/src/config.rs crates/cephsim/src/deploy.rs crates/cephsim/src/mds.rs crates/cephsim/src/mon.rs crates/cephsim/src/namespace.rs crates/cephsim/src/osd.rs Cargo.toml

/root/repo/target/debug/deps/libcephsim-facce43864de558a.rmeta: crates/cephsim/src/lib.rs crates/cephsim/src/client.rs crates/cephsim/src/config.rs crates/cephsim/src/deploy.rs crates/cephsim/src/mds.rs crates/cephsim/src/mon.rs crates/cephsim/src/namespace.rs crates/cephsim/src/osd.rs Cargo.toml

crates/cephsim/src/lib.rs:
crates/cephsim/src/client.rs:
crates/cephsim/src/config.rs:
crates/cephsim/src/deploy.rs:
crates/cephsim/src/mds.rs:
crates/cephsim/src/mon.rs:
crates/cephsim/src/namespace.rs:
crates/cephsim/src/osd.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
