/root/repo/target/debug/deps/stack-ecd6ce36aeed3982.d: tests/stack.rs

/root/repo/target/debug/deps/stack-ecd6ce36aeed3982: tests/stack.rs

tests/stack.rs:
