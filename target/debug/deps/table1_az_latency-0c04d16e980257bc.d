/root/repo/target/debug/deps/table1_az_latency-0c04d16e980257bc.d: crates/bench/benches/table1_az_latency.rs Cargo.toml

/root/repo/target/debug/deps/libtable1_az_latency-0c04d16e980257bc.rmeta: crates/bench/benches/table1_az_latency.rs Cargo.toml

crates/bench/benches/table1_az_latency.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
