/root/repo/target/debug/deps/hopsfs_cl-0055d5d7fa82c1aa.d: src/lib.rs

/root/repo/target/debug/deps/libhopsfs_cl-0055d5d7fa82c1aa.rlib: src/lib.rs

/root/repo/target/debug/deps/libhopsfs_cl-0055d5d7fa82c1aa.rmeta: src/lib.rs

src/lib.rs:
