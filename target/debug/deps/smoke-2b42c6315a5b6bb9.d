/root/repo/target/debug/deps/smoke-2b42c6315a5b6bb9.d: crates/bench/tests/smoke.rs

/root/repo/target/debug/deps/smoke-2b42c6315a5b6bb9: crates/bench/tests/smoke.rs

crates/bench/tests/smoke.rs:
