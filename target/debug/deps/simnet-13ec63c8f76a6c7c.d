/root/repo/target/debug/deps/simnet-13ec63c8f76a6c7c.d: crates/simnet/src/lib.rs crates/simnet/src/cpu.rs crates/simnet/src/metrics.rs crates/simnet/src/nemesis.rs crates/simnet/src/retry.rs crates/simnet/src/sim.rs crates/simnet/src/time.rs crates/simnet/src/topology.rs

/root/repo/target/debug/deps/libsimnet-13ec63c8f76a6c7c.rlib: crates/simnet/src/lib.rs crates/simnet/src/cpu.rs crates/simnet/src/metrics.rs crates/simnet/src/nemesis.rs crates/simnet/src/retry.rs crates/simnet/src/sim.rs crates/simnet/src/time.rs crates/simnet/src/topology.rs

/root/repo/target/debug/deps/libsimnet-13ec63c8f76a6c7c.rmeta: crates/simnet/src/lib.rs crates/simnet/src/cpu.rs crates/simnet/src/metrics.rs crates/simnet/src/nemesis.rs crates/simnet/src/retry.rs crates/simnet/src/sim.rs crates/simnet/src/time.rs crates/simnet/src/topology.rs

crates/simnet/src/lib.rs:
crates/simnet/src/cpu.rs:
crates/simnet/src/metrics.rs:
crates/simnet/src/nemesis.rs:
crates/simnet/src/retry.rs:
crates/simnet/src/sim.rs:
crates/simnet/src/time.rs:
crates/simnet/src/topology.rs:
