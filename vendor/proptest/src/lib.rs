//! Offline stand-in for the subset of `proptest` this workspace uses.
//!
//! Implements the `proptest!` test macro, `prop_assert!`/`prop_assert_eq!`,
//! `prop_oneof!`, `Just`, `any::<T>()`, range strategies, tuple strategies,
//! `prop_map`, `proptest::collection::vec`, and a tiny character-class
//! string-pattern strategy (enough for patterns like `"[a-z]{1,8}"`).
//!
//! Differences from upstream: no shrinking (a failing case panics with the
//! failure message immediately) and generation is driven by a fixed-seed
//! splitmix64 generator, so runs are fully deterministic.

/// Test-runner types: config, RNG, and the error carried by `prop_assert!`.
pub mod test_runner {
    /// Per-`proptest!` configuration.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of generated cases per test.
        pub cases: u32,
    }

    impl Config {
        /// Config running `cases` cases per test.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 64 }
        }
    }

    /// Deterministic generator driving all strategies (splitmix64).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Creates a generator from a seed.
        pub fn new(seed: u64) -> Self {
            TestRng { state: seed ^ 0x9E37_79B9_7F4A_7C15 }
        }

        /// Next raw 64-bit word.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, bound)`.
        ///
        /// # Panics
        ///
        /// Panics if `bound` is zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            assert!(bound > 0, "below(0)");
            self.next_u64() % bound
        }
    }

    /// Failure reported by `prop_assert!` and friends.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// Assertion failure with its message.
        Fail(String),
    }

    impl TestCaseError {
        /// Builds a failure from a message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TestCaseError::Fail(m) => write!(f, "{m}"),
            }
        }
    }
}

/// Strategies: value generators composable with `prop_map` and `prop_oneof!`.
pub mod strategy {
    use crate::test_runner::TestRng;

    /// A generator of values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Generates one value.
        fn gen_one(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Type-erases the strategy (needed by `prop_oneof!`).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(move |rng| self.gen_one(rng)))
        }
    }

    /// Always produces a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn gen_one(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Strategy adapter produced by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn gen_one(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.gen_one(rng))
        }
    }

    /// A type-erased strategy.
    pub struct BoxedStrategy<V>(Box<dyn Fn(&mut TestRng) -> V>);

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;
        fn gen_one(&self, rng: &mut TestRng) -> V {
            (self.0)(rng)
        }
    }

    /// Uniform choice between boxed strategies (backs `prop_oneof!`).
    pub struct Union<V> {
        arms: Vec<BoxedStrategy<V>>,
    }

    impl<V> Union<V> {
        /// Builds a union over the given arms.
        ///
        /// # Panics
        ///
        /// Panics if `arms` is empty.
        pub fn new(arms: Vec<BoxedStrategy<V>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn gen_one(&self, rng: &mut TestRng) -> V {
            let i = rng.below(self.arms.len() as u64) as usize;
            self.arms[i].gen_one(rng)
        }
    }

    macro_rules! int_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn gen_one(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn gen_one(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    let span = (end as i128 - start as i128 + 1) as u64;
                    (start as i128 + rng.below(span) as i128) as $t
                }
            }
        )*};
    }
    int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for core::ops::Range<f64> {
        type Value = f64;
        fn gen_one(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            let f = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
            self.start + f * (self.end - self.start)
        }
    }

    macro_rules! tuple_strategy {
        ($(($($n:tt $t:ident),+))*) => {$(
            impl<$($t: Strategy),+> Strategy for ($($t,)+) {
                type Value = ($($t::Value,)+);
                fn gen_one(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$n.gen_one(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy!((0 A) (0 A, 1 B) (0 A, 1 B, 2 C) (0 A, 1 B, 2 C, 3 D) (0 A, 1 B, 2 C, 3 D, 4 E));

    /// `&str` patterns act as string strategies. Supported subset: literal
    /// characters and character classes `[a-z0-9_]`, each optionally followed
    /// by `{m}` or `{m,n}` repetition — enough for `"[a-z]{1,8}"`-style
    /// patterns.
    impl Strategy for &str {
        type Value = String;
        fn gen_one(&self, rng: &mut TestRng) -> String {
            generate_from_pattern(self, rng)
        }
    }

    fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
        let chars: Vec<char> = pattern.chars().collect();
        let mut out = String::new();
        let mut i = 0;
        while i < chars.len() {
            // One atom: a class or a literal char.
            let alphabet: Vec<char> = if chars[i] == '[' {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .map(|p| i + p)
                    .unwrap_or_else(|| panic!("unclosed `[` in pattern {pattern:?}"));
                let set = expand_class(&chars[i + 1..close], pattern);
                i = close + 1;
                set
            } else {
                let c = chars[i];
                i += 1;
                vec![c]
            };
            // Optional repetition.
            let (lo, hi) = if i < chars.len() && chars[i] == '{' {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .map(|p| i + p)
                    .unwrap_or_else(|| panic!("unclosed `{{` in pattern {pattern:?}"));
                let spec: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                let mut parts = spec.splitn(2, ',');
                let lo: usize = parts.next().unwrap().trim().parse().unwrap_or_else(|_| {
                    panic!("bad repetition `{{{spec}}}` in pattern {pattern:?}")
                });
                let hi: usize = match parts.next() {
                    Some(h) => h.trim().parse().unwrap_or_else(|_| {
                        panic!("bad repetition `{{{spec}}}` in pattern {pattern:?}")
                    }),
                    None => lo,
                };
                (lo, hi)
            } else {
                (1, 1)
            };
            let count = if hi > lo { lo + rng.below((hi - lo + 1) as u64) as usize } else { lo };
            for _ in 0..count {
                let c = alphabet[rng.below(alphabet.len() as u64) as usize];
                out.push(c);
            }
        }
        out
    }

    fn expand_class(body: &[char], pattern: &str) -> Vec<char> {
        let mut set = Vec::new();
        let mut i = 0;
        while i < body.len() {
            if i + 2 < body.len() && body[i + 1] == '-' {
                let (a, b) = (body[i], body[i + 2]);
                assert!(a <= b, "bad class range in pattern {pattern:?}");
                for c in a..=b {
                    set.push(c);
                }
                i += 3;
            } else {
                set.push(body[i]);
                i += 1;
            }
        }
        assert!(!set.is_empty(), "empty character class in pattern {pattern:?}");
        set
    }
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Size bound for generated collections.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { lo: r.start, hi: r.end }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    /// Strategy for `Vec<S::Value>` with a size drawn from `size`.
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    /// Generates vectors whose elements come from `elem` and whose length is
    /// drawn uniformly from `size`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { elem, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn gen_one(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + if span > 1 { rng.below(span) as usize } else { 0 };
            (0..len).map(|_| self.elem.gen_one(rng)).collect()
        }
    }
}

/// Arbitrary: default strategies per type, reachable via [`arbitrary::any`].
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Types with a canonical default strategy.
    pub trait Arbitrary: Sized {
        /// Generates one arbitrary value.
        fn arbitrary_one(rng: &mut TestRng) -> Self;
    }

    macro_rules! arb_uint {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary_one(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    arb_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary_one(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary_one(rng: &mut TestRng) -> Self {
            (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    /// Strategy returned by [`any`].
    pub struct AnyStrategy<A>(core::marker::PhantomData<A>);

    impl<A: Arbitrary> Strategy for AnyStrategy<A> {
        type Value = A;
        fn gen_one(&self, rng: &mut TestRng) -> A {
            A::arbitrary_one(rng)
        }
    }

    /// The canonical strategy for `A`.
    pub fn any<A: Arbitrary>() -> AnyStrategy<A> {
        AnyStrategy(core::marker::PhantomData)
    }
}

/// The common imports: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::test_runner::TestCaseError;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Defines property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` that runs the body over `config.cases` generated
/// inputs. No shrinking: the first failing case panics with its message.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!{ ($crate::test_runner::Config::default()) $($rest)* }
    };
}

/// Internal recursion for [`proptest!`]; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config = $cfg;
            let mut rng = $crate::test_runner::TestRng::new(
                0xC0FF_EE00u64 ^ stringify!($name).as_bytes().iter()
                    .fold(0u64, |h, &b| h.wrapping_mul(131).wrapping_add(u64::from(b))),
            );
            for case in 0..config.cases {
                $(let $pat = $crate::strategy::Strategy::gen_one(&($strat), &mut rng);)+
                let result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(e) = result {
                    panic!("proptest {} failed at case {}/{}: {}",
                        stringify!($name), case + 1, config.cases, e);
                }
            }
        }
        $crate::__proptest_fns!{ ($cfg) $($rest)* }
    };
}

/// Asserts a condition inside a `proptest!` body (returns a
/// `TestCaseError` instead of panicking, like upstream).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (lhs, rhs) = (&$a, &$b);
        $crate::prop_assert!(lhs == rhs, "assertion failed: {:?} != {:?}", lhs, rhs);
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (lhs, rhs) = (&$a, &$b);
        if !(lhs == rhs) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*) + &format!(" ({lhs:?} != {rhs:?})"),
            ));
        }
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (lhs, rhs) = (&$a, &$b);
        $crate::prop_assert!(lhs != rhs, "assertion failed: both sides are {:?}", lhs);
    }};
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(x in 3u64..17, y in -4i32..=4, mut v in crate::collection::vec(0u8..10, 2..6)) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-4..=4).contains(&y));
            prop_assert!(v.len() >= 2 && v.len() < 6);
            v.sort_unstable();
            prop_assert!(v.iter().all(|&b| b < 10));
        }

        #[test]
        fn oneof_and_map(s in prop_oneof![Just(1u8), (2u8..4).prop_map(|x| x), Just(9u8)], b in any::<bool>()) {
            prop_assert!(matches!(s, 1 | 2 | 3 | 9), "unexpected {s} (b={b})");
        }

        #[test]
        fn string_patterns(parts in crate::collection::vec("[a-z]{1,8}", 0..6)) {
            for p in &parts {
                prop_assert!(!p.is_empty() && p.len() <= 8, "bad part {p:?}");
                prop_assert!(p.chars().all(|c| c.is_ascii_lowercase()));
            }
        }
    }

    #[test]
    fn deterministic_per_seed() {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        let strat = crate::collection::vec(0u64..1000, 1..20);
        let a: Vec<Vec<u64>> =
            (0..10).map(|_| strat.gen_one(&mut TestRng::new(5))).collect();
        let b: Vec<Vec<u64>> =
            (0..10).map(|_| strat.gen_one(&mut TestRng::new(5))).collect();
        assert_eq!(a, b);
    }
}
