//! Offline stand-in for the subset of the `bytes` crate this workspace uses.
//!
//! Provides [`Bytes`] (a cheaply clonable, immutable byte buffer),
//! [`BytesMut`] (an append-only builder) and the [`BufMut`] trait methods the
//! row codec calls. Backed by `Arc<[u8]>`; `from_static` copies, which is
//! fine at the sizes this workspace uses.

use std::borrow::Borrow;
use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// A cheaply clonable, immutable contiguous byte buffer.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes { data: Arc::from(&[][..]) }
    }

    /// Wraps a static slice (copied here, borrowed upstream — equivalent
    /// semantics at a small cost).
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes { data: Arc::from(bytes) }
    }

    /// Copies a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes { data: Arc::from(data) }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes { data: Arc::from(v) }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes::copy_from_slice(v)
    }
}

impl From<String> for Bytes {
    fn from(v: String) -> Self {
        Bytes::from(v.into_bytes())
    }
}

impl From<&str> for Bytes {
    fn from(v: &str) -> Self {
        Bytes::copy_from_slice(v.as_bytes())
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        &self.data[..] == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        &self.data[..] == *other
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.data.iter() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

/// Append-only byte sink (stand-in for the `bytes::BufMut` trait).
pub trait BufMut {
    /// Appends one byte.
    fn put_u8(&mut self, v: u8);
    /// Appends a `u16` little-endian.
    fn put_u16_le(&mut self, v: u16);
    /// Appends a `u32` little-endian.
    fn put_u32_le(&mut self, v: u32);
    /// Appends a `u64` little-endian.
    fn put_u64_le(&mut self, v: u64);
    /// Appends a slice.
    fn put_slice(&mut self, src: &[u8]);
}

/// A growable byte buffer that freezes into [`Bytes`].
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut { buf: Vec::new() }
    }

    /// An empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut { buf: Vec::with_capacity(cap) }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Converts into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.buf)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

impl BufMut for BytesMut {
    fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    fn put_u16_le(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn put_u32_le(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn put_u64_le(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn put_slice(&mut self, src: &[u8]) {
        self.buf.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_and_clone() {
        let mut m = BytesMut::with_capacity(8);
        m.put_u8(1);
        m.put_u16_le(0x0203);
        m.put_u32_le(0x04050607);
        m.put_u64_le(0x08090a0b0c0d0e0f);
        m.put_slice(b"xy");
        let b = m.freeze();
        assert_eq!(b.len(), 1 + 2 + 4 + 8 + 2);
        assert_eq!(&b[..3], &[1, 0x03, 0x02]);
        let c = b.clone();
        assert_eq!(b, c);
    }

    #[test]
    fn ordering_and_slicing() {
        let a = Bytes::from_static(b"abc");
        let b = Bytes::copy_from_slice(b"abd");
        assert!(a < b);
        assert_eq!(&a[..2], b"ab");
        assert_eq!(a, b"abc"[..]);
        assert!(Bytes::new().is_empty());
    }
}
