//! Offline stand-in for the subset of `parking_lot` this workspace uses:
//! a [`Mutex`] whose `lock()` returns the guard directly (no poisoning).
//! Backed by `std::sync::Mutex`; a poisoned lock propagates the panic.

use std::sync::TryLockError;

/// A mutex whose `lock` does not return a poison `Result`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a mutex protecting `value`.
    pub fn new(value: T) -> Self {
        Mutex { inner: std::sync::Mutex::new(value) }
    }

    /// Consumes the mutex and returns the protected value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|p| p.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking the current thread.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|p| p.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;

    #[test]
    fn lock_returns_guard_directly() {
        let m = Mutex::new(41);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 42);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn shared_across_threads() {
        let m = std::sync::Arc::new(Mutex::new(0u64));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let m = std::sync::Arc::clone(&m);
                s.spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                });
            }
        });
        assert_eq!(*m.lock(), 4000);
    }
}
