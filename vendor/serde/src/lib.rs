//! Offline stand-in for the subset of `serde` this workspace uses.
//!
//! Instead of upstream serde's visitor architecture, serialization goes
//! through an intermediate self-describing [`Value`] tree: `Serialize`
//! converts into a [`Value`], `Deserialize` reads back out of one. The
//! companion `serde_json` stand-in renders and parses that tree. The
//! `#[derive(Serialize, Deserialize)]` macros come from the vendored
//! `serde_derive` and cover plain structs with named fields — exactly what
//! the bench harness needs.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};

/// A self-describing data tree (the JSON data model).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Absent / null.
    Null,
    /// Boolean.
    Bool(bool),
    /// Unsigned integer.
    U64(u64),
    /// Signed (negative) integer.
    I64(i64),
    /// Floating point.
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Value>),
    /// Object: ordered list of key/value pairs.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a key in an object value.
    pub fn get_field(&self, name: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().find(|(k, _)| k == name).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// Deserialization error: a human-readable description of the mismatch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(pub String);

impl Error {
    /// Builds an error describing an unexpected shape.
    pub fn unexpected(expected: &str, got: &Value) -> Self {
        Error(format!("expected {expected}, got {got:?}"))
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

/// Types convertible into a [`Value`].
pub trait Serialize {
    /// Converts `self` into the data tree.
    fn to_value(&self) -> Value;
}

/// Types reconstructible from a [`Value`].
pub trait Deserialize: Sized {
    /// Reads `Self` out of the data tree.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

/// Deserialization helpers and marker traits (mirrors `serde::de`).
pub mod de {
    /// Owned deserialization marker; blanket-implemented for every
    /// [`Deserialize`](crate::Deserialize) type.
    pub trait DeserializeOwned: crate::Deserialize {}
    impl<T: crate::Deserialize> DeserializeOwned for T {}
}

/// Reads a struct field out of an object [`Value`] (used by the derive).
pub fn from_field<T: Deserialize>(v: &Value, name: &str) -> Result<T, Error> {
    match v.get_field(name) {
        Some(field) => T::from_value(field)
            .map_err(|e| Error(format!("field `{name}`: {e}"))),
        None => Err(Error(format!("missing field `{name}`"))),
    }
}

/// Like [`from_field`], but a missing field deserializes to `T::default()` —
/// the stand-in's implementation of `#[serde(default)]`, letting documents
/// written before a field existed keep loading.
pub fn from_field_or_default<T: Deserialize + Default>(v: &Value, name: &str) -> Result<T, Error> {
    match v.get_field(name) {
        Some(field) => T::from_value(field)
            .map_err(|e| Error(format!("field `{name}`: {e}"))),
        None => Ok(T::default()),
    }
}

// --- impls for the primitive tree -----------------------------------------

macro_rules! serde_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::U64(*self as u64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::U64(n) => <$t>::try_from(*n)
                        .map_err(|_| Error::unexpected(stringify!($t), v)),
                    Value::I64(n) => <$t>::try_from(*n)
                        .map_err(|_| Error::unexpected(stringify!($t), v)),
                    _ => Err(Error::unexpected(stringify!($t), v)),
                }
            }
        }
    )*};
}
serde_uint!(u8, u16, u32, u64, usize);

macro_rules! serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let n = *self as i64;
                if n < 0 { Value::I64(n) } else { Value::U64(n as u64) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::U64(n) => <$t>::try_from(*n)
                        .map_err(|_| Error::unexpected(stringify!($t), v)),
                    Value::I64(n) => <$t>::try_from(*n)
                        .map_err(|_| Error::unexpected(stringify!($t), v)),
                    _ => Err(Error::unexpected(stringify!($t), v)),
                }
            }
        }
    )*};
}
serde_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}
impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::F64(f) => Ok(*f),
            Value::U64(n) => Ok(*n as f64),
            Value::I64(n) => Ok(*n as f64),
            Value::Null => Ok(f64::NAN),
            _ => Err(Error::unexpected("f64", v)),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}
impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::unexpected("bool", v)),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}
impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(Error::unexpected("string", v)),
        }
    }
}

impl Serialize for &str {
    fn to_value(&self) -> Value {
        Value::Str((*self).to_string())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(t) => t.to_value(),
            None => Value::Null,
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Arr(items) => items.iter().map(T::from_value).collect(),
            _ => Err(Error::unexpected("array", v)),
        }
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize + std::fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items: Vec<T> = Vec::from_value(v)?;
        <[T; N]>::try_from(items)
            .map_err(|items| Error(format!("expected {N} elements, got {}", items.len())))
    }
}

macro_rules! serde_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Arr(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Arr(items) => {
                        let mut it = items.iter();
                        let out = ($({
                            let _ = $n; // positional consumption
                            $t::from_value(it.next().ok_or_else(|| Error::unexpected("tuple element", v))?)?
                        },)+);
                        if it.next().is_some() {
                            return Err(Error::unexpected("exact-length tuple", v));
                        }
                        Ok(out)
                    }
                    _ => Err(Error::unexpected("tuple (array)", v)),
                }
            }
        }
    )*};
}
serde_tuple!((0 A) (0 A, 1 B) (0 A, 1 B, 2 C) (0 A, 1 B, 2 C, 3 D));

impl<V: Serialize, S: std::hash::BuildHasher> Serialize for HashMap<String, V, S> {
    fn to_value(&self) -> Value {
        // Sort for stable output (HashMap iteration order is unstable).
        let mut keys: Vec<&String> = self.keys().collect();
        keys.sort();
        Value::Obj(keys.into_iter().map(|k| (k.clone(), self[k].to_value())).collect())
    }
}
impl<V: Deserialize, S: std::hash::BuildHasher + Default> Deserialize for HashMap<String, V, S> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Obj(fields) => fields
                .iter()
                .map(|(k, fv)| V::from_value(fv).map(|parsed| (k.clone(), parsed)))
                .collect(),
            _ => Err(Error::unexpected("object", v)),
        }
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Obj(self.iter().map(|(k, v)| (k.clone(), v.to_value())).collect())
    }
}
impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Obj(fields) => fields
                .iter()
                .map(|(k, fv)| V::from_value(fv).map(|parsed| (k.clone(), parsed)))
                .collect(),
            _ => Err(Error::unexpected("object", v)),
        }
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}
impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(i64::from_value(&(-3i64).to_value()).unwrap(), -3);
        assert_eq!(String::from_value(&"hi".to_value()).unwrap(), "hi");
        assert!(bool::from_value(&true.to_value()).unwrap());
        let arr = vec![(1u32, 2u8, 3u64)];
        assert_eq!(Vec::<(u32, u8, u64)>::from_value(&arr.to_value()).unwrap(), arr);
        let fixed = [1.5f64, 2.5, 3.5];
        assert_eq!(<[f64; 3]>::from_value(&fixed.to_value()).unwrap(), fixed);
    }

    #[test]
    fn maps_round_trip_sorted() {
        let mut m = HashMap::new();
        m.insert("b".to_string(), 2u64);
        m.insert("a".to_string(), 1u64);
        let v = m.to_value();
        match &v {
            Value::Obj(fields) => assert_eq!(fields[0].0, "a"),
            other => panic!("expected object, got {other:?}"),
        }
        assert_eq!(HashMap::<String, u64>::from_value(&v).unwrap(), m);
    }

    #[test]
    fn missing_field_reports_name() {
        let v = Value::Obj(vec![]);
        let err = from_field::<u64>(&v, "count").unwrap_err();
        assert!(err.0.contains("count"), "{err}");
    }
}
