//! Offline stand-in for the subset of the `rand` crate this workspace uses.
//!
//! The build environment has no network access and no registry cache, so the
//! workspace vendors a minimal, dependency-free implementation of the APIs it
//! actually calls: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`],
//! [`Rng::gen`] / [`Rng::gen_range`] / [`Rng::gen_bool`], and
//! [`seq::SliceRandom::choose`] / [`seq::SliceRandom::shuffle`].
//!
//! The generator is splitmix64: deterministic per seed, statistically fine
//! for simulation jitter and workload sampling (the only uses here), and
//! `Clone`/`Debug` like the real `StdRng`. Streams differ from upstream
//! `rand`, which is acceptable: nothing in the workspace depends on the
//! specific values, only on per-seed determinism.

/// A source of random 64-bit words.
pub trait RngCore {
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Returns the next random `u32` (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable generators (only the `seed_from_u64` entry point is provided).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of `T` from its standard distribution.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Samples uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_one(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types sampleable by [`Rng::gen`] (stand-in for `distributions::Standard`).
pub trait Standard: Sized {
    /// Samples one value from the type's standard distribution.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}
impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}
impl Standard for usize {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}
impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}
impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Samples one value uniformly from the range.
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (start as i128 + v as i128) as $t
            }
        }
    )*};
}
int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let f = f64::sample_standard(rng);
        self.start + f * (self.end - self.start)
    }
}

/// Named generators (stand-in for `rand::rngs`).
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator (splitmix64).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // Pre-mix so nearby seeds do not produce nearby first outputs.
            let mut rng = StdRng { state: state ^ 0xD6E8_FEB8_6659_FD93 };
            let _ = rng.next_u64();
            rng
        }
    }
}

/// Slice sampling and shuffling (stand-in for `rand::seq`).
pub mod seq {
    use super::RngCore;

    /// Random selection and shuffling over slices.
    pub trait SliceRandom {
        /// Element type of the slice.
        type Item;

        /// Uniformly picks one element, or `None` if the slice is empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get((rng.next_u64() % self.len() as u64) as usize)
            }
        }

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = r.gen_range(3u64..17);
            assert!((3..17).contains(&v));
            let f = r.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let i = r.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&i));
        }
    }

    #[test]
    fn unit_interval_and_bool() {
        let mut r = StdRng::seed_from_u64(2);
        let mut trues = 0;
        for _ in 0..1000 {
            let f: f64 = r.gen();
            assert!((0.0..1.0).contains(&f));
            if r.gen_bool(0.5) {
                trues += 1;
            }
        }
        assert!((300..700).contains(&trues), "gen_bool(0.5) gave {trues}/1000");
    }

    #[test]
    fn shuffle_and_choose() {
        let mut r = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..32).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..32).collect::<Vec<_>>());
        assert!(v.choose(&mut r).is_some());
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut r).is_none());
    }
}
