//! Offline stand-in for the subset of `serde_json` this workspace uses:
//! pretty serialization ([`to_vec_pretty`], [`to_string_pretty`]) and
//! parsing ([`from_slice`], [`from_str`]) against the vendored `serde`'s
//! [`Value`] tree.

use serde::de::DeserializeOwned;
use serde::{Serialize, Value};

/// Serialization/deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(pub String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error(e.0)
    }
}

/// Result alias matching `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// Serializes `value` as pretty-printed JSON text.
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), 0);
    Ok(out)
}

/// Serializes `value` as pretty-printed JSON bytes.
pub fn to_vec_pretty<T: Serialize>(value: &T) -> Result<Vec<u8>> {
    to_string_pretty(value).map(String::into_bytes)
}

/// Parses a value from JSON bytes.
pub fn from_slice<T: DeserializeOwned>(data: &[u8]) -> Result<T> {
    let text = std::str::from_utf8(data).map_err(|e| Error(format!("invalid utf-8: {e}")))?;
    from_str(text)
}

/// Parses a value from JSON text.
pub fn from_str<T: DeserializeOwned>(text: &str) -> Result<T> {
    let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing data at byte {}", p.pos)));
    }
    Ok(T::from_value(&v)?)
}

// --- writer ----------------------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(f) => {
            if f.is_finite() {
                // Keep a decimal point so the value parses back as F64.
                let s = f.to_string();
                out.push_str(&s);
                if !s.contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            } else {
                out.push_str("null"); // like serde_json: no NaN/Inf in JSON
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Arr(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent + 1);
                write_value(out, item, indent + 1);
            }
            newline_indent(out, indent);
            out.push(']');
        }
        Value::Obj(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, fv)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent + 1);
                write_string(out, k);
                out.push_str(": ");
                write_value(out, fv, indent + 1);
            }
            newline_indent(out, indent);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: usize) {
    out.push('\n');
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// --- parser ----------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        match self.peek() {
            Some(got) if got == b => {
                self.pos += 1;
                Ok(())
            }
            got => Err(Error(format!(
                "expected `{}` at byte {}, got {got:?}",
                b as char, self.pos
            ))),
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Arr(items));
                        }
                        got => return Err(Error(format!("bad array at byte {}: {got:?}", self.pos))),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut fields = Vec::new();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Obj(fields));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.expect(b':')?;
                    let v = self.parse_value()?;
                    fields.push((key, v));
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Obj(fields));
                        }
                        got => return Err(Error(format!("bad object at byte {}: {got:?}", self.pos))),
                    }
                }
            }
            Some(_) => self.parse_number(),
            None => Err(Error("unexpected end of input".to_string())),
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value> {
        self.skip_ws();
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(Error(format!("expected `{lit}` at byte {}", self.pos)))
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = *self
                .bytes
                .get(self.pos)
                .ok_or_else(|| Error("unterminated string".to_string()))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| Error("unterminated escape".to_string()))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error("truncated \\u escape".to_string()))?;
                            self.pos += 4;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error("bad \\u escape".to_string()))?,
                                16,
                            )
                            .map_err(|_| Error("bad \\u escape".to_string()))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error("bad \\u code point".to_string()))?,
                            );
                        }
                        other => return Err(Error(format!("bad escape `\\{}`", other as char))),
                    }
                }
                _ => {
                    // Collect the full UTF-8 sequence starting at pos-1.
                    let start = self.pos - 1;
                    let mut end = self.pos;
                    while end < self.bytes.len() && self.bytes[end] & 0xC0 == 0x80 {
                        end += 1;
                    }
                    let chunk = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|e| Error(format!("invalid utf-8 in string: {e}")))?;
                    out.push_str(chunk);
                    self.pos = end;
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value> {
        self.skip_ws();
        let start = self.pos;
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("bad number".to_string()))?;
        if text.is_empty() {
            return Err(Error(format!("expected value at byte {start}")));
        }
        if !text.contains(['.', 'e', 'E']) {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::I64(n));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error(format!("bad number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn value_round_trips_through_text() {
        let mut map: HashMap<String, Vec<(String, f64)>> = HashMap::new();
        map.insert("series".to_string(), vec![("p50".to_string(), 1.25), ("p99".to_string(), 9.0)]);
        let bytes = to_vec_pretty(&map).unwrap();
        let back: HashMap<String, Vec<(String, f64)>> = from_slice(&bytes).unwrap();
        assert_eq!(back, map);
    }

    #[test]
    fn numbers_keep_their_kind() {
        let v: Vec<u64> = from_str("[0, 18446744073709551615]").unwrap();
        assert_eq!(v, vec![0, u64::MAX]);
        let f: Vec<f64> = from_str("[1.5, 2, -3]").unwrap();
        assert_eq!(f, vec![1.5, 2.0, -3.0]);
        let i: Vec<i64> = from_str("[-9, 9]").unwrap();
        assert_eq!(i, vec![-9, 9]);
    }

    #[test]
    fn strings_escape_and_parse() {
        let s = "line\n\"quoted\"\tünïcode \\ done".to_string();
        let bytes = to_vec_pretty(&s).unwrap();
        let back: String = from_slice(&bytes).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(from_str::<u64>("5 x").is_err());
        assert!(from_str::<u64>("").is_err());
    }
}
