//! Offline stand-in for the subset of `criterion` this workspace uses.
//!
//! Supports `Criterion::default().sample_size(n)`, `bench_function`,
//! `Bencher::iter`, and the `criterion_group!`/`criterion_main!` macros.
//! Instead of statistical analysis it runs each benchmark `sample_size`
//! times and prints the mean wall-clock time per iteration — enough to spot
//! order-of-magnitude regressions without any dependencies.

use std::time::Instant;

/// Benchmark driver.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets how many samples each benchmark runs.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark and prints its mean iteration time.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher { iters: 0, elapsed_nanos: 0 };
        for _ in 0..self.sample_size {
            f(&mut b);
        }
        let per_iter = b.elapsed_nanos.checked_div(b.iters).unwrap_or(0);
        println!("bench {name:<40} {per_iter:>12} ns/iter ({} iters)", b.iters);
        self
    }
}

/// Timer handle passed to each benchmark closure.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed_nanos: u64,
}

impl Bencher {
    /// Times one execution of `f` (called once per sample).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        let out = f();
        self.elapsed_nanos += start.elapsed().as_nanos() as u64;
        self.iters += 1;
        drop(out);
    }
}

/// Re-export spot for `criterion::black_box` users (delegates to std).
pub use std::hint::black_box;

/// Declares a benchmark group as a function running its targets.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $cfg;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(name = $name; config = $crate::Criterion::default(); targets = $($target),+);
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
    }

    #[test]
    fn group_runs_targets() {
        let mut c = Criterion::default().sample_size(3);
        sample_bench(&mut c);
    }
}
