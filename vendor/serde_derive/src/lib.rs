//! Offline stand-in for `serde_derive`: `#[derive(Serialize)]` and
//! `#[derive(Deserialize)]` for plain structs with named fields, targeting
//! the vendored `serde`'s `Value`-tree model. No `syn`/`quote` — the build
//! environment has no registry access, so the struct is parsed directly from
//! the token stream (attributes and visibility are skipped; generics and
//! enums are intentionally unsupported and panic with a clear message).
//!
//! Two field attributes are honoured, matching upstream serde's behaviour:
//! `#[serde(default)]` makes a missing field deserialize to
//! `Default::default()` instead of erroring, and `#[serde(skip)]` excludes
//! the field from the serialized form entirely (it deserializes to
//! `Default::default()`).

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize` for a named-field struct.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let s = parse_struct(input);
    let pushes: String = s
        .fields
        .iter()
        .filter(|f| !f.skip)
        .map(|f| {
            format!(
                "(\"{name}\".to_string(), ::serde::Serialize::to_value(&self.{name})),",
                name = f.name,
            )
        })
        .collect();
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{\n\
                 ::serde::Value::Obj(vec![{pushes}])\n\
             }}\n\
         }}",
        name = s.name,
    )
    .parse()
    .expect("generated Serialize impl must parse")
}

/// Derives `serde::Deserialize` for a named-field struct.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let s = parse_struct(input);
    let inits: String = s
        .fields
        .iter()
        .map(|f| {
            if f.skip {
                return format!("{name}: ::std::default::Default::default(),", name = f.name);
            }
            let helper = if f.default { "from_field_or_default" } else { "from_field" };
            format!("{name}: ::serde::{helper}(v, \"{name}\")?,", name = f.name)
        })
        .collect();
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                 ::std::result::Result::Ok({name} {{ {inits} }})\n\
             }}\n\
         }}",
        name = s.name,
    )
    .parse()
    .expect("generated Deserialize impl must parse")
}

struct FieldDef {
    name: String,
    /// The field carried `#[serde(default)]`.
    default: bool,
    /// The field carried `#[serde(skip)]`.
    skip: bool,
}

struct StructDef {
    name: String,
    fields: Vec<FieldDef>,
}

/// Parses `[attrs] [vis] struct Name { [attrs] [vis] field: Type, ... }`.
fn parse_struct(input: TokenStream) -> StructDef {
    let mut iter = input.into_iter().peekable();
    // Skip outer attributes (`#[...]`) and visibility.
    loop {
        match iter.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                iter.next();
                iter.next(); // the [...] group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                iter.next();
                if let Some(TokenTree::Group(g)) = iter.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        iter.next(); // pub(crate) etc.
                    }
                }
            }
            _ => break,
        }
    }
    match iter.next() {
        Some(TokenTree::Ident(kw)) if kw.to_string() == "struct" => {}
        other => panic!(
            "vendored serde_derive only supports structs with named fields, found {other:?}"
        ),
    }
    let name = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected struct name, found {other:?}"),
    };
    // Find the brace group with the fields; anything before it that is not a
    // brace group (e.g. generics) is unsupported.
    let body = loop {
        match iter.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => break g,
            Some(TokenTree::Punct(p)) if p.as_char() == '<' => panic!(
                "vendored serde_derive does not support generic structs ({name})"
            ),
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => panic!(
                "vendored serde_derive does not support tuple/unit structs ({name})"
            ),
            Some(_) => continue,
            None => panic!("struct {name} has no body"),
        }
    };
    StructDef { name, fields: parse_fields(body.stream()) }
}

/// Returns `(default, skip)` flags when the bracketed attribute body is a
/// `serde(...)` list naming them.
fn serde_attr_flags(attr: TokenStream) -> (bool, bool) {
    let mut iter = attr.into_iter();
    match iter.next() {
        Some(TokenTree::Ident(id)) if id.to_string() == "serde" => {}
        _ => return (false, false),
    }
    match iter.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            let (mut default, mut skip) = (false, false);
            for tt in g.stream() {
                if let TokenTree::Ident(id) = tt {
                    match id.to_string().as_str() {
                        "default" => default = true,
                        "skip" => skip = true,
                        _ => {}
                    }
                }
            }
            (default, skip)
        }
        _ => (false, false),
    }
}

/// Extracts the fields: for each top-level-comma-separated chunk, the ident
/// immediately before the first top-level `:` is the name, and preceding
/// `#[serde(default)]` / `#[serde(skip)]` attributes flag it. Tracks `<...>`
/// depth because angle brackets are not token groups.
fn parse_fields(body: TokenStream) -> Vec<FieldDef> {
    let mut fields = Vec::new();
    let mut angle_depth = 0i32;
    let mut last_ident: Option<String> = None;
    let mut name_taken = false;
    let mut saw_hash = false;
    let mut has_default = false;
    let mut has_skip = false;
    for tt in body {
        let was_hash = saw_hash;
        saw_hash = false;
        match tt {
            TokenTree::Punct(p) => match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ':' if angle_depth == 0 && !name_taken => {
                    if let Some(name) = last_ident.take() {
                        fields.push(FieldDef { name, default: has_default, skip: has_skip });
                        name_taken = true;
                    }
                }
                ',' if angle_depth == 0 => {
                    name_taken = false;
                    last_ident = None;
                    has_default = false;
                    has_skip = false;
                }
                '#' => saw_hash = true, // field attribute marker
                _ => {}
            },
            TokenTree::Group(g)
                if was_hash && !name_taken && g.delimiter() == Delimiter::Bracket =>
            {
                let (default, skip) = serde_attr_flags(g.stream());
                has_default |= default;
                has_skip |= skip;
            }
            TokenTree::Ident(id) if !name_taken => {
                let s = id.to_string();
                if s != "pub" {
                    last_ident = Some(s);
                }
            }
            _ => {}
        }
    }
    fields
}
