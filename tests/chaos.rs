//! Chaos test: a seeded nemesis schedule — gray slowdown, asymmetric AZ
//! partition, namenode crash/restart, and a permanent datanode loss — runs
//! against a full HopsFS-CL cluster while the invariant checker watches.
//!
//! Asserted invariants (ISSUE acceptance criteria):
//!
//! - **liveness**: every submitted operation terminates (clients drain);
//! - **safety**: no acknowledged mutation is lost (the post-heal audit stats
//!   every acked create/mkdir);
//! - **replication**: the killed datanode's blocks are re-replicated back to
//!   factor 3 on live datanodes;
//! - **singletons**: after heal, at most one namenode leads and exactly one
//!   NDB management node believes it is the arbitrator;
//! - **recovery**: probe throughput after heal is within 10% of the
//!   pre-fault steady state;
//! - **replayability**: the same seed reproduces the identical fault trace,
//!   event count, and probe counts twice.

use hopsfs::block::BlockDnActor;
use hopsfs::client::ClientStats;
use hopsfs::{
    audit_ops, check_invariants, ChaosLog, FsClientActor, FsOp, FsOk, FsPath, OpSource,
    ScriptedSource, TrackedSource,
};
use rand::rngs::StdRng;
use simnet::{AzId, Fault, NodeId, Schedule, SimDuration, SimTime, Simulation};

fn p(s: &str) -> FsPath {
    FsPath::parse(s).unwrap()
}

/// An endless stream of tiny creates — the throughput probe.
struct ProbeSource {
    next: u64,
}

impl OpSource for ProbeSource {
    fn next_op(&mut self, _rng: &mut StdRng, _now: SimTime) -> Option<FsOp> {
        self.next += 1;
        Some(FsOp::Create { path: p(&format!("/probe/p{}", self.next)), size: 0 })
    }
}

/// A tracked client's script: mkdir + a short create/delete prologue
/// (finishing before the first fault), then a train of creates spanning the
/// whole fault window.
fn work_script(name: &str) -> Vec<FsOp> {
    let mut ops = vec![
        FsOp::Mkdir { path: p(&format!("/work/{name}")) },
        FsOp::Create { path: p(&format!("/work/{name}/tmp")), size: 0 },
        FsOp::Delete { path: p(&format!("/work/{name}/tmp")), recursive: false },
    ];
    for i in 0..25 {
        ops.push(FsOp::Create { path: p(&format!("/work/{name}/f{i}")), size: 0 });
    }
    ops
}

/// Polls the simulation until `client` has produced `n` results.
fn drain(sim: &mut Simulation, client: NodeId, n: usize) -> Vec<hopsfs::FsResult> {
    let deadline = sim.now() + SimDuration::from_secs(60);
    while sim.now() < deadline {
        sim.run_for(SimDuration::from_millis(50));
        if sim.actor::<FsClientActor>(client).results.len() >= n {
            return sim.actor::<FsClientActor>(client).results.clone();
        }
    }
    panic!(
        "client finished only {}/{n} ops by {}",
        sim.actor::<FsClientActor>(client).results.len(),
        sim.now()
    );
}

/// Everything a run produces that must be identical across same-seed runs.
#[derive(Debug, PartialEq)]
struct Outcome {
    trace: Vec<String>,
    events: u64,
    pre_ok: u64,
    post_ok: u64,
    acked: usize,
    completed: u64,
}

fn run_once(seed: u64, tracing: bool) -> Outcome {
    let mut cfg = hopsfs::FsConfig::hopsfs_cl(6, 3, 6);
    // The 7s one-way partition starves the leader of one AZ's datanode
    // heartbeats; widen the (configurable) liveness window past it so only
    // the really-killed datanode triggers re-replication.
    cfg.dn_heartbeat_window = SimDuration::from_secs(8);
    let mut sim = Simulation::new(seed);
    sim.set_jitter(0.0);
    if tracing {
        sim.enable_tracing();
    }
    let mut cluster = hopsfs::build_fs_cluster(&mut sim, cfg, 6);
    let view = cluster.view.clone();
    cluster.bulk_mkdir_p(&mut sim, "/probe");
    cluster.bulk_mkdir_p(&mut sim, "/big");
    cluster.bulk_mkdir_p(&mut sim, "/work");

    // A 200 MB file (2 blocks × 3 replicas) whose replication the nemesis
    // will attack.
    let blob = cluster.add_client(
        &mut sim,
        AzId(2),
        Box::new(ScriptedSource::new(vec![FsOp::Create {
            path: p("/big/blob"),
            size: 200u64 << 20,
        }])),
        ClientStats::shared(),
    );
    sim.actor_mut::<FsClientActor>(blob).keep_results = true;
    let results = drain(&mut sim, blob, 1);
    assert!(results[0].is_ok(), "blob create failed: {results:?}");
    sim.run_until(SimTime::from_secs(3));

    // The victim: a block-holding datanode, killed for good at t=9s.
    let victim = view
        .dn_ids
        .iter()
        .position(|&id| sim.actor::<BlockDnActor>(id).block_count() > 0)
        .expect("someone stores a block");

    // Probe client (AZ 0): endless small creates, counted per window.
    let probe_stats = ClientStats::shared();
    let probe = cluster.add_client(
        &mut sim,
        AzId(0),
        Box::new(ProbeSource { next: 0 }),
        probe_stats.clone(),
    );
    sim.actor_mut::<FsClientActor>(probe).think_time = SimDuration::from_millis(10);

    // Tracked clients whose acked mutations feed the post-heal audit.
    let log = ChaosLog::shared();
    let mut tracked = Vec::new();
    for (az, name) in [(AzId(0), "c0"), (AzId(2), "c1")] {
        let source = TrackedSource::new(Box::new(ScriptedSource::new(work_script(name))), log.clone());
        let id = cluster.add_client(&mut sim, az, Box::new(source), ClientStats::shared());
        sim.actor_mut::<FsClientActor>(id).think_time = SimDuration::from_millis(400);
        tracked.push(id);
    }

    // The nemesis: gray slowdown on an NDB datanode, an asymmetric AZ
    // partition, a namenode crash/restart inside it, and a permanent
    // datanode loss.
    let s = |t| SimTime::from_secs(t);
    let gray = view.ndb.datanode_ids[2]; // AZ 2 member of node group 0
    let nn1 = view.nn_ids[1]; // an AZ 1 namenode
    let schedule = Schedule::new()
        .at(s(6), Fault::GraySlow(gray, 100.0))
        .at(s(7), Fault::PartitionAzOneway(AzId(1), AzId(0)))
        .at(s(8), Fault::Crash(nn1))
        .at(s(9), Fault::Crash(view.dn_ids[victim]))
        .at(s(10), Fault::Restart(nn1))
        .at(s(12), Fault::GrayHeal(gray))
        .at(s(14), Fault::HealAzOneway(AzId(1), AzId(0)));
    let expected_faults = schedule.len();
    let trace = schedule.install(&mut sim);

    // Pre-fault steady-state window [4s, 6s).
    sim.run_until(s(4));
    let t0 = probe_stats.lock().unwrap().total_ok();
    sim.run_until(s(6));
    let pre_ok = probe_stats.lock().unwrap().total_ok() - t0;
    assert!(pre_ok > 0, "probe produced nothing pre-fault");

    // Ride through the fault window, then a post-heal window [30s, 32s).
    sim.run_until(s(30));
    let t1 = probe_stats.lock().unwrap().total_ok();
    sim.run_until(s(32));
    let post_ok = probe_stats.lock().unwrap().total_ok() - t1;
    sim.run_until(s(34));

    // Every fault fired, in order.
    let lines = trace.lines();
    assert_eq!(lines.len(), expected_faults, "unapplied faults: {lines:?}");
    for needle in ["gray-slow", "partition az1 -> az0", "crash", "restart", "heal az1 -> az0"] {
        assert!(lines.iter().any(|l| l.contains(needle)), "{needle} missing from {lines:?}");
    }

    // Liveness: both tracked clients drained their scripts.
    for &id in &tracked {
        let c = sim.actor::<FsClientActor>(id);
        assert!(c.done && c.idle(), "client {id} stuck with work in flight");
    }
    let (acked, completed, errors) = {
        let l = log.lock().unwrap();
        let acked = l.acked_mkdirs.len() + l.acked_creates.len() - l.acked_deletes.len();
        (acked, l.completed, l.errors)
    };
    assert_eq!(completed, 56, "every submitted op must terminate");
    assert!(errors < completed, "not a single tracked op succeeded");

    // Recovery: post-heal probe throughput within 10% of pre-fault.
    assert!(
        post_ok as f64 >= 0.9 * pre_ok as f64,
        "throughput did not recover: pre={pre_ok} post={post_ok}"
    );

    // Safety: every acked mutation is still visible after heal.
    let audit = audit_ops(&log.lock().unwrap());
    assert_eq!(audit.len(), acked);
    let n_audit = audit.len();
    let auditor = cluster.add_client(
        &mut sim,
        AzId(2),
        Box::new(ScriptedSource::new(audit)),
        ClientStats::shared(),
    );
    sim.actor_mut::<FsClientActor>(auditor).keep_results = true;
    let results = drain(&mut sim, auditor, n_audit);
    for (i, r) in results.iter().enumerate() {
        assert!(r.is_ok(), "acked mutation lost: audit op {i} returned {r:?}");
    }

    // Replication: the victim's blocks are back at factor 3 on live nodes.
    let open = drain_one(&mut sim, &cluster, FsOp::Open { path: p("/big/blob") });
    match open {
        Ok(FsOk::Locations { blocks, .. }) => {
            assert_eq!(blocks.len(), 2, "200MB = 2 blocks");
            for b in &blocks {
                assert_eq!(b.replicas.len(), 3, "replication not restored: {b:?}");
                for &d in &b.replicas {
                    assert_ne!(d as usize, victim, "metadata still lists the dead datanode");
                    assert!(sim.is_alive(view.dn_ids[d as usize]), "replica on a dead node");
                }
            }
        }
        other => panic!("open returned {other:?}"),
    }
    let live_copies: usize = view
        .dn_ids
        .iter()
        .enumerate()
        .filter(|&(i, _)| i != victim)
        .map(|(_, &id)| sim.actor::<BlockDnActor>(id).block_count())
        .sum();
    assert_eq!(live_copies, 6, "2 blocks x 3 replicas on live datanodes");

    // Singletons: one leader, one arbitrator, no stuck client.
    let mut quiet = tracked.clone();
    quiet.push(auditor);
    let report = check_invariants(&sim, &view, &quiet);
    assert!(report.clean(), "invariants violated: {report:?}");
    assert_eq!(report.leaders.len(), 1, "no namenode leads: {report:?}");

    Outcome { trace: lines, events: sim.events_processed(), pre_ok, post_ok, acked, completed }
}

/// Runs a single op through a fresh AZ-2 client and returns its result.
fn drain_one(sim: &mut Simulation, cluster: &hopsfs::FsCluster, op: FsOp) -> hopsfs::FsResult {
    let client = cluster.add_client(
        sim,
        AzId(2),
        Box::new(ScriptedSource::new(vec![op])),
        ClientStats::shared(),
    );
    sim.actor_mut::<FsClientActor>(client).keep_results = true;
    drain(sim, client, 1).remove(0)
}

#[test]
fn seeded_nemesis_schedule_heals_clean_and_replays_identically() {
    let a = run_once(7, false);
    let b = run_once(7, false);
    assert_eq!(a.trace, b.trace, "fault trace must replay identically");
    assert_eq!(a.events, b.events, "event count must replay identically");
    assert_eq!(
        (a.pre_ok, a.post_ok, a.acked, a.completed),
        (b.pre_ok, b.post_ok, b.acked, b.completed),
        "probe and audit counts must replay identically"
    );
    // The trace subsystem records but never draws RNG or schedules events:
    // a traced run must be bit-identical to the untraced one.
    let c = run_once(7, true);
    assert_eq!(a.trace, c.trace, "tracing perturbed the fault trace");
    assert_eq!(a.events, c.events, "tracing perturbed the event schedule");
    assert_eq!(
        (a.pre_ok, a.post_ok, a.acked, a.completed),
        (c.pre_ok, c.post_ok, c.acked, c.completed),
        "tracing perturbed probe/audit counts"
    );
}

// --- Subtree-operation crash window ----------------------------------------
//
// A namenode dies between the batched transactions of a recursive delete,
// leaving the subtree-lock flag set in NDB. The orphan sweep (piggybacked on
// the election round) must reclaim the lock, a retrying client must
// eventually complete the delete, and the namespace must end exactly where a
// sequential oracle says: subtree gone, siblings intact — bit-identically
// across same-seed runs.

use hopsfs::chaos::orphaned_sto_locks;
use hopsfs::NameNodeActor;
use std::sync::Mutex;
use std::sync::Arc;

/// Re-issues one op until it is acknowledged, recording every verdict. A
/// namenode crash mid-protocol surfaces as retryable errors (`Busy` while
/// the subtree lock is orphaned, `Unavailable` during failover); the op only
/// counts as done when a re-issue returns `Ok`.
struct RetryUntilAcked {
    op: FsOp,
    verdicts: Arc<Mutex<Vec<Result<(), hopsfs::FsError>>>>,
    done: bool,
}

impl OpSource for RetryUntilAcked {
    fn next_op(&mut self, _rng: &mut StdRng, _now: SimTime) -> Option<FsOp> {
        if self.done {
            None
        } else {
            Some(self.op.clone())
        }
    }

    fn on_result(&mut self, _op: &FsOp, result: &hopsfs::FsResult) {
        self.verdicts.lock().unwrap().push(result.as_ref().map(|_| ()).map_err(|e| *e));
        if result.is_ok() {
            self.done = true;
        }
    }
}

/// Everything the subtree-crash run produces that must replay identically.
#[derive(Debug, PartialEq)]
struct StoOutcome {
    trace: Vec<String>,
    events: u64,
    verdicts: Vec<Result<(), hopsfs::FsError>>,
    orphans_cleaned: u64,
    sto_ops: u64,
    big_listing: Vec<String>,
}

fn run_sto_crash(seed: u64) -> StoOutcome {
    let mut cfg = hopsfs::FsConfig::hopsfs_cl(6, 3, 3);
    // Many small batches: a wide window for the crash to land inside the
    // batched-transaction train.
    cfg.subtree_batch_size = 8;
    let mut sim = Simulation::new(seed);
    sim.set_jitter(0.0);
    let mut cluster = hopsfs::build_fs_cluster(&mut sim, cfg, 6);
    let view = cluster.view.clone();

    // A ~630-inode subtree (the victim) and a sibling that must survive.
    for d in 0..30 {
        for f in 0..20 {
            cluster.bulk_add_file(&mut sim, &format!("/big/t/d{d}/f{f}"), 0);
        }
    }
    cluster.bulk_add_file(&mut sim, "/big/keep", 4096);
    sim.run_until(SimTime::from_secs(3)); // elections settle

    let verdicts: Arc<Mutex<Vec<Result<(), hopsfs::FsError>>>> = Arc::new(Mutex::new(Vec::new()));
    let deleter = cluster.add_client(
        &mut sim,
        AzId(0),
        Box::new(RetryUntilAcked {
            op: FsOp::Delete { path: p("/big/t"), recursive: true },
            verdicts: verdicts.clone(),
            done: false,
        }),
        ClientStats::shared(),
    );
    sim.actor_mut::<FsClientActor>(deleter).think_time = SimDuration::from_millis(250);

    // AZ-aware clients bind to the AZ-local namenode; crash it shortly
    // after the delete starts (mid-protocol), restart it stateless later.
    let nn0 = view.nn_ids[0];
    let schedule = Schedule::new()
        .at(SimTime::from_millis(3_020), Fault::Crash(nn0))
        .at(SimTime::from_millis(5_000), Fault::Restart(nn0));
    let trace = schedule.install(&mut sim);

    // Ride through crash, restart, orphan sweep, and the client's retries.
    sim.run_until(SimTime::from_secs(25));
    let lines = trace.lines();
    assert_eq!(lines.len(), 2, "unapplied faults: {lines:?}");

    // Liveness: the delete was eventually acknowledged.
    {
        let c = sim.actor::<FsClientActor>(deleter);
        assert!(c.done && c.idle(), "deleter stuck: verdicts={:?}", verdicts.lock().unwrap());
    }
    let verdicts = verdicts.lock().unwrap().clone();
    assert_eq!(verdicts.last(), Some(&Ok(())), "final re-issue must succeed: {verdicts:?}");

    // The crash really interrupted a subtree op (the lock flag was left in
    // NDB) and the sweep really reclaimed it...
    let orphans_cleaned: u64 =
        view.nn_ids.iter().map(|&id| sim.actor::<NameNodeActor>(id).stats.sto_orphans_cleaned).sum();
    assert!(orphans_cleaned >= 1, "crash did not orphan a subtree lock (crash window missed)");
    let sto_ops: u64 =
        view.nn_ids.iter().map(|&id| sim.actor::<NameNodeActor>(id).stats.sto_ops).sum();
    assert!(sto_ops >= 2, "expected an interrupted attempt plus a successful re-issue");
    // ...and no lock row survives at quiesce.
    let orphans = orphaned_sto_locks(&sim, &view);
    assert!(orphans.is_empty(), "orphaned subtree locks at quiesce: {orphans:?}");

    // Oracle agreement: the subtree is gone (every level), the sibling and
    // its size survived.
    let big_listing = match drain_one(&mut sim, &cluster, FsOp::List { path: p("/big") }) {
        Ok(FsOk::Listing(entries)) => {
            let mut names: Vec<String> = entries.iter().map(|e| e.name.clone()).collect();
            names.sort();
            names
        }
        other => panic!("/big listing failed: {other:?}"),
    };
    assert_eq!(big_listing, vec!["keep".to_string()], "namespace differs from the oracle");
    for probe in ["/big/t", "/big/t/d0", "/big/t/d29/f19"] {
        let r = drain_one(&mut sim, &cluster, FsOp::Stat { path: p(probe) });
        assert_eq!(r, Err(hopsfs::FsError::NotFound), "{probe} survived the recursive delete");
    }
    match drain_one(&mut sim, &cluster, FsOp::Stat { path: p("/big/keep") }) {
        Ok(FsOk::Attrs(a)) => assert_eq!(a.size, 4096, "sibling mutated"),
        other => panic!("sibling lost: {other:?}"),
    }

    // Cluster-wide invariants, including the no-orphaned-lock check.
    let report = check_invariants(&sim, &view, &[deleter]);
    assert!(report.clean(), "invariants violated: {report:?}");

    StoOutcome {
        trace: lines,
        events: sim.events_processed(),
        verdicts,
        orphans_cleaned,
        sto_ops,
        big_listing,
    }
}

#[test]
fn namenode_crash_mid_subtree_op_heals_and_replays_identically() {
    let a = run_sto_crash(21);
    let b = run_sto_crash(21);
    assert_eq!(a, b, "same-seed subtree-crash runs must be bit-identical");
}

// --- Open-loop overload under a gray namenode -------------------------------
//
// Open-loop clients offer well past capacity while one namenode turns gray
// (CPU 40x slower, still "alive"). Admission control must shed — visibly,
// and correctly: the shed-accounting audit proves a shed request is never
// also executed (`received == answered + shed + in-flight` at the namenodes,
// and every shed surfaced as an `Overloaded` delivery at a client) — while
// every offered op still terminates, bit-identically across same-seed runs.

use hopsfs::{shed_audit, OpenLoopClientActor};
use workload::{Namespace, NamespaceSpec, OverloadSource};

/// Everything the overload run produces that must replay identically.
#[derive(Debug, PartialEq)]
struct OverloadOutcome {
    trace: Vec<String>,
    events: u64,
    ok: u64,
    err: u64,
    sheds: u64,
    dropped: u64,
    offered: u64,
}

fn run_overload(seed: u64) -> OverloadOutcome {
    let mut cfg = hopsfs::FsConfig::hopsfs_cl(6, 3, 3).scaled_down(16);
    cfg.admission.enabled = true;
    let mut sim = Simulation::new(seed);
    sim.set_jitter(0.0);
    let mut cluster = hopsfs::build_fs_cluster(&mut sim, cfg, 6);
    let view = cluster.view.clone();

    // A small namespace for the stat/open share of the mix, plus each
    // session's private directory.
    let ns = Arc::new(Namespace::generate(&NamespaceSpec {
        users: 2,
        dirs_per_user: 2,
        files_per_dir: 5,
        ..NamespaceSpec::default()
    }));
    ns.load_hopsfs(&mut sim, &mut cluster, 0);
    const SESSIONS: u64 = 6;
    for s in 0..SESSIONS {
        cluster.bulk_mkdir_p(&mut sim, &OverloadSource::private_dir_for(s));
    }
    sim.run_until(SimTime::from_secs(3)); // elections settle

    // Offered: 6 sessions x 400/s = 2400 ops/s at the cluster, far past the
    // scaled-down capacity; bounded so the run drains.
    let stats = ClientStats::shared();
    let mut ol_clients = Vec::new();
    for s in 0..SESSIONS {
        let mut src = OverloadSource::new(Arc::clone(&ns), s);
        src.max_ops = Some(1200);
        let id = cluster.add_open_loop_client(
            &mut sim,
            AzId((s % 3) as u8),
            Box::new(src),
            stats.clone(),
            400.0,
            64,
        );
        ol_clients.push(id);
    }

    // The nemesis: one namenode goes gray (not dead — the worst kind) for
    // the middle of the overload window.
    let s = |t| SimTime::from_secs(t);
    let gray_nn = view.nn_ids[1];
    let schedule = Schedule::new()
        .at(s(4), Fault::GraySlow(gray_nn, 40.0))
        .at(s(8), Fault::GrayHeal(gray_nn));
    let trace = schedule.install(&mut sim);

    // Ride through arrivals (3s..6s of virtual time) and drain.
    let deadline = s(120);
    loop {
        sim.run_for(SimDuration::from_millis(500));
        let drained = ol_clients
            .iter()
            .all(|&id| sim.actor::<OpenLoopClientActor>(id).done
                && sim.actor::<OpenLoopClientActor>(id).idle());
        if drained {
            break;
        }
        assert!(sim.now() < deadline, "open-loop sessions never drained");
    }
    // Let in-flight namenode work and stale responses settle.
    sim.run_for(SimDuration::from_secs(5));

    let lines = trace.lines();
    assert_eq!(lines.len(), 2, "unapplied faults: {lines:?}");

    // Overload really happened and admission really engaged.
    let sheds: u64 =
        view.nn_ids.iter().map(|&id| sim.actor::<NameNodeActor>(id).stats.admission_shed).sum();
    assert!(sheds > 0, "no request was shed under 2400 ops/s of offered load");

    // The audit: a shed request is never acked.
    let audit = shed_audit(&sim, &view, &stats.lock().unwrap());
    assert!(audit.in_flight == 0, "namenodes still busy at quiesce: {audit:?}");
    assert!(audit.clean(), "shed accounting does not balance: {audit:?}");

    // Liveness: every offered op terminated (completed or visibly dropped).
    let (offered, dropped) = ol_clients.iter().fold((0, 0), |(o, d), &id| {
        let c = sim.actor::<OpenLoopClientActor>(id);
        (o + c.offered, d + c.dropped_arrivals)
    });
    let (ok, err) = {
        let st = stats.lock().unwrap();
        (st.total_ok(), st.total_err())
    };
    assert_eq!(offered, SESSIONS * 1200, "arrival stream was cut short");
    assert_eq!(ok + err + dropped, offered, "an offered op vanished without a verdict");

    // Singletons still hold (no client list: open-loop actors are checked
    // above; `check_invariants` downcasts closed-loop clients only).
    let report = check_invariants(&sim, &view, &[]);
    assert!(report.clean(), "invariants violated: {report:?}");

    OverloadOutcome {
        trace: lines,
        events: sim.events_processed(),
        ok,
        err,
        sheds,
        dropped,
        offered,
    }
}

#[test]
fn open_loop_overload_sheds_accountably_and_replays_identically() {
    let a = run_overload(31);
    let b = run_overload(31);
    assert_eq!(a, b, "same-seed overload runs must be bit-identical");
}

// --- Whole-AZ outage with NDB node recovery ---------------------------------
//
// The paper's headline failure: an entire availability zone goes dark for
// longer than the arbitrator's episode TTL, then comes back. Every node in
// the zone — NDB datanodes, namenodes, block datanodes — crashes with a
// seed-deterministic stagger and later revives. The NDB node-recovery
// protocol must re-admit the revived datanodes only after copy-fragment
// resync; meanwhile the surviving AZs keep serving, no acked mutation is
// lost, no recovering replica serves a read, and at quiesce every node
// group's fragments are byte-identical again — bit-identically across
// same-seed runs.

use hopsfs::{fragment_divergence, recovering_read_violations};
use ndb::DatanodeActor;

/// Everything the AZ-outage run produces that must replay identically.
#[derive(Debug, PartialEq)]
struct AzOutcome {
    trace: Vec<String>,
    events: u64,
    pre_ok: u64,
    during_ok: u64,
    post_ok: u64,
    acked: usize,
    completed: u64,
    resyncs: u64,
}

fn run_az_outage(seed: u64, shards: u32) -> AzOutcome {
    let cfg = hopsfs::FsConfig::hopsfs_cl(6, 3, 6);
    let mut sim = Simulation::new(seed);
    sim.set_shards(shards);
    sim.set_jitter(0.0);
    let mut cluster = hopsfs::build_fs_cluster(&mut sim, cfg, 6);
    let view = cluster.view.clone();
    cluster.bulk_mkdir_p(&mut sim, "/probe");
    cluster.bulk_mkdir_p(&mut sim, "/work");
    sim.run_until(SimTime::from_secs(3)); // elections settle

    // Probe client (AZ 0, survives the outage): endless small creates.
    let probe_stats = ClientStats::shared();
    let probe = cluster.add_client(
        &mut sim,
        AzId(0),
        Box::new(ProbeSource { next: 0 }),
        probe_stats.clone(),
    );
    sim.actor_mut::<FsClientActor>(probe).think_time = SimDuration::from_millis(10);

    // Tracked clients in the surviving AZs: their create trains span the
    // whole outage window, so acked mutations land before, during, and
    // after the zone loss.
    let log = ChaosLog::shared();
    let mut tracked = Vec::new();
    for (az, name) in [(AzId(0), "c0"), (AzId(1), "c1")] {
        let source =
            TrackedSource::new(Box::new(ScriptedSource::new(work_script(name))), log.clone());
        let id = cluster.add_client(&mut sim, az, Box::new(source), ClientStats::shared());
        sim.actor_mut::<FsClientActor>(id).think_time = SimDuration::from_millis(500);
        tracked.push(id);
    }

    // The nemesis: AZ 2 dark from 6s to 13s — longer than the arbitrator's
    // 5s episode TTL, like the real outages the paper cites.
    let s = |t| SimTime::from_secs(t);
    let schedule =
        Schedule::new().at(s(6), Fault::AzOutage(AzId(2))).at(s(13), Fault::AzRestore(AzId(2)));
    let trace = schedule.install(&mut sim);

    // Pre-fault steady state [4s, 6s).
    sim.run_until(s(4));
    let t0 = probe_stats.lock().unwrap().total_ok();
    sim.run_until(s(6));
    let pre_ok = probe_stats.lock().unwrap().total_ok() - t0;
    assert!(pre_ok > 0, "probe produced nothing pre-fault");

    // Mid-outage window [8s, 12s): the cluster must keep serving from the
    // two surviving AZs (2 of 3 replicas per node group are alive).
    sim.run_until(s(8));
    let t1 = probe_stats.lock().unwrap().total_ok();
    sim.run_until(s(12));
    let during_ok = probe_stats.lock().unwrap().total_ok() - t1;
    assert!(during_ok > 0, "cluster stopped serving during the AZ outage");

    // Restore, recovery, and a post-heal window [26s, 28s).
    sim.run_until(s(26));
    let t2 = probe_stats.lock().unwrap().total_ok();
    sim.run_until(s(28));
    let post_ok = probe_stats.lock().unwrap().total_ok() - t2;
    sim.run_until(s(30));

    let lines = trace.lines();
    assert_eq!(lines.len(), 2, "unapplied faults: {lines:?}");
    assert!(lines[0].contains("az-outage az2"), "bad trace: {lines:?}");
    assert!(lines[1].contains("az-restore az2"), "bad trace: {lines:?}");

    // Liveness: both tracked clients drained their scripts.
    for &id in &tracked {
        let c = sim.actor::<FsClientActor>(id);
        assert!(c.done && c.idle(), "client {id} stuck with work in flight");
    }
    let (acked, completed) = {
        let l = log.lock().unwrap();
        (l.acked_mkdirs.len() + l.acked_creates.len() - l.acked_deletes.len(), l.completed)
    };
    assert_eq!(completed, 56, "every submitted op must terminate");

    // Recovery: post-heal probe throughput within 10% of pre-fault.
    assert!(
        post_ok as f64 >= 0.9 * pre_ok as f64,
        "throughput did not recover: pre={pre_ok} post={post_ok}"
    );

    // Safety: every acked mutation is still visible after heal.
    let audit = audit_ops(&log.lock().unwrap());
    assert_eq!(audit.len(), acked);
    let n_audit = audit.len();
    let auditor = cluster.add_client(
        &mut sim,
        AzId(0),
        Box::new(ScriptedSource::new(audit)),
        ClientStats::shared(),
    );
    sim.actor_mut::<FsClientActor>(auditor).keep_results = true;
    let results = drain(&mut sim, auditor, n_audit);
    for (i, r) in results.iter().enumerate() {
        assert!(r.is_ok(), "acked mutation lost in the AZ outage: audit op {i} returned {r:?}");
    }

    // Node recovery really ran: every AZ-2 NDB datanode is back, synced,
    // and went through a copy-fragment resync.
    let mut resyncs = 0;
    for (i, &id) in view.ndb.datanode_ids.iter().enumerate() {
        let az2 = view.ndb.config.datanodes[i].location_domain_id == Some(AzId(2));
        if !az2 {
            continue;
        }
        assert!(sim.is_alive(id), "AZ-2 NDB datanode {i} never came back");
        let dn = sim.actor::<DatanodeActor>(id);
        assert!(!dn.is_recovering(), "NDB datanode {i} still recovering at quiesce");
        assert!(dn.stats.resyncs_completed >= 1, "NDB datanode {i} rejoined without resync");
        resyncs += dn.stats.resyncs_completed;
    }

    // The recovery-protocol invariants.
    assert_eq!(
        recovering_read_violations(&sim, &view),
        0,
        "a recovering replica served a read"
    );
    let diverged = fragment_divergence(&sim, &view);
    assert!(diverged.is_empty(), "fragments diverge after recovery: {diverged:?}");

    // Singletons: one leader, one arbitrator, no stuck client.
    let mut quiet = tracked.clone();
    quiet.push(auditor);
    let report = check_invariants(&sim, &view, &quiet);
    assert!(report.clean(), "invariants violated: {report:?}");
    assert_eq!(report.leaders.len(), 1, "no namenode leads: {report:?}");

    AzOutcome {
        trace: lines,
        events: sim.events_processed(),
        pre_ok,
        during_ok,
        post_ok,
        acked,
        completed,
        resyncs,
    }
}

#[test]
fn az_outage_recovers_clean_and_replays_identically() {
    let a = run_az_outage(17, 1);
    let b = run_az_outage(17, 1);
    assert_eq!(a, b, "same-seed AZ-outage runs must be bit-identical");
}

/// The same whole-AZ outage schedule replayed on the conservative-parallel
/// kernel: the complete Outcome — fault trace, event count, probe windows,
/// audit counts, resyncs — must be bit-identical at every shard count.
#[test]
fn az_outage_outcome_is_shard_count_invariant() {
    let reference = run_az_outage(17, 1);
    for shards in [2, 4, 8] {
        let got = run_az_outage(17, shards);
        assert_eq!(got, reference, "AZ-outage outcome diverged at shards={shards}");
    }
}

// --- Lease coherence under crash + partition --------------------------------
//
// Client metadata caching on: readers hammer a small hot set from leased
// caches while mutators churn the same paths, and the nemesis partitions an
// AZ and crash/restarts a namenode mid-stream. The shared [`LeaseMonitor`]
// checks the `lease_coherence` invariant on every locally served read: *no
// read is ever served from a cache entry whose lease outlived an acked
// conflicting mutation* — and the whole run must replay bit-identically.

use hopsfs::{lease_coherence, LeaseMonitor};

/// Endless reads over the hot set: stat/open the files, list the dirs.
struct HotReadSource {
    users: u64,
}

impl OpSource for HotReadSource {
    fn next_op(&mut self, rng: &mut StdRng, _now: SimTime) -> Option<FsOp> {
        use rand::Rng;
        let u = rng.gen_range(0..self.users);
        Some(match rng.gen_range(0..8u32) {
            0 => FsOp::List { path: p(&format!("/hot/u{u}")) },
            1 => FsOp::Open { path: p(&format!("/hot/u{u}/f0")) },
            2..=4 => FsOp::Stat { path: p(&format!("/hot/u{u}/f0")) },
            _ => FsOp::Stat { path: p(&format!("/hot/u{u}/f1")) },
        })
    }
}

/// Endless conflicting churn on the same hot set: attribute flips, a
/// create/delete pair, and a rename that oscillates `f1 <-> f1x`.
struct ChurnSource {
    users: u64,
    i: u64,
    renamed: Vec<bool>,
}

impl OpSource for ChurnSource {
    fn next_op(&mut self, _rng: &mut StdRng, _now: SimTime) -> Option<FsOp> {
        let i = self.i;
        self.i += 1;
        let u = (i / 4) % self.users;
        Some(match i % 4 {
            0 => FsOp::SetPerm { path: p(&format!("/hot/u{u}/f0")), perm: 0o600 + (i % 2) as u16 },
            1 => FsOp::Create { path: p(&format!("/hot/u{u}/tmp")), size: 0 },
            2 => FsOp::Delete { path: p(&format!("/hot/u{u}/tmp")), recursive: false },
            _ => {
                let flip = &mut self.renamed[u as usize];
                let (src, dst) = if *flip { ("f1x", "f1") } else { ("f1", "f1x") };
                *flip = !*flip;
                FsOp::Rename {
                    src: p(&format!("/hot/u{u}/{src}")),
                    dst: p(&format!("/hot/u{u}/{dst}")),
                }
            }
        })
    }
}

/// Everything the lease run produces that must replay identically.
#[derive(Debug, PartialEq)]
struct LeaseOutcome {
    trace: Vec<String>,
    events: u64,
    hits: u64,
    misses: u64,
    invalidations: u64,
    serves: u64,
    acks: u64,
    violations: u64,
    granted: u64,
    rounds: u64,
    pushes: u64,
}

fn run_lease_chaos(seed: u64, shards: u32) -> LeaseOutcome {
    const USERS: u64 = 3;
    let mut cfg = hopsfs::FsConfig::hopsfs_cl(6, 3, 3);
    cfg.lease.enabled = true;
    cfg.lease.ttl = SimDuration::from_secs(4);
    let mut sim = Simulation::new(seed);
    sim.set_shards(shards);
    sim.set_jitter(0.0);
    let mut cluster = hopsfs::build_fs_cluster(&mut sim, cfg, 3);
    let view = cluster.view.clone();

    // The hot set: USERS directories of two files each.
    cluster.bulk_mkdir_p(&mut sim, "/hot");
    let mut setup = Vec::new();
    for u in 0..USERS {
        setup.push(FsOp::Mkdir { path: p(&format!("/hot/u{u}")) });
        setup.push(FsOp::Create { path: p(&format!("/hot/u{u}/f0")), size: 0 });
        setup.push(FsOp::Create { path: p(&format!("/hot/u{u}/f1")), size: 0 });
    }
    let n_setup = setup.len();
    let loader = cluster.add_client(
        &mut sim,
        AzId(0),
        Box::new(ScriptedSource::new(setup)),
        ClientStats::shared(),
    );
    sim.actor_mut::<FsClientActor>(loader).keep_results = true;
    let results = drain(&mut sim, loader, n_setup);
    assert!(results.iter().all(|r| r.is_ok()), "setup failed: {results:?}");

    // Past the lease grant warm-up (election visibility window).
    sim.run_until(SimTime::from_secs(7));

    // Readers and mutators share one coherence monitor and one stats sink.
    let monitor = Arc::new(Mutex::new(LeaseMonitor::default()));
    let stats = ClientStats::shared();
    for az in [0u8, 1, 2, 0] {
        let id = cluster.add_client(
            &mut sim,
            AzId(az),
            Box::new(HotReadSource { users: USERS }),
            stats.clone(),
        );
        let a = sim.actor_mut::<FsClientActor>(id);
        a.think_time = SimDuration::from_millis(2);
        a.monitor = Some(monitor.clone());
    }
    for az in [1u8, 2] {
        let id = cluster.add_client(
            &mut sim,
            AzId(az),
            Box::new(ChurnSource { users: USERS, i: 0, renamed: vec![false; USERS as usize] }),
            stats.clone(),
        );
        let a = sim.actor_mut::<FsClientActor>(id);
        a.think_time = SimDuration::from_millis(40);
        a.monitor = Some(monitor.clone());
    }

    // The nemesis: an asymmetric AZ partition across the revoke-round
    // window, with a namenode crash/restart inside it.
    let s = |t| SimTime::from_secs(t);
    let nn1 = view.nn_ids[1];
    let schedule = Schedule::new()
        .at(s(9), Fault::PartitionAzOneway(AzId(1), AzId(0)))
        .at(s(10), Fault::Crash(nn1))
        .at(s(12), Fault::Restart(nn1))
        .at(s(14), Fault::HealAzOneway(AzId(1), AzId(0)));
    let expected_faults = schedule.len();
    let trace = schedule.install(&mut sim);

    // Ride through the fault window plus a post-heal serving window.
    sim.run_until(s(24));

    let lines = trace.lines();
    assert_eq!(lines.len(), expected_faults, "unapplied faults: {lines:?}");

    // The cache really served, conflicts really happened, and coherence held.
    let (hits, misses, invalidations) = {
        let st = stats.lock().unwrap();
        (st.lease_hits, st.lease_misses, st.lease_invalidations)
    };
    let (serves, acks, violations) = {
        let m = monitor.lock().unwrap();
        (m.serves_checked, m.acks_recorded, lease_coherence(&m))
    };
    assert!(hits > 0, "no read was ever served from the lease cache");
    assert!(invalidations > 0, "no cache entry was ever invalidated");
    assert!(acks > 0, "no conflicting mutation was ever acked");
    assert_eq!(violations, 0, "lease served stale data past an acked conflict");

    // Namenode-side: grants flowed, revoke rounds ran, pushes reached
    // conflicting holders.
    let (granted, rounds, pushes) = view.nn_ids.iter().fold((0, 0, 0), |(g, r, q), &id| {
        let st = &sim.actor::<NameNodeActor>(id).stats;
        (g + st.leases_granted, r + st.lease_revoke_rounds, q + st.lease_pushes)
    });
    assert!(granted > 0, "no lease was ever granted");
    assert!(rounds > 0, "no mutation ever opened a revoke round");
    assert!(pushes > 0, "no invalidation was ever pushed to a holder");

    // Singletons and leadership recovered post-heal.
    let report = check_invariants(&sim, &view, &[]);
    assert!(report.clean(), "invariants violated: {report:?}");

    LeaseOutcome {
        trace: lines,
        events: sim.events_processed(),
        hits,
        misses,
        invalidations,
        serves,
        acks,
        violations,
        granted,
        rounds,
        pushes,
    }
}

#[test]
fn lease_coherence_holds_under_crash_and_partition_and_replays_identically() {
    let a = run_lease_chaos(17, 1);
    let b = run_lease_chaos(17, 1);
    assert_eq!(a, b, "same-seed lease-chaos runs must be bit-identical");
}

/// The lease-coherence chaos schedule on the sharded kernel: cache hit/miss
/// streams, revoke rounds, and the coherence verdict must not depend on the
/// shard partition.
#[test]
fn lease_chaos_outcome_is_shard_count_invariant() {
    let reference = run_lease_chaos(17, 1);
    for shards in [2, 4, 8] {
        let got = run_lease_chaos(17, shards);
        assert_eq!(got, reference, "lease-chaos outcome diverged at shards={shards}");
    }
}

// --- Elastic serving: diurnal load, NN crash mid-drain, node-group add ------
//
// The full elastic stack under a diurnal load swing: the controller grows the
// namenode pool through the peak and drains it in the trough; mid-peak the
// NDB tier adds a node group online (live partition migration under 2PC
// traffic), and in the trough it removes it again. The nemesis kills the
// draining namenode *inside its drain window* (a long-running create holds
// the window open), so the controller's drain-timeout reconciliation — not
// the cooperative DrainDone — has to park it. Invariants: no acked mutation
// lost, every offered op terminates, zero epoch-routing violations across
// both node-group events, and the whole run replays bit-identically.

use hopsfs::{epoch_routing, ElasticController};
use ndb::mgmt::MgmtActor;
use ndb::ReconfigReq;
use std::cell::Cell;
use std::rc::Rc;

/// Everything the elastic run produces that must replay identically.
#[derive(Debug, PartialEq)]
struct ElasticOutcome {
    events: u64,
    ok: u64,
    err: u64,
    offered: u64,
    dropped: u64,
    acked: usize,
    completed: u64,
    scale_ups: u64,
    scale_downs: u64,
    forced_parks: u64,
    membership_epoch: u64,
    ndb_epoch: u64,
    migrations: u64,
    drained_nn: u32,
}

fn run_elastic_chaos(seed: u64) -> ElasticOutcome {
    let mut cfg = hopsfs::FsConfig::hopsfs_cl(6, 3, 3).scaled_down(32);
    cfg.admission.enabled = true;
    cfg.elastic.enabled = true;
    cfg.elastic.initial_active = 1;
    cfg.elastic.boot_delay = SimDuration::from_secs(1);
    cfg.elastic.cooldown = SimDuration::from_secs(2);
    cfg.elastic.drain_timeout = SimDuration::from_secs(2);
    cfg.elastic.drain_grace = SimDuration::from_secs(1);
    cfg.elastic.scale_up_threshold = SimDuration::from_millis(15);
    // At peak each of the three namenodes still queues ~1ms; only the trough
    // falls under this, so the pool is stable at 3 until the load drops.
    cfg.elastic.scale_down_threshold = SimDuration::from_micros(300);
    cfg.ndb.initial_node_groups = 1;
    let mut sim = Simulation::new(seed);
    sim.set_jitter(0.0);
    let mut cluster = hopsfs::build_fs_cluster(&mut sim, cfg, 6);
    let view = cluster.view.clone();

    let ns = Arc::new(Namespace::generate(&NamespaceSpec {
        users: 2,
        dirs_per_user: 2,
        files_per_dir: 5,
        ..NamespaceSpec::default()
    }));
    ns.load_hopsfs(&mut sim, &mut cluster, 0);
    const SESSIONS: u64 = 3;
    for s in 0..SESSIONS {
        cluster.bulk_mkdir_p(&mut sim, &OverloadSource::private_dir_for(s));
    }
    cluster.bulk_mkdir_p(&mut sim, "/work");
    sim.run_until(SimTime::from_secs(3)); // elections settle

    // Tracked closed-loop clients: their create trains span the scale-up,
    // the node-group add, and the mid-drain crash.
    let log = ChaosLog::shared();
    let mut tracked = Vec::new();
    for (az, name) in [(AzId(0), "c0"), (AzId(1), "c1")] {
        let source =
            TrackedSource::new(Box::new(ScriptedSource::new(work_script(name))), log.clone());
        let id = cluster.add_client(&mut sim, az, Box::new(source), ClientStats::shared());
        sim.actor_mut::<FsClientActor>(id).think_time = SimDuration::from_millis(900);
        tracked.push(id);
    }

    // Open-loop diurnal load: a trough one namenode absorbs, then a peak
    // that must force the pool to grow, back to the trough at t=26s.
    let stats = ClientStats::shared();
    let curve = simnet::RateCurve::diurnal(
        vec![
            (SimDuration::ZERO, 40.0),
            (SimDuration::from_secs(11), 500.0),
            (SimDuration::from_secs(26), 40.0),
        ],
        SimDuration::from_secs(3600),
    );
    let mut ol_clients = Vec::new();
    for s in 0..SESSIONS {
        let mut src = OverloadSource::new(Arc::clone(&ns), s);
        src.max_ops = Some(8200);
        let id = cluster.add_open_loop_client(
            &mut sim,
            AzId((s % 3) as u8),
            Box::new(src),
            stats.clone(),
            1.0, // overridden by the curve below
            64,
        );
        sim.actor_mut::<OpenLoopClientActor>(id).curve = Some(curve.clone());
        ol_clients.push(id);
    }

    // Mid-peak: the NDB tier grows from one node group to two, migrating
    // partitions while the 2PC traffic above keeps flowing.
    let mgmt0 = view.ndb.mgmt_ids[0];
    sim.at(SimTime::from_secs(13), move |sim| {
        sim.inject(mgmt0, ReconfigReq { target_groups: 2 });
    });

    // The mid-drain crash, event-driven: from the trough on, poll the
    // controller every 20ms and kill the first namenode it starts draining
    // — the drain grace guarantees the victim is still `Draining` when the
    // kill lands. The controller must then reconcile it by force-park
    // (drain-timeout), never by DrainDone.
    let cid = view.controller_id.expect("elastic deployment has a controller");
    let drained_nn = Rc::new(Cell::new(u32::MAX));
    fn arm_mid_drain_kill(
        sim: &mut Simulation,
        at: SimTime,
        cid: NodeId,
        view: std::sync::Arc<hopsfs::FsView>,
        drained: Rc<Cell<u32>>,
    ) {
        sim.at(at, move |sim| {
            let pick = (0..view.nn_ids.len()).find(|&i| {
                sim.actor::<ElasticController>(cid).state_of(i) == hopsfs::NnPoolState::Draining
            });
            if let Some(i) = pick {
                drained.set(i as u32);
                sim.kill_node(view.nn_ids[i]);
            } else if at < SimTime::from_secs(40) {
                arm_mid_drain_kill(sim, at + SimDuration::from_millis(20), cid, view, drained);
            }
        });
    }
    arm_mid_drain_kill(&mut sim, SimTime::from_millis(26_400), cid, view.clone(), drained_nn.clone());

    // Trough again: the NDB tier shrinks back to one node group.
    sim.at(SimTime::from_secs(33), move |sim| {
        sim.inject(mgmt0, ReconfigReq { target_groups: 1 });
    });

    // Ride through the whole schedule, then drain every session.
    sim.run_until(SimTime::from_secs(38));
    let deadline = SimTime::from_secs(150);
    loop {
        sim.run_for(SimDuration::from_millis(500));
        let ol_done = ol_clients.iter().all(|&id| {
            sim.actor::<OpenLoopClientActor>(id).done
                && sim.actor::<OpenLoopClientActor>(id).idle()
        });
        let tracked_done =
            tracked.iter().all(|&id| sim.actor::<FsClientActor>(id).done);
        if ol_done && tracked_done {
            break;
        }
        assert!(sim.now() < deadline, "elastic sessions never drained");
    }
    sim.run_for(SimDuration::from_secs(5)); // stale responses settle

    // The pool really moved: grew for the peak, drained in the trough, and
    // the mid-drain crash was reconciled by force-park, not DrainDone.
    let (scale_ups, scale_downs, forced_parks, membership_epoch) = {
        let c = sim.actor::<ElasticController>(cid);
        (c.stats.scale_ups, c.stats.scale_downs, c.stats.forced_parks, c.epoch())
    };
    assert!(scale_ups >= 1, "peak never grew the pool");
    assert!(scale_downs >= 1, "trough never drained the pool");
    assert_eq!(forced_parks, 1, "the crashed drainer must be force-parked exactly once");
    assert_ne!(drained_nn.get(), u32::MAX, "no drain was ever observed to kill");

    // Both node-group events committed while traffic flowed.
    let mgmt = sim.actor::<MgmtActor>(mgmt0);
    assert_eq!(mgmt.reconfigs_committed, 2, "a reconfiguration never committed");
    assert!(!mgmt.reconfig_in_flight(), "reconfiguration stuck at quiesce");
    assert_eq!(mgmt.committed_groups(), 1, "pool did not shrink back");
    let ndb_epoch = mgmt.committed_epoch();
    assert_eq!(ndb_epoch, 2, "two reconfigurations = two epochs");
    let migrations: u64 = view
        .ndb
        .datanode_ids
        .iter()
        .map(|&id| sim.actor::<DatanodeActor>(id).stats.migrations_completed)
        .sum();
    assert!(migrations >= 1, "the node-group add never migrated a partition");

    // The routing invariant: nothing ever applied under a superseded epoch.
    assert_eq!(epoch_routing(&sim, &view), 0, "write applied under a stale partition map");

    // Liveness: every offered op terminated.
    let (offered, dropped) = ol_clients.iter().fold((0, 0), |(o, d), &id| {
        let c = sim.actor::<OpenLoopClientActor>(id);
        (o + c.offered, d + c.dropped_arrivals)
    });
    let (ok, err) = {
        let st = stats.lock().unwrap();
        (st.total_ok(), st.total_err())
    };
    assert_eq!(offered, SESSIONS * 8200, "arrival stream was cut short");
    assert_eq!(ok + err + dropped, offered, "an offered op vanished without a verdict");
    let (acked, completed) = {
        let l = log.lock().unwrap();
        (l.acked_mkdirs.len() + l.acked_creates.len() - l.acked_deletes.len(), l.completed)
    };
    assert_eq!(completed, 56, "every tracked op must terminate");

    // Safety: every acked mutation is still visible — across a pool grow,
    // a pool shrink, a namenode crash, and two NDB epochs.
    let audit = audit_ops(&log.lock().unwrap());
    assert_eq!(audit.len(), acked);
    let n_audit = audit.len();
    let auditor = cluster.add_client(
        &mut sim,
        AzId(0),
        Box::new(ScriptedSource::new(audit)),
        ClientStats::shared(),
    );
    sim.actor_mut::<FsClientActor>(auditor).keep_results = true;
    let results = drain(&mut sim, auditor, n_audit);
    for (i, r) in results.iter().enumerate() {
        assert!(r.is_ok(), "acked mutation lost: audit op {i} returned {r:?}");
    }

    // Replica convergence after both migrations.
    let diverged = fragment_divergence(&sim, &view);
    assert!(diverged.is_empty(), "fragments diverge after reconfiguration: {diverged:?}");

    ElasticOutcome {
        events: sim.events_processed(),
        ok,
        err,
        offered,
        dropped,
        acked,
        completed,
        scale_ups,
        scale_downs,
        forced_parks,
        membership_epoch,
        ndb_epoch,
        migrations,
        drained_nn: drained_nn.get(),
    }
}

#[test]
fn elastic_pool_rides_diurnal_load_with_mid_drain_crash_and_replays_identically() {
    let a = run_elastic_chaos(11);
    let b = run_elastic_chaos(11);
    assert_eq!(a, b, "same-seed elastic-chaos runs must be bit-identical");
}
