//! Cross-system parity: the same operations and the same generated
//! namespace must look identical through HopsFS-CL and through the CephFS
//! baseline — the comparison in the paper's Figure 5 is only fair if both
//! systems implement the same file system semantics.

use hopsfs::client::ClientStats;
use hopsfs::{FsOk, FsOp, FsPath, ScriptedSource};
use simnet::{AzId, SimDuration, SimTime, Simulation};
use std::rc::Rc;
use workload::{Namespace, NamespaceSpec};

fn p(s: &str) -> FsPath {
    FsPath::parse(s).unwrap()
}

fn scenario() -> Vec<FsOp> {
    vec![
        FsOp::Mkdir { path: p("/a") },
        FsOp::Mkdir { path: p("/a/b") },
        FsOp::Create { path: p("/a/b/f1"), size: 0 },
        FsOp::Create { path: p("/a/b/f2"), size: 2048 },
        FsOp::List { path: p("/a/b") },
        FsOp::Stat { path: p("/a/b/f2") },
        FsOp::Rename { src: p("/a/b"), dst: p("/a/c") },
        FsOp::Stat { path: p("/a/c/f1") },
        FsOp::Stat { path: p("/a/b/f1") },
        FsOp::Delete { path: p("/a/c/f1"), recursive: false },
        FsOp::List { path: p("/a/c") },
        FsOp::Delete { path: p("/a"), recursive: true },
        FsOp::List { path: p("/") },
    ]
}

fn run_hopsfs(ops: Vec<FsOp>) -> Vec<hopsfs::FsResult> {
    let n = ops.len();
    let mut sim = Simulation::new(3);
    sim.set_jitter(0.0);
    let cluster = hopsfs::build_fs_cluster(&mut sim, hopsfs::FsConfig::hopsfs_cl(6, 3, 2), 0);
    let stats = ClientStats::shared();
    let c = cluster.add_client(&mut sim, AzId(0), Box::new(ScriptedSource::new(ops)), stats);
    sim.actor_mut::<hopsfs::FsClientActor>(c).keep_results = true;
    let mut t = SimTime::ZERO;
    while sim.actor::<hopsfs::FsClientActor>(c).results.len() < n && t < SimTime::from_secs(60) {
        t += SimDuration::from_millis(100);
        sim.run_until(t);
    }
    sim.actor::<hopsfs::FsClientActor>(c).results.clone()
}

fn run_ceph(ops: Vec<FsOp>) -> Vec<hopsfs::FsResult> {
    let n = ops.len();
    let mut sim = Simulation::new(3);
    sim.set_jitter(0.0);
    let mut cluster = cephsim::build_ceph_cluster(
        &mut sim,
        cephsim::CephConfig::paper(3, cephsim::BalanceMode::Dynamic, false),
    );
    cluster.apply_pinning();
    let stats = ClientStats::shared();
    let c = cluster.add_client(&mut sim, AzId(0), Box::new(ScriptedSource::new(ops)), stats);
    sim.actor_mut::<cephsim::CephClientActor>(c).keep_results = true;
    let mut t = SimTime::ZERO;
    while sim.actor::<cephsim::CephClientActor>(c).results.len() < n && t < SimTime::from_secs(60) {
        t += SimDuration::from_millis(100);
        sim.run_until(t);
    }
    sim.actor::<cephsim::CephClientActor>(c).results.clone()
}

#[test]
fn fixed_scenario_gives_identical_results() {
    let hops = run_hopsfs(scenario());
    let ceph = run_ceph(scenario());
    assert_eq!(hops.len(), ceph.len());
    for (i, (h, c)) in hops.iter().zip(&ceph).enumerate() {
        let same = match (h, c) {
            (Ok(FsOk::Listing(a)), Ok(FsOk::Listing(b))) => {
                let names = |v: &Vec<hopsfs::DirEntry>| {
                    let mut n: Vec<String> = v.iter().map(|e| e.name.clone()).collect();
                    n.sort();
                    n
                };
                names(a) == names(b)
            }
            (Ok(FsOk::Attrs(a)), Ok(FsOk::Attrs(b))) => a.is_dir == b.is_dir && a.size == b.size,
            (Ok(_), Ok(_)) => true,
            (Err(a), Err(b)) => a == b,
            _ => false,
        };
        assert!(same, "op {i}: hopsfs={h:?} cephfs={c:?}");
    }
}

#[test]
fn generated_namespace_loads_identically_into_both_systems() {
    let spec = NamespaceSpec { users: 6, dirs_per_user: 2, files_per_dir: 3, ..Default::default() };
    let ns = Rc::new(Namespace::generate(&spec));

    // Load into HopsFS via bulk loader; verify through the protocol.
    let mut sim = Simulation::new(4);
    sim.set_jitter(0.0);
    let mut cluster = hopsfs::build_fs_cluster(&mut sim, hopsfs::FsConfig::hopsfs_cl(6, 3, 2), 0);
    ns.load_hopsfs(&mut sim, &mut cluster, 0);
    let probes: Vec<FsOp> = vec![
        FsOp::List { path: p("/user/u0/d0") },
        FsOp::Stat { path: p(&ns.files[0]) },
        FsOp::List { path: p("/user") },
    ];
    let nops = probes.len();
    let stats = ClientStats::shared();
    let c = cluster.add_client(&mut sim, AzId(1), Box::new(ScriptedSource::new(probes)), stats);
    sim.actor_mut::<hopsfs::FsClientActor>(c).keep_results = true;
    let mut t = SimTime::ZERO;
    while sim.actor::<hopsfs::FsClientActor>(c).results.len() < nops && t < SimTime::from_secs(30) {
        t += SimDuration::from_millis(100);
        sim.run_until(t);
    }
    let hops_results = sim.actor::<hopsfs::FsClientActor>(c).results.clone();

    // Load into CephFS and read directly from its namespace store.
    let mut sim2 = Simulation::new(4);
    let mut ceph = cephsim::build_ceph_cluster(
        &mut sim2,
        cephsim::CephConfig::paper(2, cephsim::BalanceMode::Dynamic, false),
    );
    ns.load_ceph(&mut ceph, 0);

    match &hops_results[0] {
        Ok(FsOk::Listing(entries)) => {
            assert_eq!(entries.len(), spec.files_per_dir);
            let ceph_listing = ceph.ns.borrow().list("/user/u0/d0").unwrap();
            let mut a: Vec<String> = entries.iter().map(|e| e.name.clone()).collect();
            let mut b: Vec<String> = ceph_listing.iter().map(|e| e.name.clone()).collect();
            a.sort();
            b.sort();
            assert_eq!(a, b, "both systems see the same directory contents");
        }
        other => panic!("hopsfs listing failed: {other:?}"),
    }
    assert!(hops_results[1].is_ok(), "hottest file must exist in hopsfs");
    assert!(ceph.ns.borrow().get(&ns.files[0]).is_some(), "hottest file must exist in cephfs");
    match &hops_results[2] {
        Ok(FsOk::Listing(entries)) => assert_eq!(entries.len(), spec.users),
        other => panic!("/user listing failed: {other:?}"),
    }
}
