//! Cross-system parity: the same operations and the same generated
//! namespace must look identical through HopsFS-CL and through the CephFS
//! baseline — the comparison in the paper's Figure 5 is only fair if both
//! systems implement the same file system semantics.

use hopsfs::client::ClientStats;
use hopsfs::{FsOk, FsOp, FsPath, ScriptedSource};
use simnet::{AzId, SimDuration, SimTime, Simulation};
use std::sync::Arc;
use workload::{Namespace, NamespaceSpec};

fn p(s: &str) -> FsPath {
    FsPath::parse(s).unwrap()
}

fn scenario() -> Vec<FsOp> {
    vec![
        FsOp::Mkdir { path: p("/a") },
        FsOp::Mkdir { path: p("/a/b") },
        FsOp::Create { path: p("/a/b/f1"), size: 0 },
        FsOp::Create { path: p("/a/b/f2"), size: 2048 },
        FsOp::List { path: p("/a/b") },
        FsOp::Stat { path: p("/a/b/f2") },
        FsOp::Rename { src: p("/a/b"), dst: p("/a/c") },
        FsOp::Stat { path: p("/a/c/f1") },
        FsOp::Stat { path: p("/a/b/f1") },
        FsOp::Delete { path: p("/a/c/f1"), recursive: false },
        FsOp::List { path: p("/a/c") },
        FsOp::Delete { path: p("/a"), recursive: true },
        FsOp::List { path: p("/") },
    ]
}

fn run_hopsfs(ops: Vec<FsOp>) -> Vec<hopsfs::FsResult> {
    let n = ops.len();
    let mut sim = Simulation::new(3);
    sim.set_jitter(0.0);
    let cluster = hopsfs::build_fs_cluster(&mut sim, hopsfs::FsConfig::hopsfs_cl(6, 3, 2), 0);
    let stats = ClientStats::shared();
    let c = cluster.add_client(&mut sim, AzId(0), Box::new(ScriptedSource::new(ops)), stats);
    sim.actor_mut::<hopsfs::FsClientActor>(c).keep_results = true;
    let mut t = SimTime::ZERO;
    while sim.actor::<hopsfs::FsClientActor>(c).results.len() < n && t < SimTime::from_secs(60) {
        t += SimDuration::from_millis(100);
        sim.run_until(t);
    }
    sim.actor::<hopsfs::FsClientActor>(c).results.clone()
}

fn run_ceph(ops: Vec<FsOp>) -> Vec<hopsfs::FsResult> {
    let n = ops.len();
    let mut sim = Simulation::new(3);
    sim.set_jitter(0.0);
    let mut cluster = cephsim::build_ceph_cluster(
        &mut sim,
        cephsim::CephConfig::paper(3, cephsim::BalanceMode::Dynamic, false),
    );
    cluster.apply_pinning();
    let stats = ClientStats::shared();
    let c = cluster.add_client(&mut sim, AzId(0), Box::new(ScriptedSource::new(ops)), stats);
    sim.actor_mut::<cephsim::CephClientActor>(c).keep_results = true;
    let mut t = SimTime::ZERO;
    while sim.actor::<cephsim::CephClientActor>(c).results.len() < n && t < SimTime::from_secs(60) {
        t += SimDuration::from_millis(100);
        sim.run_until(t);
    }
    sim.actor::<cephsim::CephClientActor>(c).results.clone()
}

#[test]
fn fixed_scenario_gives_identical_results() {
    let hops = run_hopsfs(scenario());
    let ceph = run_ceph(scenario());
    assert_eq!(hops.len(), ceph.len());
    for (i, (h, c)) in hops.iter().zip(&ceph).enumerate() {
        let same = match (h, c) {
            (Ok(FsOk::Listing(a)), Ok(FsOk::Listing(b))) => {
                let names = |v: &Vec<hopsfs::DirEntry>| {
                    let mut n: Vec<String> = v.iter().map(|e| e.name.clone()).collect();
                    n.sort();
                    n
                };
                names(a) == names(b)
            }
            (Ok(FsOk::Attrs(a)), Ok(FsOk::Attrs(b))) => a.is_dir == b.is_dir && a.size == b.size,
            (Ok(_), Ok(_)) => true,
            (Err(a), Err(b)) => a == b,
            _ => false,
        };
        assert!(same, "op {i}: hopsfs={h:?} cephfs={c:?}");
    }
}

#[test]
fn generated_namespace_loads_identically_into_both_systems() {
    let spec = NamespaceSpec { users: 6, dirs_per_user: 2, files_per_dir: 3, ..Default::default() };
    let ns = Arc::new(Namespace::generate(&spec));

    // Load into HopsFS via bulk loader; verify through the protocol.
    let mut sim = Simulation::new(4);
    sim.set_jitter(0.0);
    let mut cluster = hopsfs::build_fs_cluster(&mut sim, hopsfs::FsConfig::hopsfs_cl(6, 3, 2), 0);
    ns.load_hopsfs(&mut sim, &mut cluster, 0);
    let probes: Vec<FsOp> = vec![
        FsOp::List { path: p("/user/u0/d0") },
        FsOp::Stat { path: p(&ns.files[0]) },
        FsOp::List { path: p("/user") },
    ];
    let nops = probes.len();
    let stats = ClientStats::shared();
    let c = cluster.add_client(&mut sim, AzId(1), Box::new(ScriptedSource::new(probes)), stats);
    sim.actor_mut::<hopsfs::FsClientActor>(c).keep_results = true;
    let mut t = SimTime::ZERO;
    while sim.actor::<hopsfs::FsClientActor>(c).results.len() < nops && t < SimTime::from_secs(30) {
        t += SimDuration::from_millis(100);
        sim.run_until(t);
    }
    let hops_results = sim.actor::<hopsfs::FsClientActor>(c).results.clone();

    // Load into CephFS and read directly from its namespace store.
    let mut sim2 = Simulation::new(4);
    let mut ceph = cephsim::build_ceph_cluster(
        &mut sim2,
        cephsim::CephConfig::paper(2, cephsim::BalanceMode::Dynamic, false),
    );
    ns.load_ceph(&mut ceph, 0);

    match &hops_results[0] {
        Ok(FsOk::Listing(entries)) => {
            assert_eq!(entries.len(), spec.files_per_dir);
            let ceph_listing = ceph.ns.lock().unwrap().list("/user/u0/d0").unwrap();
            let mut a: Vec<String> = entries.iter().map(|e| e.name.clone()).collect();
            let mut b: Vec<String> = ceph_listing.iter().map(|e| e.name.clone()).collect();
            a.sort();
            b.sort();
            assert_eq!(a, b, "both systems see the same directory contents");
        }
        other => panic!("hopsfs listing failed: {other:?}"),
    }
    assert!(hops_results[1].is_ok(), "hottest file must exist in hopsfs");
    assert!(ceph.ns.lock().unwrap().get(&ns.files[0]).is_some(), "hottest file must exist in cephfs");
    match &hops_results[2] {
        Ok(FsOk::Listing(entries)) => assert_eq!(entries.len(), spec.users),
        other => panic!("/user listing failed: {other:?}"),
    }
}

// --- Differential replay: Spotify-mix trace vs a sequential oracle --------

use hopsfs::client::OpSource;
use hopsfs::FsError;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::BTreeMap;
use workload::{MicroOp, MicroSource, Mix, SpotifySource};

/// What the oracle returns for one applied operation.
#[derive(Debug, Clone, PartialEq)]
enum OracleOk {
    Unit,
    Attrs { is_dir: bool, size: u64 },
    Listing(Vec<String>),
}

/// A sequential in-memory model of the shared file-system semantics: a flat
/// `path -> (is_dir, size)` map with POSIX-ish error behaviour. Every rule
/// here is one the cross-system `fixed_scenario_gives_identical_results`
/// test already pins between HopsFS and the CephFS baseline.
struct Oracle {
    entries: BTreeMap<String, (bool, u64)>,
}

impl Oracle {
    fn new() -> Self {
        let mut entries = BTreeMap::new();
        entries.insert("/".to_string(), (true, 0));
        Oracle { entries }
    }

    fn parent_of(path: &str) -> String {
        match path.rfind('/') {
            Some(0) => "/".to_string(),
            Some(i) => path[..i].to_string(),
            None => panic!("oracle paths are absolute: {path}"),
        }
    }

    /// Bulk-loads a node, creating ancestor directories (mirrors the
    /// clusters' bulk loaders).
    fn load(&mut self, path: &str, is_dir: bool, size: u64) {
        let mut ancestors = Vec::new();
        let mut cur = Self::parent_of(path);
        while cur != "/" {
            ancestors.push(cur.clone());
            cur = Self::parent_of(&cur);
        }
        for a in ancestors.into_iter().rev() {
            self.entries.entry(a).or_insert((true, 0));
        }
        self.entries.insert(path.to_string(), (is_dir, size));
    }

    fn child_names(&self, dir: &str) -> Vec<String> {
        let prefix = if dir == "/" { "/".to_string() } else { format!("{dir}/") };
        self.entries
            .iter()
            .filter(|(k, _)| k.starts_with(&prefix) && !k[prefix.len()..].contains('/') && !k[prefix.len()..].is_empty())
            .map(|(k, _)| k[prefix.len()..].to_string())
            .collect()
    }

    fn has_children(&self, dir: &str) -> bool {
        let prefix = format!("{dir}/");
        self.entries.range(prefix.clone()..).next().is_some_and(|(k, _)| k.starts_with(&prefix))
    }

    fn remove_subtree(&mut self, path: &str) {
        let prefix = format!("{path}/");
        self.entries.retain(|k, _| k != path && !k.starts_with(&prefix));
    }

    fn create_node(&mut self, path: &str, is_dir: bool, size: u64) -> Result<OracleOk, FsError> {
        if self.entries.contains_key(path) {
            return Err(FsError::AlreadyExists);
        }
        match self.entries.get(&Self::parent_of(path)) {
            None => Err(FsError::NotFound),
            Some(&(false, _)) => Err(FsError::NotDir),
            Some(&(true, _)) => {
                self.entries.insert(path.to_string(), (is_dir, size));
                Ok(OracleOk::Unit)
            }
        }
    }

    fn apply(&mut self, op: &FsOp) -> Result<OracleOk, FsError> {
        match op {
            FsOp::Mkdir { path } => self.create_node(&path.to_string(), true, 0),
            FsOp::Create { path, size } => self.create_node(&path.to_string(), false, *size),
            FsOp::Open { path } => match self.entries.get(&path.to_string()) {
                None => Err(FsError::NotFound),
                Some(&(true, _)) => Err(FsError::IsDir),
                Some(&(false, size)) => Ok(OracleOk::Attrs { is_dir: false, size }),
            },
            FsOp::Stat { path } => match self.entries.get(&path.to_string()) {
                None => Err(FsError::NotFound),
                Some(&(is_dir, size)) => Ok(OracleOk::Attrs { is_dir, size }),
            },
            FsOp::List { path } => {
                let p = path.to_string();
                match self.entries.get(&p) {
                    None => Err(FsError::NotFound),
                    Some(&(false, _)) => {
                        let name = p[Self::parent_of(&p).len()..].trim_start_matches('/').to_string();
                        Ok(OracleOk::Listing(vec![name]))
                    }
                    Some(&(true, _)) => Ok(OracleOk::Listing(self.child_names(&p))),
                }
            }
            FsOp::Delete { path, recursive } => {
                let p = path.to_string();
                match self.entries.get(&p) {
                    None => Err(FsError::NotFound),
                    Some(&(true, _)) if !recursive && self.has_children(&p) => Err(FsError::NotEmpty),
                    Some(_) => {
                        self.remove_subtree(&p);
                        Ok(OracleOk::Unit)
                    }
                }
            }
            FsOp::Rename { src, dst } => {
                let (s, d) = (src.to_string(), dst.to_string());
                if !self.entries.contains_key(&s) {
                    return Err(FsError::NotFound);
                }
                if self.entries.contains_key(&d) {
                    return Err(FsError::AlreadyExists);
                }
                match self.entries.get(&Self::parent_of(&d)) {
                    None => Err(FsError::NotFound),
                    Some(&(false, _)) => Err(FsError::NotDir),
                    Some(&(true, _)) => {
                        let prefix = format!("{s}/");
                        let moved: Vec<(String, (bool, u64))> = self
                            .entries
                            .iter()
                            .filter(|(k, _)| *k == &s || k.starts_with(&prefix))
                            .map(|(k, v)| (format!("{d}{}", &k[s.len()..]), *v))
                            .collect();
                        self.remove_subtree(&s);
                        for (k, v) in moved {
                            self.entries.insert(k, v);
                        }
                        Ok(OracleOk::Unit)
                    }
                }
            }
            FsOp::SetPerm { path, .. } => match self.entries.get(&path.to_string()) {
                None => Err(FsError::NotFound),
                Some(_) => Ok(OracleOk::Unit),
            },
            FsOp::Append { .. } => panic!("trace never appends"),
        }
    }
}

/// Generates a deterministic Spotify-mix trace of `n` ops for session 0.
fn spotify_trace(ns: &Arc<Namespace>, n: u64, seed: u64) -> Vec<FsOp> {
    let mut src = SpotifySource::new(Arc::clone(ns), Mix::SPOTIFY, 0);
    src.max_ops = Some(n);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut ops = Vec::new();
    while let Some(op) = src.next_op(&mut rng, SimTime::ZERO) {
        // Trace mutations are confined to the session's private directory
        // and always succeed; feed that outcome back so the source's
        // created-file bookkeeping matches the replay.
        src.on_result(&op, &Ok(FsOk::Done));
        ops.push(op);
    }
    ops
}

fn run_hopsfs_loaded(ns: &Arc<Namespace>, ops: Vec<FsOp>) -> Vec<hopsfs::FsResult> {
    let n = ops.len();
    let mut sim = Simulation::new(11);
    sim.set_jitter(0.0);
    let mut cluster = hopsfs::build_fs_cluster(&mut sim, hopsfs::FsConfig::hopsfs_cl(6, 3, 2), 0);
    ns.load_hopsfs(&mut sim, &mut cluster, 0);
    cluster.bulk_mkdir_p(&mut sim, &SpotifySource::private_dir_for(0));
    let stats = ClientStats::shared();
    let c = cluster.add_client(&mut sim, AzId(0), Box::new(ScriptedSource::new(ops)), stats);
    sim.actor_mut::<hopsfs::FsClientActor>(c).keep_results = true;
    let mut t = SimTime::ZERO;
    while sim.actor::<hopsfs::FsClientActor>(c).results.len() < n && t < SimTime::from_secs(120) {
        t += SimDuration::from_millis(100);
        sim.run_until(t);
    }
    sim.actor::<hopsfs::FsClientActor>(c).results.clone()
}

fn run_ceph_loaded(ns: &Arc<Namespace>, ops: Vec<FsOp>) -> Vec<hopsfs::FsResult> {
    let n = ops.len();
    let mut sim = Simulation::new(11);
    sim.set_jitter(0.0);
    let mut cluster = cephsim::build_ceph_cluster(
        &mut sim,
        cephsim::CephConfig::paper(3, cephsim::BalanceMode::Dynamic, false),
    );
    ns.load_ceph(&mut cluster, 0);
    cluster.bulk_mkdir_p(&SpotifySource::private_dir_for(0));
    cluster.apply_pinning();
    let stats = ClientStats::shared();
    let c = cluster.add_client(&mut sim, AzId(0), Box::new(ScriptedSource::new(ops)), stats);
    sim.actor_mut::<cephsim::CephClientActor>(c).keep_results = true;
    let mut t = SimTime::ZERO;
    while sim.actor::<cephsim::CephClientActor>(c).results.len() < n && t < SimTime::from_secs(120) {
        t += SimDuration::from_millis(100);
        sim.run_until(t);
    }
    sim.actor::<cephsim::CephClientActor>(c).results.clone()
}

fn listing_names(entries: &[hopsfs::DirEntry]) -> Vec<String> {
    let mut v: Vec<String> = entries.iter().map(|e| e.name.clone()).collect();
    v.sort();
    v
}

/// One system result against the oracle's: success kinds must line up
/// (attrs field-by-field, listings name-by-name) and errors must be the
/// same `FsError`.
fn matches_oracle(sys: &hopsfs::FsResult, oracle: &Result<OracleOk, FsError>) -> bool {
    match (sys, oracle) {
        (Ok(FsOk::Listing(a)), Ok(OracleOk::Listing(b))) => {
            let mut b = b.clone();
            b.sort();
            listing_names(a) == b
        }
        (Ok(FsOk::Attrs(a)), Ok(OracleOk::Attrs { is_dir, size })) => {
            a.is_dir == *is_dir && a.size == *size
        }
        (Ok(FsOk::Locations { attrs, .. }), Ok(OracleOk::Attrs { is_dir, size })) => {
            attrs.is_dir == *is_dir && attrs.size == *size
        }
        (Ok(_), Ok(_)) => true,
        (Err(a), Err(b)) => a == b,
        _ => false,
    }
}

#[test]
fn spotify_trace_replays_identically_on_all_systems() {
    let spec = NamespaceSpec { users: 6, dirs_per_user: 2, files_per_dir: 3, ..Default::default() };
    let ns = Arc::new(Namespace::generate(&spec));
    let mut ops = spotify_trace(&ns, 140, 0x50_71f7);

    // Adversarial tail: error verdicts must agree too. All of these target
    // paths whose state the trace cannot have changed.
    let private = SpotifySource::private_dir_for(0);
    ops.extend([
        FsOp::Stat { path: p("/user/does-not-exist") },
        FsOp::Mkdir { path: p(&private) },
        FsOp::Create { path: p(&ns.files[0].clone()), size: 0 },
        FsOp::Delete { path: p("/user/missing-too"), recursive: false },
        FsOp::Delete { path: p("/user/u0"), recursive: false },
        FsOp::Rename { src: p("/user/not-here"), dst: p("/user/elsewhere") },
        FsOp::Rename { src: p(&ns.dirs[0].clone()), dst: p(&private) },
        FsOp::List { path: p("/load/s999") },
        // Quiesce probes: the full mutated namespace state.
        FsOp::List { path: p(&private) },
        FsOp::List { path: p("/user") },
        FsOp::List { path: p(&ns.dirs[0].clone()) },
    ]);

    // Oracle: bulk-load the same namespace, then apply the trace.
    let mut oracle = Oracle::new();
    for d in &ns.dirs {
        oracle.load(d, true, 0);
    }
    for f in &ns.files {
        oracle.load(f, false, 0);
    }
    oracle.load(&private, true, 0);
    let expected: Vec<Result<OracleOk, FsError>> = ops.iter().map(|op| oracle.apply(op)).collect();

    let hops = run_hopsfs_loaded(&ns, ops.clone());
    let ceph = run_ceph_loaded(&ns, ops.clone());
    assert_eq!(hops.len(), ops.len(), "hopsfs session must finish the trace");
    assert_eq!(ceph.len(), ops.len(), "ceph session must finish the trace");

    for (i, op) in ops.iter().enumerate() {
        assert!(
            matches_oracle(&hops[i], &expected[i]),
            "op {i} {op:?}: hopsfs={:?} oracle={:?}",
            hops[i],
            expected[i]
        );
        assert!(
            matches_oracle(&ceph[i], &expected[i]),
            "op {i} {op:?}: cephfs={:?} oracle={:?}",
            ceph[i],
            expected[i]
        );
        // Cross-system: identical verdicts (and listings) between the two
        // simulated stacks, independent of the oracle.
        let cross = match (&hops[i], &ceph[i]) {
            (Ok(FsOk::Listing(a)), Ok(FsOk::Listing(b))) => listing_names(a) == listing_names(b),
            (Ok(_), Ok(_)) => true,
            (Err(a), Err(b)) => a == b,
            _ => false,
        };
        assert!(cross, "op {i} {op:?}: hopsfs={:?} cephfs={:?}", hops[i], ceph[i]);
    }
    // The quiesce probes at the tail are listings over every region the
    // trace touched; reaching here means namespace state is equivalent in
    // all three models.
    assert!(matches!(hops[ops.len() - 3], Ok(FsOk::Listing(_))), "private dir listing");
}

/// The seeded subtree delete/rename mix replays identically through
/// HopsFS-CL (where recursive directory deletes and directory renames run
/// the subtree operations protocol: lock transaction, bounded batched
/// transactions, closing transaction), the CephFS baseline, and the
/// sequential oracle.
#[test]
fn subtree_mix_replays_identically_on_all_systems() {
    let spec = NamespaceSpec { users: 4, dirs_per_user: 2, files_per_dir: 2, ..Default::default() };
    let ns = Arc::new(Namespace::generate(&spec));
    let mut rng = StdRng::seed_from_u64(0x5073);

    // Spotify trace with every delete pick expanded into a subtree burst.
    let mut src = SpotifySource::new(Arc::clone(&ns), Mix::SPOTIFY, 0);
    src.subtree_burst = 1.0;
    src.max_ops = Some(180);
    let mut ops = Vec::new();
    while let Some(op) = src.next_op(&mut rng, SimTime::ZERO) {
        src.on_result(&op, &Ok(FsOk::Done));
        ops.push(op);
    }
    let recursive_deletes =
        ops.iter().filter(|o| matches!(o, FsOp::Delete { recursive: true, .. })).count();
    assert!(recursive_deletes >= 2, "trace must exercise recursive deletes: {recursive_deletes}");

    // Micro subtree rounds (grow, rename, recursively delete) in their own
    // namespace region, created by the op stream itself so every stack and
    // the oracle see the same sequence.
    ops.push(FsOp::Mkdir { path: p("/micro") });
    ops.push(FsOp::Mkdir { path: p(&MicroSource::private_dir_for(0)) });
    let mut micro = MicroSource::new(MicroOp::Subtree, Arc::clone(&ns), 0, 0);
    micro.max_ops = Some(18); // 3 full rounds
    while let Some(op) = micro.next_op(&mut rng, SimTime::ZERO) {
        ops.push(op);
    }

    // Quiesce probes over every region the mixes touched.
    let private = SpotifySource::private_dir_for(0);
    ops.push(FsOp::List { path: p(&private) });
    ops.push(FsOp::List { path: p(&MicroSource::private_dir_for(0)) });
    ops.push(FsOp::List { path: p("/") });

    let mut oracle = Oracle::new();
    for d in &ns.dirs {
        oracle.load(d, true, 0);
    }
    for f in &ns.files {
        oracle.load(f, false, 0);
    }
    oracle.load(&private, true, 0);
    let expected: Vec<Result<OracleOk, FsError>> = ops.iter().map(|op| oracle.apply(op)).collect();

    let hops = run_hopsfs_loaded(&ns, ops.clone());
    let ceph = run_ceph_loaded(&ns, ops.clone());
    assert_eq!(hops.len(), ops.len(), "hopsfs session must finish the subtree trace");
    assert_eq!(ceph.len(), ops.len(), "ceph session must finish the subtree trace");

    for (i, op) in ops.iter().enumerate() {
        assert!(
            matches_oracle(&hops[i], &expected[i]),
            "op {i} {op:?}: hopsfs={:?} oracle={:?}",
            hops[i],
            expected[i]
        );
        assert!(
            matches_oracle(&ceph[i], &expected[i]),
            "op {i} {op:?}: cephfs={:?} oracle={:?}",
            ceph[i],
            expected[i]
        );
        let cross = match (&hops[i], &ceph[i]) {
            (Ok(FsOk::Listing(a)), Ok(FsOk::Listing(b))) => listing_names(a) == listing_names(b),
            (Ok(_), Ok(_)) => true,
            (Err(a), Err(b)) => a == b,
            _ => false,
        };
        assert!(cross, "op {i} {op:?}: hopsfs={:?} cephfs={:?}", hops[i], ceph[i]);
    }
}

// --- Caching on/off parity: leases move latency, never correctness ---------

use std::sync::Mutex;

/// Generates a deterministic skewed read-heavy trace for session 0 (the
/// `fig_client_cache` workload shape: 97% metadata reads over a zipfian hot
/// set, a trickle of conflicting mutations).
fn read_heavy_trace(ns: &Arc<Namespace>, n: u64, seed: u64) -> Vec<FsOp> {
    let mut src = SpotifySource::new(Arc::clone(ns), Mix::READ_HEAVY, 0);
    src.max_ops = Some(n);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut ops = Vec::new();
    while let Some(op) = src.next_op(&mut rng, SimTime::ZERO) {
        src.on_result(&op, &Ok(FsOk::Done));
        ops.push(op);
    }
    ops
}

/// Runs a trace through HopsFS-CL with the leased client cache on or off,
/// returning the results plus (hits, coherence violations) from the run.
fn run_hopsfs_cached(ns: &Arc<Namespace>, ops: Vec<FsOp>, caching: bool) -> (Vec<hopsfs::FsResult>, u64, u64) {
    let n = ops.len();
    let mut sim = Simulation::new(11);
    sim.set_jitter(0.0);
    let mut cfg = hopsfs::FsConfig::hopsfs_cl(6, 3, 2);
    cfg.lease.enabled = caching;
    let mut cluster = hopsfs::build_fs_cluster(&mut sim, cfg, 0);
    ns.load_hopsfs(&mut sim, &mut cluster, 0);
    cluster.bulk_mkdir_p(&mut sim, &SpotifySource::private_dir_for(0));
    // Past the election-visibility window that gates lease grants, so the
    // caching-on run actually exercises the cache rather than trivially
    // missing for the whole trace.
    sim.run_until(SimTime::from_secs(7));
    let stats = hopsfs::client::ClientStats::shared();
    let monitor = Arc::new(Mutex::new(hopsfs::LeaseMonitor::default()));
    let c = cluster.add_client(&mut sim, AzId(0), Box::new(ScriptedSource::new(ops)), stats.clone());
    {
        let a = sim.actor_mut::<hopsfs::FsClientActor>(c);
        a.keep_results = true;
        a.monitor = Some(monitor.clone());
    }
    let mut t = SimTime::from_secs(7);
    while sim.actor::<hopsfs::FsClientActor>(c).results.len() < n && t < SimTime::from_secs(127) {
        t += SimDuration::from_millis(100);
        sim.run_until(t);
    }
    let results = sim.actor::<hopsfs::FsClientActor>(c).results.clone();
    let hits = stats.lock().unwrap().lease_hits;
    let violations = hopsfs::lease_coherence(&monitor.lock().unwrap());
    (results, hits, violations)
}

/// The lease-coherent client cache must be invisible to correctness: the
/// same skewed read-heavy trace replays with *identical verdicts* whether
/// caching is on or off, both agree with the sequential oracle op-for-op,
/// and the caching-on run really did serve from the cache (so the parity is
/// evidence, not vacuous).
#[test]
fn read_heavy_trace_replays_identically_with_caching_on_and_off() {
    let spec = NamespaceSpec { users: 6, dirs_per_user: 2, files_per_dir: 3, ..Default::default() };
    let ns = Arc::new(Namespace::generate(&spec));
    let mut ops = read_heavy_trace(&ns, 220, 0xCAC4E);

    // Quiesce probes over every region the trace touched.
    let private = SpotifySource::private_dir_for(0);
    ops.push(FsOp::List { path: p(&private) });
    ops.push(FsOp::List { path: p("/user") });
    ops.push(FsOp::Stat { path: p(&ns.files[0].clone()) });

    let mut oracle = Oracle::new();
    for d in &ns.dirs {
        oracle.load(d, true, 0);
    }
    for f in &ns.files {
        oracle.load(f, false, 0);
    }
    oracle.load(&private, true, 0);
    let expected: Vec<Result<OracleOk, FsError>> = ops.iter().map(|op| oracle.apply(op)).collect();

    let (off, off_hits, off_viol) = run_hopsfs_cached(&ns, ops.clone(), false);
    let (on, on_hits, on_viol) = run_hopsfs_cached(&ns, ops.clone(), true);
    assert_eq!(off.len(), ops.len(), "caching-off run must finish the trace");
    assert_eq!(on.len(), ops.len(), "caching-on run must finish the trace");
    assert_eq!(off_hits, 0, "caching off must never serve from the cache");
    assert!(on_hits > 0, "caching on must actually serve reads locally");
    assert_eq!(off_viol + on_viol, 0, "lease coherence violated");

    for (i, op) in ops.iter().enumerate() {
        assert!(
            matches_oracle(&on[i], &expected[i]),
            "op {i} {op:?}: caching-on={:?} oracle={:?}",
            on[i],
            expected[i]
        );
        // Verdict-for-verdict parity between the two cache modes (listings
        // and attrs compared structurally, like the cross-system tests).
        let same = match (&off[i], &on[i]) {
            (Ok(FsOk::Listing(a)), Ok(FsOk::Listing(b))) => listing_names(a) == listing_names(b),
            (Ok(FsOk::Attrs(a)), Ok(FsOk::Attrs(b))) => a.is_dir == b.is_dir && a.size == b.size,
            (Ok(_), Ok(_)) => true,
            (Err(a), Err(b)) => a == b,
            _ => false,
        };
        assert!(same, "op {i} {op:?}: caching-off={:?} caching-on={:?}", off[i], on[i]);
    }
}
