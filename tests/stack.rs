//! Whole-stack integration: drive the Spotify workload through the full
//! HopsFS-CL deployment (clients → namenodes → NDB) and check the
//! system-level properties the paper's design promises.

use hopsfs::client::ClientStats;
use hopsfs::{build_fs_cluster, FsConfig, NameNodeActor};
use simnet::{AzId, SimDuration, SimTime, Simulation};
use std::rc::Rc;
use workload::{Mix, Namespace, NamespaceSpec, SpotifySource};

struct Deployment {
    sim: Simulation,
    cluster: hopsfs::FsCluster,
    stats: Rc<std::cell::RefCell<ClientStats>>,
}

fn deploy(cfg: FsConfig, sessions: usize, seed: u64) -> Deployment {
    let azs = cfg.azs.clone();
    let mut sim = Simulation::new(seed);
    let mut cluster = build_fs_cluster(&mut sim, cfg, 0);
    let ns = Rc::new(Namespace::generate(&NamespaceSpec {
        users: 20,
        dirs_per_user: 2,
        files_per_dir: 6,
        ..Default::default()
    }));
    ns.load_hopsfs(&mut sim, &mut cluster, 0);
    let stats = ClientStats::shared();
    for s in 0..sessions as u64 {
        cluster.bulk_mkdir_p(&mut sim, &SpotifySource::private_dir_for(s));
        let src = Box::new(SpotifySource::new(Rc::clone(&ns), Mix::SPOTIFY, s));
        cluster.add_client(&mut sim, azs[s as usize % azs.len()], src, stats.clone());
    }
    Deployment { sim, cluster, stats }
}

#[test]
fn spotify_load_runs_clean_on_hopsfs_cl() {
    let mut d = deploy(FsConfig::hopsfs_cl(6, 3, 3).scaled_down(8), 24, 9);
    d.sim.run_until(SimTime::from_secs(3));
    let st = d.stats.borrow();
    assert!(st.total_ok() > 3000, "throughput too low: {}", st.total_ok());
    let errs = st.total_err();
    assert!(
        (errs as f64) < st.total_ok() as f64 * 0.001,
        "too many errors: {errs} ({:?})",
        st.errors
    );
    // Latency is sane for an in-region distributed FS.
    let avg_ms = st.latency_all.mean() / 1e6;
    assert!(avg_ms > 0.5 && avg_ms < 50.0, "avg latency {avg_ms}ms");
}

#[test]
fn leader_election_converges_and_all_nns_serve() {
    let mut d = deploy(FsConfig::hopsfs_cl(6, 3, 4).scaled_down(8), 16, 11);
    d.sim.run_until(SimTime::from_secs(6));
    // All namenodes agree on one leader (the smallest live index).
    let leaders: Vec<u32> = d
        .cluster
        .view
        .nn_ids
        .iter()
        .map(|&id| d.sim.actor::<NameNodeActor>(id).leader_idx)
        .collect();
    assert!(leaders.iter().all(|&l| l == leaders[0]), "leader votes diverge: {leaders:?}");
    assert_eq!(leaders[0], 0, "lowest live namenode index leads");
    // Every namenode served operations (the AZ-aware client policy spreads
    // sessions over AZ-local namenodes).
    for &id in &d.cluster.view.nn_ids {
        let served = d.sim.actor::<NameNodeActor>(id).stats.total_ok();
        assert!(served > 0, "namenode {id} served nothing");
    }
}

#[test]
fn az_awareness_reduces_cross_az_traffic_under_equal_load() {
    let run = |cfg: FsConfig| {
        let mut d = deploy(cfg.scaled_down(8), 24, 13);
        d.sim.run_until(SimTime::from_secs(3));
        let ok = d.stats.borrow().total_ok();
        (ok, d.sim.cross_az_bytes())
    };
    let (ops_vanilla, bytes_vanilla) = run(FsConfig::hopsfs(6, 3, 3, 3));
    let (ops_cl, bytes_cl) = run(FsConfig::hopsfs_cl(6, 3, 3));
    // Normalize per op: CL must move much less cross-AZ traffic.
    let per_op_vanilla = bytes_vanilla as f64 / ops_vanilla as f64;
    let per_op_cl = bytes_cl as f64 / ops_cl as f64;
    assert!(
        per_op_cl < per_op_vanilla * 0.6,
        "CL cross-AZ per op {per_op_cl:.0}B vs vanilla {per_op_vanilla:.0}B"
    );
}

#[test]
fn hopsfs_cl_survives_leader_nn_and_az_loss_mid_load() {
    let mut d = deploy(FsConfig::hopsfs_cl(6, 3, 6).scaled_down(8), 18, 17);
    d.sim.run_until(SimTime::from_secs(2));
    let before = d.stats.borrow().total_ok();
    assert!(before > 0);
    // Kill the leader NN, then a whole AZ.
    let leader = d.cluster.view.nn_ids[0];
    d.sim.kill_node(leader);
    d.sim.run_until(SimTime::from_secs(4));
    d.sim.kill_az(AzId(2));
    d.sim.run_until(SimTime::from_secs(12));
    let after = d.stats.borrow().total_ok();
    assert!(after > before + 500, "cluster stopped serving after failures: {before} -> {after}");
    // A new leader emerged among survivors.
    d.sim.run_for(SimDuration::from_secs(4));
    let survivors: Vec<usize> = (0..6)
        .filter(|&i| d.sim.is_alive(d.cluster.view.nn_ids[i]))
        .collect();
    let votes: Vec<u32> = survivors
        .iter()
        .map(|&i| d.sim.actor::<NameNodeActor>(d.cluster.view.nn_ids[i]).leader_idx)
        .collect();
    assert!(votes.iter().all(|&v| v == votes[0] && v as usize != 0), "no new leader: {votes:?}");
}

#[test]
fn deterministic_across_runs() {
    let run = || {
        let mut d = deploy(FsConfig::hopsfs_cl(6, 3, 2).scaled_down(8), 8, 21);
        d.sim.run_until(SimTime::from_secs(2));
        let events = d.sim.events_processed();
        let ok = d.stats.borrow().total_ok();
        let _ = &d.cluster;
        (events, ok)
    };
    assert_eq!(run(), run(), "same seed must give identical traces");
}
