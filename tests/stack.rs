//! Whole-stack integration: drive the Spotify workload through the full
//! HopsFS-CL deployment (clients → namenodes → NDB) and check the
//! system-level properties the paper's design promises.

use hopsfs::client::ClientStats;
use hopsfs::{build_fs_cluster, FsConfig, NameNodeActor};
use simnet::{AzId, Fault, Schedule, SimDuration, SimTime, Simulation};
use std::fmt::Write as _;
use std::sync::Arc;
use workload::{Mix, Namespace, NamespaceSpec, SpotifySource};

struct Deployment {
    sim: Simulation,
    cluster: hopsfs::FsCluster,
    stats: Arc<std::sync::Mutex<ClientStats>>,
}

fn deploy(cfg: FsConfig, sessions: usize, seed: u64) -> Deployment {
    deploy_sharded(cfg, sessions, seed, 1)
}

fn deploy_sharded(cfg: FsConfig, sessions: usize, seed: u64, shards: u32) -> Deployment {
    let azs = cfg.azs.clone();
    let mut sim = Simulation::new(seed);
    sim.set_shards(shards);
    let mut cluster = build_fs_cluster(&mut sim, cfg, 0);
    let ns = Arc::new(Namespace::generate(&NamespaceSpec {
        users: 20,
        dirs_per_user: 2,
        files_per_dir: 6,
        ..Default::default()
    }));
    ns.load_hopsfs(&mut sim, &mut cluster, 0);
    let stats = ClientStats::shared();
    for s in 0..sessions as u64 {
        cluster.bulk_mkdir_p(&mut sim, &SpotifySource::private_dir_for(s));
        let src = Box::new(SpotifySource::new(Arc::clone(&ns), Mix::SPOTIFY, s));
        cluster.add_client(&mut sim, azs[s as usize % azs.len()], src, stats.clone());
    }
    Deployment { sim, cluster, stats }
}

#[test]
fn spotify_load_runs_clean_on_hopsfs_cl() {
    let mut d = deploy(FsConfig::hopsfs_cl(6, 3, 3).scaled_down(8), 24, 9);
    d.sim.run_until(SimTime::from_secs(3));
    let st = d.stats.lock().unwrap();
    assert!(st.total_ok() > 3000, "throughput too low: {}", st.total_ok());
    let errs = st.total_err();
    assert!(
        (errs as f64) < st.total_ok() as f64 * 0.001,
        "too many errors: {errs} ({:?})",
        st.errors
    );
    // Latency is sane for an in-region distributed FS.
    let avg_ms = st.latency_all.mean() / 1e6;
    assert!(avg_ms > 0.5 && avg_ms < 50.0, "avg latency {avg_ms}ms");
}

#[test]
fn leader_election_converges_and_all_nns_serve() {
    let mut d = deploy(FsConfig::hopsfs_cl(6, 3, 4).scaled_down(8), 16, 11);
    d.sim.run_until(SimTime::from_secs(6));
    // All namenodes agree on one leader (the smallest live index).
    let leaders: Vec<u32> = d
        .cluster
        .view
        .nn_ids
        .iter()
        .map(|&id| d.sim.actor::<NameNodeActor>(id).leader_idx)
        .collect();
    assert!(leaders.iter().all(|&l| l == leaders[0]), "leader votes diverge: {leaders:?}");
    assert_eq!(leaders[0], 0, "lowest live namenode index leads");
    // Every namenode served operations (the AZ-aware client policy spreads
    // sessions over AZ-local namenodes).
    for &id in &d.cluster.view.nn_ids {
        let served = d.sim.actor::<NameNodeActor>(id).stats.total_ok();
        assert!(served > 0, "namenode {id} served nothing");
    }
}

#[test]
fn az_awareness_reduces_cross_az_traffic_under_equal_load() {
    let run = |cfg: FsConfig| {
        let mut d = deploy(cfg.scaled_down(8), 24, 13);
        d.sim.run_until(SimTime::from_secs(3));
        let ok = d.stats.lock().unwrap().total_ok();
        (ok, d.sim.cross_az_bytes())
    };
    let (ops_vanilla, bytes_vanilla) = run(FsConfig::hopsfs(6, 3, 3, 3));
    let (ops_cl, bytes_cl) = run(FsConfig::hopsfs_cl(6, 3, 3));
    // Normalize per op: CL must move much less cross-AZ traffic.
    let per_op_vanilla = bytes_vanilla as f64 / ops_vanilla as f64;
    let per_op_cl = bytes_cl as f64 / ops_cl as f64;
    assert!(
        per_op_cl < per_op_vanilla * 0.6,
        "CL cross-AZ per op {per_op_cl:.0}B vs vanilla {per_op_vanilla:.0}B"
    );
}

#[test]
fn hopsfs_cl_survives_leader_nn_and_az_loss_mid_load() {
    let mut d = deploy(FsConfig::hopsfs_cl(6, 3, 6).scaled_down(8), 18, 17);
    d.sim.run_until(SimTime::from_secs(2));
    let before = d.stats.lock().unwrap().total_ok();
    assert!(before > 0);
    // Kill the leader NN, then a whole AZ.
    let leader = d.cluster.view.nn_ids[0];
    d.sim.kill_node(leader);
    d.sim.run_until(SimTime::from_secs(4));
    d.sim.kill_az(AzId(2));
    d.sim.run_until(SimTime::from_secs(12));
    let after = d.stats.lock().unwrap().total_ok();
    assert!(after > before + 500, "cluster stopped serving after failures: {before} -> {after}");
    // A new leader emerged among survivors.
    d.sim.run_for(SimDuration::from_secs(4));
    let survivors: Vec<usize> = (0..6)
        .filter(|&i| d.sim.is_alive(d.cluster.view.nn_ids[i]))
        .collect();
    let votes: Vec<u32> = survivors
        .iter()
        .map(|&i| d.sim.actor::<NameNodeActor>(d.cluster.view.nn_ids[i]).leader_idx)
        .collect();
    assert!(votes.iter().all(|&v| v == votes[0] && v as usize != 0), "no new leader: {votes:?}");
}

/// FNV-1a over a textual state rendering: a stable 64-bit digest that any
/// kernel change must reproduce bit-for-bit.
fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Folds everything observable about a finished run — event count, client
/// verdict counts, traffic ledger, fault trace, and the per-layer metric
/// counters — into one digest. Only integer state goes in, so the value is
/// platform-stable.
fn run_digest(d: &Deployment, trace_lines: &[String]) -> u64 {
    let mut s = String::new();
    let _ = write!(s, "events={};", d.sim.events_processed());
    let st = d.stats.lock().unwrap();
    let _ = write!(s, "ok={:?};err={:?};", st.ok_per_kind, st.err_per_kind);
    let _ = write!(s, "lat_n={};", st.latency_all.count());
    let _ = write!(
        s,
        "xaz={};dropped={};duped={};",
        d.sim.cross_az_bytes(),
        d.sim.msgs_dropped(),
        d.sim.msgs_duplicated()
    );
    for line in trace_lines {
        let _ = write!(s, "fault={line};");
    }
    let mut counters: Vec<(&'static str, &'static str, u64)> = d.sim.metrics().iter_counters().collect();
    counters.sort_unstable();
    for (layer, name, v) in counters {
        let _ = write!(s, "ctr={layer}/{name}={v};");
    }
    let _ = &d.cluster;
    fnv1a(&s)
}

/// Golden digest of a small fig5-style Spotify-mix cell. Re-recorded when the
/// subtree operations protocol landed (the workload mix gained recursive
/// delete/rename bursts and namenodes gained a sweep scan per election
/// round, both deliberate behaviour changes); any later kernel or scheduler
/// work must keep same-seed replay bit-identical to this.
#[test]
fn spotify_cell_digest_matches_pre_swap_golden() {
    let mut d = deploy(FsConfig::hopsfs_cl(6, 3, 3).scaled_down(8), 12, 33);
    d.sim.run_until(SimTime::from_secs(3));
    let digest = run_digest(&d, &[]);
    assert_eq!(
        digest, GOLDEN_SPOTIFY_DIGEST,
        "deterministic replay of the Spotify cell changed \
         (got {digest:#018x}; golden recorded at the subtree-ops protocol landing)"
    );
}

/// Golden digest of the same cell under a nemesis schedule (crash/restart,
/// asymmetric partition, gray slowdown): fault injection paths must replay
/// identically across the kernel swap too. Re-recorded when the NDB
/// node-recovery protocol landed: suspected-dead peers are now marked
/// unsynced and orphaned in-flight transactions go through TC take-over
/// instead of immediate lock release, both deliberate behaviour changes
/// on the fault path (the fault-free golden above is unchanged).
#[test]
fn chaos_cell_digest_matches_pre_swap_golden() {
    let mut d = deploy(FsConfig::hopsfs_cl(6, 3, 4).scaled_down(8), 10, 47);
    let nn1 = d.cluster.view.nn_ids[1];
    let gray = d.cluster.view.ndb.datanode_ids[2];
    let schedule = Schedule::new()
        .at(SimTime::from_millis(800), Fault::GraySlow(gray, 50.0))
        .at(SimTime::from_secs(1), Fault::Crash(nn1))
        .at(SimTime::from_millis(1500), Fault::PartitionAzOneway(AzId(1), AzId(0)))
        .at(SimTime::from_secs(2), Fault::Restart(nn1))
        .at(SimTime::from_millis(2500), Fault::HealAzOneway(AzId(1), AzId(0)))
        .at(SimTime::from_millis(2600), Fault::GrayHeal(gray));
    let trace = schedule.install(&mut d.sim);
    d.sim.run_until(SimTime::from_secs(4));
    let digest = run_digest(&d, &trace.lines());
    assert_eq!(
        digest, GOLDEN_CHAOS_DIGEST,
        "deterministic replay of the chaos cell changed \
         (got {digest:#018x}; golden recorded at the subtree-ops protocol landing)"
    );
}

/// Digests recorded on the exact deploys above when the sharded kernel
/// landed. Sharding replaced the single global RNG with one seeded stream
/// per node (plus a separate coordinator stream) so that randomness is
/// independent of the shard partition — a deliberate, one-time re-key per
/// the DESIGN.md golden policy. Both cells replay bit-identically for any
/// shard count against these values. If a *deliberate* schedule change
/// ever requires re-recording, the failing assertion prints the current
/// value — document the re-record in DESIGN.md.
const GOLDEN_SPOTIFY_DIGEST: u64 = 0x815c_b066_94ea_8905;
const GOLDEN_CHAOS_DIGEST: u64 = 0xeb0b_005c_4731_a9dd;

/// Both golden cells replayed on the conservative-parallel kernel: the
/// digest — which folds in the event count, every client verdict, the
/// traffic ledger, the fault trace, and the per-layer counters — must hit
/// the same golden at every shard count. This is the machine check that the
/// shard partition is unobservable end to end, fault schedule included.
#[test]
fn golden_digests_are_shard_count_invariant() {
    for shards in [2u32, 4, 8] {
        let mut d = deploy_sharded(FsConfig::hopsfs_cl(6, 3, 3).scaled_down(8), 12, 33, shards);
        d.sim.run_until(SimTime::from_secs(3));
        let digest = run_digest(&d, &[]);
        assert_eq!(
            digest, GOLDEN_SPOTIFY_DIGEST,
            "Spotify cell digest diverged at shards={shards} (got {digest:#018x})"
        );

        let mut d = deploy_sharded(FsConfig::hopsfs_cl(6, 3, 4).scaled_down(8), 10, 47, shards);
        let nn1 = d.cluster.view.nn_ids[1];
        let gray = d.cluster.view.ndb.datanode_ids[2];
        let schedule = Schedule::new()
            .at(SimTime::from_millis(800), Fault::GraySlow(gray, 50.0))
            .at(SimTime::from_secs(1), Fault::Crash(nn1))
            .at(SimTime::from_millis(1500), Fault::PartitionAzOneway(AzId(1), AzId(0)))
            .at(SimTime::from_secs(2), Fault::Restart(nn1))
            .at(SimTime::from_millis(2500), Fault::HealAzOneway(AzId(1), AzId(0)))
            .at(SimTime::from_millis(2600), Fault::GrayHeal(gray));
        let trace = schedule.install(&mut d.sim);
        d.sim.run_until(SimTime::from_secs(4));
        let digest = run_digest(&d, &trace.lines());
        assert_eq!(
            digest, GOLDEN_CHAOS_DIGEST,
            "chaos cell digest diverged at shards={shards} (got {digest:#018x})"
        );
    }
}

#[test]
fn deterministic_across_runs() {
    let run = || {
        let mut d = deploy(FsConfig::hopsfs_cl(6, 3, 2).scaled_down(8), 8, 21);
        d.sim.run_until(SimTime::from_secs(2));
        let events = d.sim.events_processed();
        let ok = d.stats.lock().unwrap().total_ok();
        let _ = &d.cluster;
        (events, ok)
    };
    assert_eq!(run(), run(), "same seed must give identical traces");
}
